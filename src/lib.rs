//! # Scaling Out Schema-free Stream Joins
//!
//! Umbrella crate re-exporting the whole system — a from-scratch Rust
//! implementation of the ICDE 2020 paper: exact natural joins over streams
//! of schema-free JSON documents, scaled out across `m` join workers by
//! association-group partitioning, with FP-tree–based local joins, on a
//! Storm-like runtime.
//!
//! The layers, bottom up:
//!
//! * [`ssj_json`] — JSON parsing, flattening, interning, [`ssj_json::Document`];
//! * [`ssj_join`] — FPTreeJoin and the NLJ / HBJ baselines;
//! * [`ssj_partition`] — AG / SC / DS partitioners, attribute expansion,
//!   quality metrics;
//! * [`ssj_runtime`] — the Storm-like topology runtime;
//! * [`ssj_core`] — the Fig. 2 topology and the deterministic pipeline;
//! * [`ssj_data`] — workload generators.
//!
//! End to end in a few lines:
//!
//! ```
//! use schema_free_stream_joins::ssj_core::{Pipeline, StreamJoinConfig, WindowSpec};
//! use schema_free_stream_joins::ssj_data::{ServerLogConfig, ServerLogGen};
//! use schema_free_stream_joins::ssj_json::Dictionary;
//!
//! // A schema-free server-log stream…
//! let dict = Dictionary::new();
//! let docs = ServerLogGen::new(ServerLogConfig::default(), dict.clone()).take_docs(400);
//!
//! // …joined exactly across 4 partitions, windows of 200 documents.
//! let cfg = StreamJoinConfig::default().with_m(4).with_window_spec(WindowSpec::tumbling(200)).build().unwrap();
//! let report = Pipeline::new(cfg, dict).run(docs);
//!
//! assert_eq!(report.windows.len(), 2);
//! assert!(report.total_unique_joins() > 0);
//! assert!(report.mean_replication() >= 1.0);
//! ```

pub use ssj_core;
pub use ssj_data;
pub use ssj_join;
pub use ssj_json;
pub use ssj_partition;
pub use ssj_runtime;
