//! Association groups as trend analysis — the use case of Alvanaki & Michel
//! [26], whose set-correlation machinery the paper's partitioner builds on.
//!
//! Runs phase 1 of the AG algorithm over windows of a tweet-like stream and
//! prints the heaviest association groups: attribute-value pairs (hashtags,
//! languages, users) that systematically occur together. The same structure
//! that drives partition quality doubles as a co-trending report.
//!
//! ```text
//! cargo run --release --example hashtag_trends
//! ```

use schema_free_stream_joins::ssj_data::{TweetConfig, TweetGen};
use schema_free_stream_joins::ssj_json::Dictionary;
use schema_free_stream_joins::ssj_partition::{association_groups, View};

fn main() {
    let dict = Dictionary::new();
    let mut gen = TweetGen::new(TweetConfig::default(), dict.clone());
    let window = 1_500;

    for w in 0..4 {
        let docs = gen.take_docs(window);
        let views: Vec<View> = docs.iter().map(|d| d.avps().collect()).collect();
        let mut groups = association_groups(&views);
        groups.sort_by_key(|g| std::cmp::Reverse(g.load));

        println!("window {w}: {} association groups", groups.len());
        for (rank, g) in groups.iter().take(5).enumerate() {
            let mut rendered: Vec<String> = g.avps.iter().map(|&a| dict.render_avp(a)).collect();
            rendered.sort();
            let shown = rendered.len().min(6);
            let more = if rendered.len() > shown {
                format!(" (+{} more)", rendered.len() - shown)
            } else {
                String::new()
            };
            println!(
                "  #{:<2} load {:>5}: {}{}",
                rank + 1,
                g.load,
                rendered[..shown].join(", "),
                more
            );
        }
        println!();
    }
}
