//! The paper's motivating scenario (§I): monitoring a company's server
//! access log for attack patterns by joining complementary documents.
//!
//! Runs the full threaded Fig. 2 topology (JsonReader → PartitionCreators →
//! Merger → Assigners → Joiners) over a synthetic server-log stream, then
//! scans the join results for suspicious combinations — e.g. a failed file
//! access joined with an Error/Critical login event for the same user.
//!
//! ```text
//! cargo run --release --example server_log_monitoring
//! ```

use schema_free_stream_joins::ssj_core::{run_topology, StreamJoinConfig, WindowSpec};
use schema_free_stream_joins::ssj_data::{ServerLogConfig, ServerLogGen};
use schema_free_stream_joins::ssj_json::{DocId, Document, FxHashMap, Scalar};

fn main() {
    let dict = schema_free_stream_joins::ssj_json::Dictionary::new();
    let mut gen = ServerLogGen::new(ServerLogConfig::default(), dict.clone());
    let docs = gen.take_docs(6_000);
    let by_id: FxHashMap<u64, Document> = docs.iter().map(|d| (d.id().0, d.clone())).collect();

    let cfg = StreamJoinConfig::default()
        .with_m(4)
        .with_window_spec(WindowSpec::tumbling(1_500))
        .with_partition_creators(2)
        .with_assigners(3)
        .build()
        .unwrap();

    println!(
        "running Fig. 2 topology: {} docs, {} joiners, window {}",
        docs.len(),
        cfg.m,
        cfg.window_docs()
    );
    let report = run_topology(cfg, &dict, docs).expect("topology run");

    let sev = dict.intern_attr("Severity");
    let user = dict.intern_attr("User");
    let bad_sev: Vec<_> = ["Error", "Critical"]
        .iter()
        .filter_map(|s| dict.lookup("Severity", &Scalar::Str((*s).into())))
        .map(|p| p.avp)
        .collect();
    let denied = dict.lookup("Status", &Scalar::Str("denied".into()));

    for (w, pairs) in report.joins_per_window.iter().enumerate() {
        println!(
            "\nwindow {w}: {} join pairs, joiner loads {:?}",
            pairs.len(),
            report.docs_per_joiner.get(w).unwrap_or(&vec![])
        );
        // Surface suspicious joined pairs: a denied access joined with a
        // bad-severity event, tied together by a shared user.
        let mut alerts = 0;
        for &(a, b) in pairs.iter() {
            let (da, db) = (&by_id[&a], &by_id[&b]);
            let has_bad_sev = [da, db].iter().any(|d| {
                d.pair_for_attr(sev)
                    .map(|p| bad_sev.contains(&p.avp))
                    .unwrap_or(false)
            });
            let has_denied = denied.is_some_and(|dp| [da, db].iter().any(|d| d.has_avp(dp)));
            if has_bad_sev && has_denied {
                alerts += 1;
                if alerts <= 3 {
                    let joined = da.merge(db, DocId(0));
                    let who = joined
                        .pair_for_attr(user)
                        .map(|p| dict.avp_scalar(p.avp).render())
                        .unwrap_or_else(|| "<unknown>".into());
                    println!("  ALERT user={who}: {}", joined.to_json(&dict));
                }
            }
        }
        if alerts > 3 {
            println!("  ... and {} more alerts", alerts - 3);
        }
    }

    println!("\nruntime counters:");
    for component in ["reader", "creator", "merger", "assigner", "joiner"] {
        println!(
            "  {component:<10} received {:>8}  emitted {:>8}",
            report.runtime.received(component),
            report.runtime.emitted(component)
        );
    }
}
