//! Sliding windows over FP-trees — the extension the paper leaves as
//! ongoing work (§V-A).
//!
//! A [`SlidingJoiner`] chains tumbling panes: the open pane buffers raw
//! documents, frozen panes are immutable FP-trees, and sliding evicts only
//! the oldest pane. This example streams server-log documents through a
//! sliding window of 4 panes × 500 documents and reports, for every slide,
//! how many join partners the newest documents found *across* pane
//! boundaries — results a tumbling window of the same total size would miss
//! at its edges.
//!
//! ```text
//! cargo run --release --example sliding_windows
//! ```

use schema_free_stream_joins::ssj_data::{ServerLogConfig, ServerLogGen};
use schema_free_stream_joins::ssj_join::{SlidingJoiner, WindowSpec};
use schema_free_stream_joins::ssj_json::Dictionary;

fn main() {
    let dict = Dictionary::new();
    let mut gen = ServerLogGen::new(ServerLogConfig::default(), dict.clone());

    let pane = 500;
    let panes = 4;
    let mut joiner = SlidingJoiner::new(WindowSpec::sliding(pane, panes));

    let mut window_partners = 0u64;
    let mut total_partners = 0u64;
    println!("sliding window: {panes} panes x {pane} docs");
    for i in 0..6_000u64 {
        let doc = gen.next_doc();
        let partners = joiner.insert_and_probe(doc);
        window_partners += partners.len() as u64;
        total_partners += partners.len() as u64;
        if (i + 1) % pane as u64 == 0 {
            println!(
                "  after doc {:>5}: {:>7} partners this pane, window holds {:>5} docs, {} frozen panes",
                i + 1,
                window_partners,
                joiner.window_len(),
                joiner.frozen_panes()
            );
            window_partners = 0;
        }
    }
    println!(
        "\ntotal join partners found: {total_partners} over {} documents",
        joiner.total_inserted()
    );
}
