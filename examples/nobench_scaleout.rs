//! Scale-out partitioning on NoBench-style data (§VI-B, §VII).
//!
//! NoBench documents all carry a Boolean attribute — without attribute-value
//! expansion no partitioning scheme can use more than two machines. This
//! example runs the deterministic pipeline over an nbData stream for each
//! partitioner (AG / SC / DS), with and without expansion, and prints the
//! §VII-C quality metrics side by side.
//!
//! ```text
//! cargo run --release --example nobench_scaleout
//! ```

use schema_free_stream_joins::ssj_core::{Pipeline, StreamJoinConfig, WindowSpec};
use schema_free_stream_joins::ssj_data::{NoBenchConfig, NoBenchGen};
use schema_free_stream_joins::ssj_json::Dictionary;
use schema_free_stream_joins::ssj_partition::{Expansion, PartitionerKind};

fn main() {
    let m = 8;
    let window = 1_000;
    let windows = 5;

    // Show the detected expansion first.
    let dict = Dictionary::new();
    let sample = NoBenchGen::new(NoBenchConfig::default(), dict.clone()).take_docs(window);
    match Expansion::detect(&sample, &dict, m) {
        Some(exp) => {
            let chain: Vec<String> = exp.chain.iter().map(|&a| dict.attr_name(a)).collect();
            println!(
                "detected disabling/combining chain: {} (synthetic attribute '{}', pna = {:.3})",
                chain.join(" + "),
                dict.attr_name(exp.synth_attr),
                exp.pna
            );
        }
        None => println!("no expansion needed (enough value variety)"),
    }

    println!(
        "\n{:<6} {:<10} {:>12} {:>12} {:>10} {:>14}",
        "algo", "expansion", "replication", "gini", "max load", "repartitions %"
    );
    for kind in PartitionerKind::all() {
        for expansion in [true, false] {
            let dict = Dictionary::new();
            let docs =
                NoBenchGen::new(NoBenchConfig::default(), dict.clone()).take_docs(window * windows);
            let cfg = StreamJoinConfig::default()
                .with_m(m)
                .with_window_spec(WindowSpec::tumbling(window))
                .with_partitioner(kind)
                .with_expansion(expansion)
                .build()
                .unwrap();
            let mut pipeline = Pipeline::new(cfg, dict);
            pipeline.compute_joins = false;
            let report = pipeline.run(docs);
            println!(
                "{:<6} {:<10} {:>12.3} {:>12.3} {:>10.3} {:>14.1}",
                kind.name(),
                if expansion { "on" } else { "off" },
                report.mean_replication(),
                report.mean_load_balance(),
                report.mean_max_load(),
                report.repartition_fraction() * 100.0
            );
        }
    }
    println!(
        "\nNote how, without expansion, every algorithm degenerates: the\n\
         Boolean attribute leaves at most two usable partitions, so documents\n\
         pile onto one or two machines (max load → 1) no matter the scheme."
    );
}
