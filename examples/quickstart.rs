//! Quickstart: the paper's running examples, end to end.
//!
//! Walks through (1) the join definition on the Fig. 1 server-log documents,
//! (2) the FP-tree of Table I / Fig. 4 and the FPTreeJoin probe of Fig. 5,
//! and (3) the association-group partitioning of Fig. 3.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use schema_free_stream_joins::ssj_join::{fpjoin, fptree::FpTree};
use schema_free_stream_joins::ssj_json::{Dictionary, DocId, Document};
use schema_free_stream_joins::ssj_partition::{
    association_groups, AgPartitioner, Partitioner, View,
};

fn main() {
    let dict = Dictionary::new();

    // ---- 1. Natural joins over schema-free documents (Fig. 1) ----------
    println!("== Fig. 1: joinable server-log documents ==");
    let fig1 = [
        r#"{"User":"A","Severity":"Warning"}"#,
        r#"{"User":"A","Severity":"Warning","MsgId":2}"#,
        r#"{"User":"A","Severity":"Error"}"#,
        r#"{"IP":"10.2.145.212","Severity":"Warning"}"#,
        r#"{"User":"B","Severity":"Critical","MsgId":1}"#,
        r#"{"User":"B","Severity":"Critical"}"#,
        r#"{"User":"B","Severity":"Warning"}"#,
    ];
    let docs: Vec<Document> = fig1
        .iter()
        .enumerate()
        .map(|(i, s)| Document::from_json(DocId(i as u64 + 1), s, &dict).unwrap())
        .collect();
    for (i, a) in docs.iter().enumerate() {
        for b in &docs[i + 1..] {
            if a.joins_with(b) {
                let joined = a.merge(b, DocId(100 + i as u64));
                println!("  {} ⋈ {} -> {}", a.id(), b.id(), joined.to_json(&dict));
            }
        }
    }

    // ---- 2. FP-tree and FPTreeJoin (Table I, Figs. 4–5) ----------------
    println!("\n== Table I / Fig. 5: FPTreeJoin ==");
    let table1: Vec<Document> = [
        r#"{"a":3,"b":7,"c":1}"#,
        r#"{"a":3,"b":8}"#,
        r#"{"a":3,"b":7}"#,
        r#"{"b":8,"c":2}"#,
    ]
    .iter()
    .enumerate()
    .map(|(i, s)| Document::from_json(DocId(i as u64 + 1), s, &dict).unwrap())
    .collect();
    let tree = FpTree::build(&table1);
    println!(
        "  tree: {} nodes, depth {}, {} ubiquitous attribute(s)",
        tree.node_count(),
        tree.max_depth(),
        tree.order().ubiquitous()
    );
    for line in tree.render(&dict).lines() {
        println!("  {line}");
    }
    println!(
        "  {}",
        schema_free_stream_joins::ssj_join::TreeStats::of(&tree).summary()
    );
    for d in &table1 {
        let (partners, stats) = fpjoin::probe_with_stats(&tree, d, true);
        println!(
            "  probe {} -> partners {:?} (visited {} nodes, pruned {}, fast levels {})",
            d.id(),
            partners,
            stats.visited,
            stats.pruned,
            stats.fast_levels
        );
    }

    // ---- 3. Association groups (Fig. 3) ---------------------------------
    println!("\n== Fig. 3: association groups ==");
    let specs: [&[(&str, i64)]; 4] = [
        &[("A", 2), ("B", 3), ("C", 7)],
        &[("A", 7), ("B", 3), ("C", 4)],
        &[("D", 13)],
        &[("A", 7), ("C", 4)],
    ];
    let views: Vec<View> = specs
        .iter()
        .map(|doc| {
            doc.iter()
                .map(|&(a, v)| dict.intern(a, v.into()).avp)
                .collect()
        })
        .collect();
    for (i, group) in association_groups(&views).iter().enumerate() {
        let rendered: Vec<String> = group.avps.iter().map(|&a| dict.render_avp(a)).collect();
        println!(
            "  ag{} = {{{}}} load={}",
            i + 1,
            rendered.join(", "),
            group.load
        );
    }
    let table = AgPartitioner.create(&views, 2);
    for v in &views {
        println!("  view {:?} -> machines {:?}", v, table.route(v).targets(2));
    }
}
