//! Property-based tests over the core invariants of the system.

use proptest::collection::vec;
use proptest::prelude::*;
use schema_free_stream_joins::ssj_core::{
    ground_truth_pairs, Pipeline, StreamJoinConfig, WindowSpec,
};
use schema_free_stream_joins::ssj_join::{fpjoin, FpTree, JoinAlgo};
use schema_free_stream_joins::ssj_json::{
    parse, Dictionary, DocId, Document, FxHashSet, Scalar, Value,
};
use schema_free_stream_joins::ssj_partition::{
    association_groups, consolidate, gini, AssociationGroup, PartitionerKind,
};

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

/// A random schema-free document: up to 6 attributes from a 10-attribute
/// pool, values from a small integer domain (which makes both shared pairs
/// and conflicts likely).
fn doc_strategy() -> impl Strategy<Value = Vec<(u8, u8)>> {
    vec((0u8..10, 0u8..5), 1..6)
}

fn materialize(specs: &[Vec<(u8, u8)>], dict: &Dictionary) -> Vec<Document> {
    specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let pairs = spec
                .iter()
                .map(|&(a, v)| dict.intern(&format!("attr{a}"), Scalar::Int(v as i64)))
                .collect();
            Document::from_pairs(DocId(i as u64), pairs)
        })
        .collect()
}

/// Recursive strategy for arbitrary JSON value trees.
fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        (-1e9f64..1e9f64).prop_map(Value::Float),
        "[a-zA-Z0-9 _\\-\\\\\"\n\t]{0,12}".prop_map(Value::Str),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            vec(inner.clone(), 0..4).prop_map(Value::Array),
            vec(("[a-z]{1,6}", inner), 0..4).prop_map(|fields| {
                let mut obj = Value::object();
                for (k, v) in fields {
                    obj.insert(k, v);
                }
                obj
            }),
        ]
    })
}

// ---------------------------------------------------------------------
// JSON layer
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn json_serialize_parse_roundtrip(v in value_strategy()) {
        let text = v.to_json();
        let back = parse(&text).expect("serializer must emit valid JSON");
        prop_assert_eq!(back, v);
    }

    #[test]
    fn join_check_is_symmetric_and_merge_commutes(
        specs in vec(doc_strategy(), 2..12)
    ) {
        let dict = Dictionary::new();
        let docs = materialize(&specs, &dict);
        for a in &docs {
            for b in &docs {
                prop_assert_eq!(
                    a.check_join(b).joinable(),
                    b.check_join(a).joinable()
                );
                if a.joins_with(b) {
                    let ab = a.merge(b, DocId(900));
                    let ba = b.merge(a, DocId(901));
                    prop_assert_eq!(ab.pairs(), ba.pairs());
                    // The merge must contain every pair of both inputs.
                    for p in a.pairs().iter().chain(b.pairs()) {
                        prop_assert!(ab.has_avp(*p));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Join algorithms
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn all_join_algorithms_agree(specs in vec(doc_strategy(), 0..30)) {
        let dict = Dictionary::new();
        let docs = materialize(&specs, &dict);
        let mut reference: Vec<_> =
            schema_free_stream_joins::ssj_join::nlj::join_batch(&docs);
        reference.sort();
        for algo in [JoinAlgo::FpTree, JoinAlgo::Hbj] {
            let mut got = schema_free_stream_joins::ssj_join::join_batch(algo, &docs);
            got.sort();
            prop_assert_eq!(&got, &reference, "{} differs from NLJ", algo.name());
        }
    }

    #[test]
    fn fp_probe_matches_pairwise_oracle(
        specs in vec(doc_strategy(), 1..25),
        probe_spec in doc_strategy()
    ) {
        let dict = Dictionary::new();
        let docs = materialize(&specs, &dict);
        let probe_pairs = probe_spec
            .iter()
            .map(|&(a, v)| dict.intern(&format!("attr{a}"), Scalar::Int(v as i64)))
            .collect();
        let probe_doc = Document::from_pairs(DocId(10_000), probe_pairs);
        let tree = FpTree::build(&docs);
        // The probe was not part of the order's batch: exercises the
        // fallback for unseen attributes / missing ubiquitous attributes.
        let mut got = fpjoin::probe(&tree, &probe_doc);
        got.sort();
        let mut want: Vec<DocId> = docs
            .iter()
            .filter(|d| d.joins_with(&probe_doc))
            .map(|d| d.id())
            .collect();
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// The arena probe (reused scratch, fast path on AND off) must return
    /// exactly the NLJ oracle's partner set — including after post-seal
    /// inserts force the shared doc pool to relocate slices.
    #[test]
    fn arena_probe_matches_nlj_oracle_fast_on_and_off(
        specs in vec(doc_strategy(), 1..25),
        late_specs in vec(doc_strategy(), 0..6)
    ) {
        let dict = Dictionary::new();
        let docs = materialize(&specs, &dict);
        let mut tree = FpTree::build(&docs);
        let mut scratch = fpjoin::ProbeScratch::new();
        let mut out = Vec::new();
        for d in &docs {
            for fast in [true, false] {
                fpjoin::probe_into(&tree, d, fast, &mut scratch, &mut out);
                let mut got = out.clone();
                got.sort();
                let mut want =
                    schema_free_stream_joins::ssj_join::nlj::probe(&docs, d);
                want.sort();
                prop_assert_eq!(got, want, "fast={} probe {}", fast, d.id());
            }
        }
        // Grow the sealed arena: late inserts may relocate pool slices. The
        // fast path's ubiquity invariant no longer holds for late docs, so
        // (as in production sliding windows) probe with it disabled.
        let late: Vec<Document> = late_specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let pairs = spec
                    .iter()
                    .map(|&(a, v)| {
                        dict.intern(&format!("attr{a}"), Scalar::Int(v as i64))
                    })
                    .collect();
                Document::from_pairs(DocId(20_000 + i as u64), pairs)
            })
            .collect();
        let mut all = docs.clone();
        for d in &late {
            tree.insert(d);
            all.push(d.clone());
        }
        for d in &all {
            fpjoin::probe_into(&tree, d, false, &mut scratch, &mut out);
            let mut got = out.clone();
            got.sort();
            let mut want = schema_free_stream_joins::ssj_join::nlj::probe(&all, d);
            want.sort();
            prop_assert_eq!(got, want, "post-insert probe {}", d.id());
        }
    }

    #[test]
    fn header_probe_matches_topdown(specs in vec(doc_strategy(), 1..25)) {
        let dict = Dictionary::new();
        let docs = materialize(&specs, &dict);
        let tree = FpTree::build(&docs);
        for d in &docs {
            let mut via_header =
                schema_free_stream_joins::ssj_join::probe_via_header(&tree, d);
            let mut topdown = fpjoin::probe(&tree, d);
            via_header.sort();
            topdown.sort();
            prop_assert_eq!(via_header, topdown);
        }
    }

    #[test]
    fn fast_path_never_changes_results(specs in vec(doc_strategy(), 1..25)) {
        let dict = Dictionary::new();
        let docs = materialize(&specs, &dict);
        let tree = FpTree::build(&docs);
        for d in &docs {
            let (mut fast, _) = fpjoin::probe_with_stats(&tree, d, true);
            let (mut slow, _) = fpjoin::probe_with_stats(&tree, d, false);
            fast.sort();
            slow.sort();
            prop_assert_eq!(fast, slow);
        }
    }
}

// ---------------------------------------------------------------------
// Partitioning
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn association_groups_partition_the_pair_space(
        specs in vec(doc_strategy(), 1..25)
    ) {
        let dict = Dictionary::new();
        let docs = materialize(&specs, &dict);
        let views: Vec<Vec<_>> = docs.iter().map(|d| d.avps().collect()).collect();
        let groups = association_groups(&views);
        // Disjoint...
        let mut seen = FxHashSet::default();
        for g in &groups {
            for &avp in &g.avps {
                prop_assert!(seen.insert(avp), "pair in two association groups");
            }
        }
        // ...and covering.
        for v in &views {
            for avp in v {
                prop_assert!(seen.contains(avp), "pair lost by Algorithm 1");
            }
        }
        // Loads are positive and bounded by the batch size.
        for g in &groups {
            prop_assert!(g.load >= 1 && g.load <= docs.len());
        }
    }

    #[test]
    fn every_partitioner_colocates_joinable_creation_docs(
        specs in vec(doc_strategy(), 2..20),
        m in 1usize..5
    ) {
        let dict = Dictionary::new();
        let docs = materialize(&specs, &dict);
        let views: Vec<Vec<_>> = docs.iter().map(|d| d.avps().collect()).collect();
        for kind in PartitionerKind::with_baselines() {
            let table = kind.create(&views, m);
            for (i, a) in views.iter().enumerate() {
                for b in &views[i + 1..] {
                    if !a.iter().any(|p| b.contains(p)) {
                        continue;
                    }
                    let ta = table.route(a).targets(m);
                    let tb = table.route(b).targets(m);
                    prop_assert!(
                        ta.iter().any(|t| tb.contains(t)),
                        "{}: views sharing a pair never meet",
                        kind.name()
                    );
                }
            }
        }
    }

    #[test]
    fn merger_consolidation_is_disjoint_and_lossless(
        raw in vec(vec((0u32..40, 1usize..10), 1..6), 1..4)
    ) {
        let locals: Vec<Vec<AssociationGroup>> = raw
            .iter()
            .map(|groups| {
                groups
                    .iter()
                    .map(|&(base, len)| AssociationGroup {
                        avps: (base..base + len as u32)
                            .map(ssj_json_avp)
                            .collect(),
                        load: len,
                    })
                    .collect()
            })
            .collect();
        let all_pairs: FxHashSet<_> = locals
            .iter()
            .flatten()
            .flat_map(|g| g.avps.iter().copied())
            .collect();
        let out = consolidate(locals);
        let mut seen = FxHashSet::default();
        for g in &out {
            for &avp in &g.avps {
                prop_assert!(seen.insert(avp), "duplicate pair after consolidation");
            }
        }
        prop_assert_eq!(seen, all_pairs);
    }

    #[test]
    fn gini_bounds(loads in vec(0usize..1000, 1..20)) {
        let g = gini(&loads);
        prop_assert!((0.0..=1.0).contains(&g), "gini {g} out of bounds");
    }

    #[test]
    fn route_fanout_bounded_and_deterministic(
        specs in vec(doc_strategy(), 1..15),
        probe in doc_strategy(),
        m in 1usize..6
    ) {
        let dict = Dictionary::new();
        let docs = materialize(&specs, &dict);
        let views: Vec<Vec<_>> = docs.iter().map(|d| d.avps().collect()).collect();
        let table = PartitionerKind::Ag.create(&views, m);
        let view: Vec<_> = probe
            .iter()
            .map(|&(a, v)| dict.intern(&format!("attr{a}"), Scalar::Int(v as i64)).avp)
            .collect();
        let r1 = table.route(&view);
        let r2 = table.route(&view);
        prop_assert_eq!(&r1, &r2, "routing must be deterministic");
        let targets = r1.targets(m);
        prop_assert!(targets.len() <= m);
        prop_assert!(targets.iter().all(|&t| (t as usize) < m));
        // Targets are deduplicated and sorted.
        let mut sorted = targets.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(targets, sorted);
    }

    #[test]
    fn attribute_order_is_a_total_ranking(specs in vec(doc_strategy(), 1..20)) {
        let dict = Dictionary::new();
        let docs = materialize(&specs, &dict);
        let order = schema_free_stream_joins::ssj_join::AttrOrder::compute(docs.iter());
        // Every attribute of the batch gets a unique, dense rank.
        let mut ranks: Vec<u32> = order.attrs().iter().map(|&a| order.rank(a)).collect();
        ranks.sort();
        let expect: Vec<u32> = (0..order.attrs().len() as u32).collect();
        prop_assert_eq!(ranks, expect);
        // Reordering any document puts ubiquitous attributes first.
        for d in &docs {
            let reordered = order.reorder(d);
            for w in reordered.windows(2) {
                prop_assert!(
                    order.rank(w[0].attr) <= order.rank(w[1].attr),
                    "reorder not sorted by rank"
                );
            }
        }
    }

    #[test]
    fn sliding_single_pane_equals_tumbling(specs in vec(doc_strategy(), 1..20)) {
        let dict = Dictionary::new();
        let docs = materialize(&specs, &dict);
        let mut sliding =
            schema_free_stream_joins::ssj_join::SlidingJoiner::new(
                schema_free_stream_joins::ssj_join::WindowSpec::sliding(1000, 1),
            );
        let mut got = Vec::new();
        for d in &docs {
            for p in sliding.insert_and_probe(d.clone()) {
                let (a, b) = (p.min(d.id()), p.max(d.id()));
                got.push((a, b));
            }
        }
        got.sort();
        let mut want = schema_free_stream_joins::ssj_join::nlj::join_batch(&docs);
        want.sort();
        prop_assert_eq!(got, want);
    }
}

fn ssj_json_avp(i: u32) -> schema_free_stream_joins::ssj_json::AvpId {
    schema_free_stream_joins::ssj_json::AvpId(i)
}

// ---------------------------------------------------------------------
// Whole pipeline
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn pipeline_preserves_exact_join_result(
        windows in vec(vec(doc_strategy(), 1..20), 1..4),
        m in 1usize..5,
        kind_idx in 0usize..3,
        expansion in any::<bool>()
    ) {
        let dict = Dictionary::new();
        let kind = PartitionerKind::all()[kind_idx];
        let cfg = StreamJoinConfig::default()
            .with_m(m)
            .with_window_spec(WindowSpec::tumbling(1000)) // windows driven manually below
            .with_partitioner(kind)
            .with_expansion(expansion)
            .build()
            .unwrap();
        let mut pipeline = Pipeline::new(cfg, dict.clone());
        let mut id = 0u64;
        for specs in &windows {
            let docs: Vec<Document> = specs
                .iter()
                .map(|spec| {
                    let pairs = spec
                        .iter()
                        .map(|&(a, v)| {
                            dict.intern(&format!("attr{a}"), Scalar::Int(v as i64))
                        })
                        .collect();
                    id += 1;
                    Document::from_pairs(DocId(id), pairs)
                })
                .collect();
            let report = pipeline.process_window(&docs);
            let truth = ground_truth_pairs(&docs);
            prop_assert_eq!(
                report.unique_join_pairs,
                truth.len(),
                "{} m={} expansion={}: wrong join result",
                kind.name(),
                m,
                expansion
            );
        }
    }
}
