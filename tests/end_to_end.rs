//! Cross-crate integration tests: the full system (threaded topology and
//! deterministic pipeline) against ground truth on both datasets.

use schema_free_stream_joins::ssj_core::{
    ground_truth_pairs, run_topology, Pipeline, StreamJoinConfig, WindowSpec,
};
use schema_free_stream_joins::ssj_data::{
    NoBenchConfig, NoBenchGen, ServerLogConfig, ServerLogGen,
};
use schema_free_stream_joins::ssj_join::JoinAlgo;
use schema_free_stream_joins::ssj_json::{Dictionary, Document, FxHashSet};
use schema_free_stream_joins::ssj_partition::PartitionerKind;

fn serverlog(dict: &Dictionary, n: usize) -> Vec<Document> {
    ServerLogGen::new(ServerLogConfig::default(), dict.clone()).take_docs(n)
}

fn nobench(dict: &Dictionary, n: usize) -> Vec<Document> {
    NoBenchGen::new(NoBenchConfig::default(), dict.clone()).take_docs(n)
}

#[test]
fn pipeline_is_exact_on_server_logs_for_all_partitioners() {
    for kind in PartitionerKind::all() {
        let dict = Dictionary::new();
        let docs = serverlog(&dict, 600);
        let cfg = StreamJoinConfig::default()
            .with_m(4)
            .with_window_spec(WindowSpec::tumbling(200))
            .with_partitioner(kind)
            .build()
            .unwrap();
        let mut pipeline = Pipeline::new(cfg, dict);
        for w in 0..3 {
            let window = &docs[w * 200..(w + 1) * 200];
            let report = pipeline.process_window(window);
            let truth = ground_truth_pairs(window);
            assert_eq!(
                report.unique_join_pairs,
                truth.len(),
                "{}: window {w} lost or invented join results",
                kind.name()
            );
        }
    }
}

#[test]
fn pipeline_is_exact_on_nobench_with_expansion() {
    let dict = Dictionary::new();
    let docs = nobench(&dict, 400);
    let cfg = StreamJoinConfig::default()
        .with_m(6)
        .with_window_spec(WindowSpec::tumbling(200))
        .with_expansion(true)
        .build()
        .unwrap();
    let mut pipeline = Pipeline::new(cfg, dict);
    for w in 0..2 {
        let window = &docs[w * 200..(w + 1) * 200];
        let report = pipeline.process_window(window);
        let truth = ground_truth_pairs(window);
        assert_eq!(report.unique_join_pairs, truth.len(), "window {w}");
    }
}

#[test]
fn all_join_algorithms_agree_inside_the_pipeline() {
    let mut counts = Vec::new();
    for algo in JoinAlgo::all() {
        let dict = Dictionary::new();
        let docs = serverlog(&dict, 400);
        let cfg = StreamJoinConfig::default()
            .with_m(3)
            .with_window_spec(WindowSpec::tumbling(200))
            .with_join(algo)
            .build()
            .unwrap();
        let report = Pipeline::new(cfg, dict).run(docs);
        counts.push((algo.name(), report.total_unique_joins()));
    }
    assert_eq!(counts[0].1, counts[1].1, "{counts:?}");
    assert_eq!(counts[1].1, counts[2].1, "{counts:?}");
    assert!(counts[0].1 > 0, "degenerate test: no joins at all");
}

#[test]
fn threaded_topology_matches_pipeline_results() {
    let dict = Dictionary::new();
    let docs = serverlog(&dict, 450);
    let cfg = StreamJoinConfig::default()
        .with_m(3)
        .with_window_spec(WindowSpec::tumbling(150))
        .with_partition_creators(2)
        .with_assigners(2)
        .build()
        .unwrap();

    // Ground truth per window.
    let truths: Vec<FxHashSet<(u64, u64)>> = (0..3)
        .map(|w| ground_truth_pairs(&docs[w * 150..(w + 1) * 150]))
        .collect();

    // Threaded topology.
    let topo = run_topology(cfg.clone(), &dict, docs.clone()).expect("run");
    assert_eq!(topo.joins_per_window.len(), 3);
    for (w, truth) in truths.iter().enumerate() {
        assert_eq!(&topo.joins_per_window[w], truth, "topology window {w}");
    }

    // Pipeline.
    let mut pipeline = Pipeline::new(cfg, dict);
    for (w, truth) in truths.iter().enumerate() {
        let report = pipeline.process_window(&docs[w * 150..(w + 1) * 150]);
        assert_eq!(report.unique_join_pairs, truth.len(), "pipeline window {w}");
    }
}

#[test]
fn topology_scales_joiner_count() {
    for m in [1usize, 2, 6] {
        let dict = Dictionary::new();
        let docs = serverlog(&dict, 200);
        let cfg = StreamJoinConfig::default()
            .with_m(m)
            .with_window_spec(WindowSpec::tumbling(100))
            .build()
            .unwrap();
        let report = run_topology(cfg, &dict, docs.clone()).expect("run");
        let truth0 = ground_truth_pairs(&docs[..100]);
        assert_eq!(report.joins_per_window[0], truth0, "m={m}");
    }
}

#[test]
fn repeated_runs_of_pipeline_are_deterministic() {
    let run_once = || {
        let dict = Dictionary::new();
        let docs = serverlog(&dict, 600);
        let cfg = StreamJoinConfig::default()
            .with_m(4)
            .with_window_spec(WindowSpec::tumbling(200))
            .build()
            .unwrap();
        let mut p = Pipeline::new(cfg, dict);
        p.compute_joins = false;
        let r = p.run(docs);
        (
            format!("{:.9}", r.mean_replication()),
            format!("{:.9}", r.mean_max_load()),
        )
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn window_isolation_no_cross_window_joins() {
    // Two windows engineered so cross-window pairs would join but
    // within-window pairs would not: tumbling windows must report nothing.
    let dict = Dictionary::new();
    let w1: Vec<Document> = (0..10u64)
        .map(|i| {
            Document::from_json(
                ssj_json_docid(i),
                &format!(r#"{{"k":{},"tag":"x{}"}}"#, i, i),
                &dict,
            )
            .unwrap()
        })
        .collect();
    let w2: Vec<Document> = (10..20u64)
        .map(|i| {
            Document::from_json(
                ssj_json_docid(i),
                &format!(r#"{{"k":{},"tag":"y{}"}}"#, i - 10, i),
                &dict,
            )
            .unwrap()
        })
        .collect();
    let mut all = w1.clone();
    all.extend(w2.clone());
    let cfg = StreamJoinConfig::default()
        .with_m(2)
        .with_window_spec(WindowSpec::tumbling(10))
        .with_expansion(false)
        .build()
        .unwrap();
    let report = Pipeline::new(cfg, dict).run(all);
    assert_eq!(report.windows.len(), 2);
    for w in &report.windows {
        assert_eq!(
            w.unique_join_pairs, 0,
            "cross-window leak in window {}",
            w.window
        );
    }
}

fn ssj_json_docid(i: u64) -> schema_free_stream_joins::ssj_json::DocId {
    schema_free_stream_joins::ssj_json::DocId(i)
}

#[test]
fn event_time_windows_drive_the_pipeline() {
    use schema_free_stream_joins::ssj_core::{windows, SegmentSpec};
    let dict = Dictionary::new();
    let docs = serverlog(&dict, 1200);
    // Segment by the Hour attribute (4 half-hour slots per window).
    let ws = windows(
        docs.clone(),
        SegmentSpec::ByAttribute {
            attr: "Hour".into(),
            width: 4,
        },
        &dict,
    );
    assert!(ws.len() > 2, "expected several event-time windows");
    // Every window's documents fall in one 4-slot bucket.
    let hour = dict.intern_attr("Hour");
    for w in &ws {
        let buckets: FxHashSet<i64> = w
            .iter()
            .filter_map(|d| d.pair_for_attr(hour))
            .filter_map(|p| match dict.avp_scalar(p.avp) {
                schema_free_stream_joins::ssj_json::Scalar::Int(v) => Some(v.div_euclid(4)),
                _ => None,
            })
            .collect();
        assert_eq!(buckets.len(), 1, "window mixes buckets: {buckets:?}");
    }
    // The pipeline stays exact window by window.
    let cfg = StreamJoinConfig::default()
        .with_m(3)
        .with_window_spec(WindowSpec::tumbling(10_000))
        .build()
        .unwrap();
    let mut pipeline = Pipeline::new(cfg, dict);
    for w in &ws {
        let report = pipeline.process_window(w);
        assert_eq!(report.unique_join_pairs, ground_truth_pairs(w).len());
    }
}
