//! Offline stand-in for the `crossbeam` crate.
//!
//! Implements the `crossbeam::channel` subset this workspace consumes:
//! [`channel::bounded`] / [`channel::unbounded`] MPSC channels with
//! cloneable senders, blocking `send`/`recv` with disconnect detection,
//! timeout variants (`send_timeout` / `recv_timeout` / `select_timeout`),
//! and [`channel::Select`] over multiple receivers. Built on `std::sync`
//! condvars; the `Select` implementation registers one shared waker with
//! every watched channel and re-scans readiness after each wakeup.
//!
//! Also implements the `crossbeam-deque` subset used by the pooled
//! scheduler ([`deque`]): per-worker FIFO queues with [`deque::Stealer`]
//! handles and a global [`deque::Injector`]. The real crate is lock-free;
//! this stand-in trades that for a `Mutex<VecDeque>` per queue, which
//! keeps the exact same API and steal semantics (one item per steal,
//! `Steal::{Empty, Success, Retry}`) at adequate performance for the
//! worker counts this workspace runs.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, Weak};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is currently empty (senders still connected).
        Empty,
        /// Channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived before the deadline (senders still connected).
        Timeout,
        /// Channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Sender::send_timeout`]; carries the unsent
    /// message back to the caller.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum SendTimeoutError<T> {
        /// The channel stayed full past the deadline.
        Timeout(T),
        /// Every receiver has been dropped.
        Disconnected(T),
    }

    /// Error returned by [`Select::select_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SelectTimeoutError;

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
        /// Wakers registered by `Select` instances watching this channel.
        wakers: Vec<Weak<Waker>>,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        /// Signalled when the queue gains an item or loses all senders.
        not_empty: Condvar,
        /// Signalled when the queue loses an item or loses all receivers.
        not_full: Condvar,
    }

    pub(crate) struct Waker {
        pub(crate) lock: Mutex<bool>,
        pub(crate) cv: Condvar,
    }

    impl Waker {
        fn wake(&self) {
            *self.lock.lock().unwrap() = true;
            self.cv.notify_all();
        }
    }

    impl<T> Shared<T> {
        /// Notify selects watching this channel; prunes dead wakers.
        fn notify_selects(state: &mut State<T>) {
            state.wakers.retain(|w| match w.upgrade() {
                Some(w) => {
                    w.wake();
                    true
                }
                None => false,
            });
        }
    }

    /// The sending half; cloneable (MPSC).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// A channel holding at most `cap` in-flight messages; `send` blocks
    /// when full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        make(Some(cap))
    }

    /// A channel with no capacity bound; `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(None)
    }

    fn make<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
                wakers: Vec::new(),
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                Shared::notify_selects(&mut st);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Send `msg`, blocking while a bounded channel is full. Fails only
        /// when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                match st.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.shared.not_full.wait(st).unwrap();
                    }
                    _ => break,
                }
            }
            st.queue.push_back(msg);
            Shared::notify_selects(&mut st);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Send `msg`, giving up after `timeout` if a bounded channel stays
        /// full. On timeout the message is handed back to the caller.
        pub fn send_timeout(&self, msg: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendTimeoutError::Disconnected(msg));
                }
                match st.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                            return Err(SendTimeoutError::Timeout(msg));
                        };
                        let (guard, timed_out) =
                            self.shared.not_full.wait_timeout(st, left).unwrap();
                        st = guard;
                        if timed_out.timed_out()
                            && matches!(st.cap, Some(cap) if st.queue.len() >= cap)
                        {
                            return Err(SendTimeoutError::Timeout(msg));
                        }
                    }
                    _ => break,
                }
            }
            st.queue.push_back(msg);
            Shared::notify_selects(&mut st);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receive, blocking until a message arrives. Fails only when the
        /// channel is empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.not_empty.wait(st).unwrap();
            }
        }

        /// Receive, giving up after `timeout` if nothing arrives.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, timed_out) = self.shared.not_empty.wait_timeout(st, left).unwrap();
                st = guard;
                if timed_out.timed_out() && st.queue.is_empty() && st.senders > 0 {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Blocking iterator over received messages; ends when the channel
        /// is empty and every sender has been dropped (mirrors
        /// `crossbeam::channel::Receiver::iter`).
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().unwrap();
            if let Some(msg) = st.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Ready means: a recv would not block (message queued, or
        /// disconnected so recv returns an error immediately).
        fn is_ready(&self) -> bool {
            let st = self.shared.state.lock().unwrap();
            !st.queue.is_empty() || st.senders == 0
        }

        fn register_waker(&self, waker: &Arc<Waker>) {
            let mut st = self.shared.state.lock().unwrap();
            st.wakers.push(Arc::downgrade(waker));
        }
    }

    /// Blocking iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    trait SelectTarget {
        fn ready(&self) -> bool;
        fn register(&self, waker: &Arc<Waker>);
    }

    impl<T> SelectTarget for Receiver<T> {
        fn ready(&self) -> bool {
            self.is_ready()
        }
        fn register(&self, waker: &Arc<Waker>) {
            self.register_waker(waker)
        }
    }

    /// Block until one of several receive operations is ready.
    ///
    /// Mirrors `crossbeam::channel::Select`: register receivers with
    /// [`Select::recv`] (which returns the operation's index), block in
    /// [`Select::select`], then complete the operation by calling
    /// [`SelectedOperation::recv`] **on the same receiver** that was
    /// registered under the returned index.
    #[derive(Default)]
    pub struct Select<'a> {
        targets: Vec<&'a dyn SelectTarget>,
        waker: Option<Arc<Waker>>,
    }

    /// A ready operation produced by [`Select::select`].
    pub struct SelectedOperation {
        index: usize,
    }

    impl<'a> Select<'a> {
        /// New selector with no registered operations.
        pub fn new() -> Self {
            Select {
                targets: Vec::new(),
                waker: None,
            }
        }

        /// Register a receive on `r`; returns the operation index.
        pub fn recv<T>(&mut self, r: &'a Receiver<T>) -> usize {
            self.targets.push(r);
            self.targets.len() - 1
        }

        /// Block until some registered operation is ready.
        ///
        /// Rotates the scan starting point between wakeups so one busy
        /// channel cannot starve the others.
        pub fn select(&mut self) -> SelectedOperation {
            assert!(
                !self.targets.is_empty(),
                "select with no registered operations"
            );
            let waker = self
                .waker
                .get_or_insert_with(|| {
                    let waker = Arc::new(Waker {
                        lock: Mutex::new(false),
                        cv: Condvar::new(),
                    });
                    for t in &self.targets {
                        t.register(&waker);
                    }
                    waker
                })
                .clone();
            let mut start = 0usize;
            loop {
                {
                    // Arm the waker *before* scanning, so a send landing
                    // between the scan and the wait is not lost.
                    *waker.lock.lock().unwrap() = false;
                }
                for off in 0..self.targets.len() {
                    let i = (start + off) % self.targets.len();
                    if self.targets[i].ready() {
                        return SelectedOperation { index: i };
                    }
                }
                start = start.wrapping_add(1);
                let mut woken = waker.lock.lock().unwrap();
                while !*woken {
                    woken = waker.cv.wait(woken).unwrap();
                }
            }
        }

        /// Like [`Select::select`], but give up once `timeout` passes with
        /// no registered operation becoming ready.
        pub fn select_timeout(
            &mut self,
            timeout: Duration,
        ) -> Result<SelectedOperation, SelectTimeoutError> {
            assert!(
                !self.targets.is_empty(),
                "select with no registered operations"
            );
            let deadline = Instant::now() + timeout;
            let waker = self
                .waker
                .get_or_insert_with(|| {
                    let waker = Arc::new(Waker {
                        lock: Mutex::new(false),
                        cv: Condvar::new(),
                    });
                    for t in &self.targets {
                        t.register(&waker);
                    }
                    waker
                })
                .clone();
            let mut start = 0usize;
            loop {
                {
                    *waker.lock.lock().unwrap() = false;
                }
                for off in 0..self.targets.len() {
                    let i = (start + off) % self.targets.len();
                    if self.targets[i].ready() {
                        return Ok(SelectedOperation { index: i });
                    }
                }
                start = start.wrapping_add(1);
                let mut woken = waker.lock.lock().unwrap();
                while !*woken {
                    let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                        return Err(SelectTimeoutError);
                    };
                    let (guard, timed_out) = waker.cv.wait_timeout(woken, left).unwrap();
                    woken = guard;
                    if timed_out.timed_out() && !*woken {
                        return Err(SelectTimeoutError);
                    }
                }
            }
        }
    }

    impl SelectedOperation {
        /// Index the ready operation was registered under.
        pub fn index(&self) -> usize {
            self.index
        }

        /// Complete the receive on the registered receiver.
        ///
        /// With a single consumer thread (the only pattern this workspace
        /// uses) the message observed by `select` is still there, so this
        /// does not block.
        pub fn recv<T>(self, r: &Receiver<T>) -> Result<T, RecvError> {
            match r.try_recv() {
                Ok(msg) => Ok(msg),
                Err(TryRecvError::Disconnected) => Err(RecvError),
                // Lost a race with another consumer; fall back to blocking.
                Err(TryRecvError::Empty) => r.recv(),
            }
        }
    }
}

pub mod deque {
    //! Work-stealing deques in the style of `crossbeam-deque`.
    //!
    //! A [`Worker`] is the owner's end of a queue: only one thread pushes
    //! to and pops from it. [`Stealer`] handles (cloneable, shareable) let
    //! other threads take items from the opposite end. An [`Injector`] is
    //! a shared FIFO any thread may push to — the global entry point for
    //! work that has no home worker yet.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One item was stolen.
        Success(T),
        /// The attempt lost a race; the caller may retry.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen item, if this attempt succeeded.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(v) => Some(v),
                _ => None,
            }
        }

        /// Whether the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// The owner's end of a work-stealing queue (FIFO discipline: the
    /// owner pops from the front, stealers also take from the front, so
    /// envelope-arrival order is preserved under contention).
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// New FIFO worker queue (matches `crossbeam_deque::Worker::new_fifo`).
        pub fn new_fifo() -> Self {
            Worker {
                inner: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Push a task onto the owner's queue.
        pub fn push(&self, task: T) {
            self.inner.lock().unwrap().push_back(task);
        }

        /// Pop the next task, if any.
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().unwrap().pop_front()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().unwrap().is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.inner.lock().unwrap().len()
        }

        /// A new stealer handle onto this queue.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    /// A shareable handle that steals from another worker's queue.
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Try to steal one task from the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            match self.inner.lock().unwrap().pop_front() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }
    }

    /// A shared FIFO any thread can push to; workers drain it when their
    /// own queue runs dry.
    pub struct Injector<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// New empty injector.
        pub fn new() -> Self {
            Injector {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Push a task onto the global queue.
        pub fn push(&self, task: T) {
            self.inner.lock().unwrap().push_back(task);
        }

        /// Try to steal one task from the global queue.
        pub fn steal(&self) -> Steal<T> {
            match self.inner.lock().unwrap().pop_front() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }

        /// Whether the global queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().unwrap().is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.inner.lock().unwrap().len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvError, Select};
    use super::deque::{Injector, Steal, Worker};
    use std::thread;
    use std::time::Duration;

    #[test]
    fn unbounded_roundtrip_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        let tx2 = tx.clone();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_receiver_drops() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(5).is_err());
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until a recv frees a slot
            "done"
        });
        thread::sleep(Duration::from_millis(30));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(t.join().unwrap(), "done");
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn mpsc_from_many_threads() {
        let (tx, rx) = bounded(4);
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for j in 0..100 {
                        tx.send(i * 100 + j).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        for h in handles {
            h.join().unwrap();
        }
        got.sort_unstable();
        let want: Vec<i32> = (0..800).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn select_picks_ready_channel() {
        let (tx_a, rx_a) = bounded::<i32>(4);
        let (tx_b, rx_b) = unbounded::<i32>();
        tx_b.send(7).unwrap();
        let mut sel = Select::new();
        let ia = sel.recv(&rx_a);
        let ib = sel.recv(&rx_b);
        let op = sel.select();
        assert_eq!(op.index(), ib);
        assert_eq!(op.recv(&rx_b), Ok(7));
        drop(sel);

        // Now wake from a blocked select via a cross-thread send.
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            tx_a.send(9).unwrap();
        });
        let mut sel = Select::new();
        let ia2 = sel.recv(&rx_a);
        let _ib2 = sel.recv(&rx_b);
        let op = sel.select();
        assert_eq!(op.index(), ia2);
        assert_eq!(op.recv(&rx_a), Ok(9));
        t.join().unwrap();
        let _ = ia;
    }

    #[test]
    fn deque_fifo_owner_and_stealer() {
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        w.push(3);
        let s = w.stealer();
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(s.steal(), Steal::Success(3));
        assert_eq!(w.pop(), None);
        assert!(s.steal().is_empty());
    }

    #[test]
    fn injector_feeds_many_threads_exactly_once() {
        let inj = std::sync::Arc::new(Injector::new());
        for i in 0..400 {
            inj.push(i);
        }
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let inj = std::sync::Arc::clone(&inj);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match inj.steal() {
                            Steal::Success(v) => got.push(v),
                            Steal::Empty => break,
                            Steal::Retry => continue,
                        }
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<i32> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let want: Vec<i32> = (0..400).collect();
        assert_eq!(all, want);
    }

    #[test]
    fn select_sees_disconnect() {
        let (tx, rx) = unbounded::<i32>();
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            drop(tx);
        });
        let mut sel = Select::new();
        let i = sel.recv(&rx);
        let op = sel.select();
        assert_eq!(op.index(), i);
        assert_eq!(op.recv(&rx), Err(RecvError));
        t.join().unwrap();
    }
}
