//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use rand::Rng;
use std::cell::{Cell, OnceCell};
use std::rc::{Rc, Weak};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// maps an RNG state straight to a value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Build a recursive strategy: `self` generates leaves, and `f` turns a
    /// handle to the whole strategy into the branch strategy. `depth`
    /// bounds recursion; `_desired_size` and `_expected_branch_size` are
    /// accepted for upstream signature compatibility.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        Recursive::new(self.boxed(), depth, f)
    }

    /// Type-erase the strategy (cheaply cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

/// Always generates a clone of the held value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.new_value(rng))
    }
}

/// Uniform choice among several strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Union<T> {
    /// A union over the given (non-empty) alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.0.gen_range(0..self.options.len());
        self.options[i].new_value(rng)
    }
}

// ---------------------------------------------------------------------
// Recursive strategies
// ---------------------------------------------------------------------

struct RecursiveInner<T> {
    leaf: BoxedStrategy<T>,
    depth: u32,
    /// Remaining recursion budget while a value is being generated.
    budget: Cell<u32>,
    expanded: OnceCell<BoxedStrategy<T>>,
}

/// The result of [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    inner: Rc<RecursiveInner<T>>,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive {
            inner: self.inner.clone(),
        }
    }
}

/// The self-handle passed to the `prop_recursive` closure: generates a
/// leaf when the depth budget is spent, otherwise recurses.
struct RecursiveProxy<T> {
    inner: Weak<RecursiveInner<T>>,
}

impl<T: 'static> Recursive<T> {
    fn new<S, F>(leaf: BoxedStrategy<T>, depth: u32, f: F) -> Self
    where
        S: Strategy<Value = T> + 'static,
        F: Fn(BoxedStrategy<T>) -> S,
    {
        let inner = Rc::new(RecursiveInner {
            leaf,
            depth,
            budget: Cell::new(depth),
            expanded: OnceCell::new(),
        });
        let proxy = BoxedStrategy(Rc::new(RecursiveProxy {
            inner: Rc::downgrade(&inner),
        }) as Rc<dyn Strategy<Value = T>>);
        let expanded = f(proxy).boxed();
        inner
            .expanded
            .set(expanded)
            .unwrap_or_else(|_| unreachable!("expanded set once"));
        Recursive { inner }
    }
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.inner.budget.set(self.inner.depth);
        // Sometimes the whole value is a leaf, like upstream.
        if self.inner.depth == 0 || rng.0.gen_bool(0.25) {
            self.inner.leaf.new_value(rng)
        } else {
            self.inner.expanded.get().expect("built").new_value(rng)
        }
    }
}

impl<T: 'static> Strategy for RecursiveProxy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let inner = self.inner.upgrade().expect("recursive root alive");
        let budget = inner.budget.get();
        if budget == 0 || rng.0.gen_bool(0.3) {
            return inner.leaf.new_value(rng);
        }
        inner.budget.set(budget - 1);
        let v = inner.expanded.get().expect("built").new_value(rng);
        inner.budget.set(budget);
        v
    }
}

// ---------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        rng.0.gen_range(self.clone())
    }
}

// ---------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )+};
}

tuple_strategy!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

// ---------------------------------------------------------------------
// Regex-lite string strategies: `"[class]{lo,hi}"` patterns
// ---------------------------------------------------------------------

/// One pattern atom: a set of char ranges plus a repetition count.
struct Atom {
    /// Inclusive char ranges to draw from.
    ranges: Vec<(char, char)>,
    lo: u32,
    hi: u32,
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

/// Parse the regex subset used by this workspace's tests: a concatenation
/// of literal chars and `[...]` classes, each optionally followed by
/// `{n}` or `{lo,hi}`.
fn parse_pattern(pat: &str) -> Vec<Atom> {
    let mut chars = pat.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let ranges = match c {
            '[' => {
                let mut members: Vec<char> = Vec::new();
                let mut ranges: Vec<(char, char)> = Vec::new();
                loop {
                    let c = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated char class in pattern {pat:?}"));
                    match c {
                        ']' => break,
                        '\\' => {
                            let e = chars
                                .next()
                                .unwrap_or_else(|| panic!("dangling escape in {pat:?}"));
                            members.push(unescape(e));
                        }
                        '-' if !members.is_empty() && chars.peek() != Some(&']') => {
                            let start = members.pop().expect("range start");
                            let mut end = chars.next().expect("range end");
                            if end == '\\' {
                                end = unescape(chars.next().expect("escaped range end"));
                            }
                            assert!(start <= end, "bad range {start}-{end} in {pat:?}");
                            ranges.push((start, end));
                        }
                        other => members.push(other),
                    }
                }
                ranges.extend(members.into_iter().map(|m| (m, m)));
                assert!(!ranges.is_empty(), "empty char class in {pat:?}");
                ranges
            }
            '\\' => {
                let e = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in {pat:?}"));
                let c = unescape(e);
                vec![(c, c)]
            }
            other => vec![(other, other)],
        };
        // Optional quantifier.
        let (lo, hi) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut first = String::new();
            let mut second: Option<String> = None;
            loop {
                match chars.next().expect("unterminated quantifier") {
                    '}' => break,
                    ',' => second = Some(String::new()),
                    d => match &mut second {
                        Some(s) => s.push(d),
                        None => first.push(d),
                    },
                }
            }
            let lo: u32 = first.parse().expect("quantifier lower bound");
            let hi = match second {
                Some(s) => s.parse().expect("quantifier upper bound"),
                None => lo,
            };
            (lo, hi)
        } else {
            (1, 1)
        };
        atoms.push(Atom { ranges, lo, hi });
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = rng.0.gen_range(atom.lo..=atom.hi);
            let total: u32 = atom
                .ranges
                .iter()
                .map(|&(a, b)| b as u32 - a as u32 + 1)
                .sum();
            for _ in 0..n {
                let mut pick = rng.0.gen_range(0..total);
                for &(a, b) in &atom.ranges {
                    let span = b as u32 - a as u32 + 1;
                    if pick < span {
                        out.push(
                            char::from_u32(a as u32 + pick)
                                .expect("range stays within scalar values"),
                        );
                        break;
                    }
                    pick -= span;
                }
            }
        }
        out
    }
}
