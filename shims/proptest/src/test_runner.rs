//! Test-case configuration, errors, and the deterministic per-test RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// How many cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated inputs per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; the shim has no shrinking, so a smaller
        // default keeps `cargo test` latency reasonable while still mixing
        // sizes and shapes well.
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property case (carries the assertion message).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure from a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type of a property body; `prop_assert*` return `Err` early.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic RNG seeded from the test's name: failures reproduce on
/// re-run without any persistence file.
pub struct TestRng(pub(crate) StdRng);

impl TestRng {
    /// Seed from an arbitrary name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}
