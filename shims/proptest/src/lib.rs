//! Offline stand-in for the `proptest` crate.
//!
//! Reproduces the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_recursive` /
//! `boxed`, range and tuple strategies, regex-character-class string
//! strategies (`"[a-z]{1,6}"`), [`collection::vec`], `any::<T>()`,
//! [`prop_oneof!`], and the [`proptest!`] / `prop_assert*` macros.
//!
//! Differences from upstream, by design: no shrinking (a failing case is
//! reported as-is with its case number and seed), and generation is driven
//! by a deterministic per-test RNG seeded from the test's name, so failures
//! reproduce on re-run.

pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};

/// `any::<T>()` strategies for primitive types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    /// A strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.0.gen_bool(0.5)
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Mix full-range values with small ones: edge-adjacent
                    // magnitudes find more bugs than uniform noise alone.
                    if rng.0.gen_bool(0.5) {
                        rng.0.gen_range(<$t>::MIN..=<$t>::MAX)
                    } else {
                        rng.0.gen_range(-16i32 as $t..=16 as $t)
                    }
                }
            }
        )*};
    }
    arb_int!(i8, i16, i32, i64);

    macro_rules! arb_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    if rng.0.gen_bool(0.5) {
                        rng.0.gen_range(<$t>::MIN..=<$t>::MAX)
                    } else {
                        rng.0.gen_range(0..=32 as $t)
                    }
                }
            }
        )*};
    }
    arb_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for String {
        fn arbitrary(rng: &mut TestRng) -> String {
            let len = rng.0.gen_range(0usize..=16);
            let mut s = String::with_capacity(len);
            for _ in 0..len {
                let c = match rng.0.gen_range(0u32..10) {
                    // Mostly printable ASCII...
                    0..=5 => char::from(rng.0.gen_range(0x20u8..0x7f)),
                    // ...some whitespace/control...
                    6 => *['\n', '\t', '\r', '\u{0}']
                        .get(rng.0.gen_range(0usize..4))
                        .unwrap(),
                    // ...some multi-byte scalars across the BMP and beyond.
                    _ => loop {
                        if let Some(c) = char::from_u32(rng.0.gen_range(0x80u32..0x11_0000)) {
                            break c;
                        }
                    },
                };
                s.push(c);
            }
            s
        }
    }
}

pub use arbitrary::{any, Arbitrary};

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector whose length is uniform in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start >= self.size.end {
                self.size.start
            } else {
                rng.0.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Combine strategies, choosing one uniformly per generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fail the enclosing property if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the enclosing property unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{}: {:?} != {:?}", format!($($fmt)+), l, r);
    }};
}

/// Fail the enclosing property unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{}: {:?} == {:?}", format!($($fmt)+), l, r);
    }};
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` for `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::new_value(&($strat), &mut rng);
                    )+
                    let outcome: $crate::test_runner::TestCaseResult =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {case}/{} of `{}` failed: {e}",
                            config.cases,
                            stringify!($name),
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Tree {
        Leaf(i64),
        Node(Vec<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 1,
            Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_in_bounds(a in 3u8..9, b in -5i64..5, f in -1.5f64..2.5) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((-1.5..2.5).contains(&f));
        }

        #[test]
        fn regex_class_shapes(s in "[a-z]{1,6}", t in "[A-C_][0-9x]{0,3}") {
            prop_assert!((1..=6).contains(&s.len()));
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let mut chars = t.chars();
            let head = chars.next().unwrap();
            prop_assert!(matches!(head, 'A'..='C' | '_'), "head {head:?}");
            prop_assert!(chars.all(|c| c.is_ascii_digit() || c == 'x'));
            prop_assert!(t.len() <= 4);
        }

        #[test]
        fn vec_and_tuple_strategies(items in vec((0u8..10, 0u8..5), 1..6)) {
            prop_assert!((1..6).contains(&items.len()));
            for (a, v) in items {
                prop_assert!(a < 10 && v < 5);
            }
        }

        #[test]
        fn recursion_is_depth_bounded(t in tree_strategy()) {
            // depth=3 recursion budget → up to 4 container levels + leaf.
            prop_assert!(depth(&t) <= 5, "depth {} tree {t:?}", depth(&t));
        }

        #[test]
        fn early_return_ok_works(n in 0u8..10) {
            if n < 10 {
                return Ok(());
            }
            prop_assert!(false, "unreachable");
        }
    }

    fn tree_strategy() -> impl Strategy<Value = Tree> {
        let leaf = any::<i64>().prop_map(Tree::Leaf);
        leaf.prop_recursive(3, 16, 4, |inner| {
            prop_oneof![
                vec(inner.clone(), 0..4).prop_map(Tree::Node),
                inner.prop_map(|t| Tree::Node(vec![t])),
            ]
        })
    }

    #[test]
    fn oneof_hits_every_arm() {
        let strat = prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut rng = crate::test_runner::TestRng::from_name("oneof");
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[strat.new_value(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn deterministic_per_test_name() {
        let strat = "[a-z]{1,6}";
        let mut r1 = crate::test_runner::TestRng::from_name("same");
        let mut r2 = crate::test_runner::TestRng::from_name("same");
        for _ in 0..50 {
            assert_eq!(strat.new_value(&mut r1), strat.new_value(&mut r2));
        }
    }
}
