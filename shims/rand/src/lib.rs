//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! Provides exactly what this workspace consumes: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and float
//! ranges, and [`Rng::gen_bool`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic under a fixed seed, statistically solid for
//! data generation (this workspace never uses randomness for security).

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction of reproducible generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can be sampled uniformly; mirrors `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p` (`0.0 ..= 1.0`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `u64` → uniform `f64` in `[0, 1)` using the top 53 bits.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // 128-bit multiply-shift rejection-free mapping; the bias is
                // < 2^-64 and irrelevant for data generation.
                let mapped = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + mapped) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let mapped = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + mapped) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Not the same stream as upstream `rand::rngs::StdRng` (ChaCha12), but
    /// nothing in this workspace depends on the concrete stream — only on
    /// determinism under a fixed seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let a_run: Vec<u64> = (0..16).map(|_| a.gen_range(0..u64::MAX - 1)).collect();
        let c_run: Vec<u64> = (0..16).map(|_| c.gen_range(0..u64::MAX - 1)).collect();
        assert_ne!(a_run, c_run);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3i64..17);
            assert!((3..17).contains(&v));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
            let f = rng.gen_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&f));
            let n = rng.gen_range(-8i32..-2);
            assert!((-8..-2).contains(&n));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits={hits}");
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn uniform_covers_small_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700), "{counts:?}");
    }
}
