//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! exact API surface it consumes: [`Mutex`] and [`RwLock`] with
//! non-poisoning guards. Backed by `std::sync`; a poisoned std lock (a
//! panicked holder) is transparently recovered, matching `parking_lot`'s
//! behaviour of not propagating poison.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(7));
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
