//! Offline stand-in for the `criterion` crate.
//!
//! Reproduces the API surface this workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Throughput`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros — with a
//! simple wall-clock measurer instead of criterion's statistical engine.
//!
//! Run modes (the same binary serves both, like upstream criterion):
//! * `cargo bench` passes `--bench`: each benchmark is warmed up and then
//!   sampled for ~`measure_ms` milliseconds; a `name  time: X ns/iter`
//!   line is printed, plus derived throughput when configured.
//! * `cargo test` (no `--bench` flag): each benchmark body runs once so
//!   the bench compiles and executes but adds no meaningful test latency.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus optional parameter string.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// One completed measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full benchmark id (`group/function[/param]`).
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations actually timed.
    pub iters: u64,
    /// Group throughput annotation, if any.
    pub throughput: Option<Throughput>,
}

/// Top-level benchmark driver.
pub struct Criterion {
    measure_ms: u64,
    run_full: bool,
    results: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        let run_full = std::env::args().any(|a| a == "--bench");
        Criterion {
            measure_ms: 120,
            run_full,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Accept and ignore CLI arguments (upstream-compatible no-op beyond
    /// the `--bench` detection done in `default()`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// All measurements recorded so far (bench mode only).
    pub fn measurements(&self) -> &[Measurement] {
        &self.results
    }

    /// Print a closing line (upstream prints a summary; we keep it short).
    pub fn final_summary(&self) {
        if self.run_full {
            eprintln!(
                "[criterion-shim] {} benchmarks measured",
                self.results.len()
            );
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Upstream tunes sample counts; the shim measures by wall-clock
    /// budget, so this only scales the budget mildly.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Map criterion's 10..=100 default range onto 40..=400 ms.
        self.criterion.measure_ms = (n as u64).clamp(10, 100) * 4;
        self
    }

    /// Annotate per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Define and run a benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, &mut f);
        self
    }

    /// Define and run a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Close the group (upstream emits plots; the shim needs no action).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let full_id = format!("{}/{id}", self.name);
        let mut bencher = Bencher {
            mode: if self.criterion.run_full {
                Mode::Measure {
                    budget: Duration::from_millis(self.criterion.measure_ms),
                }
            } else {
                Mode::Once
            },
            ns_per_iter: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        if self.criterion.run_full {
            let m = Measurement {
                id: full_id,
                ns_per_iter: bencher.ns_per_iter,
                iters: bencher.iters,
                throughput: self.throughput,
            };
            let rate = match m.throughput {
                Some(Throughput::Elements(n)) if m.ns_per_iter > 0.0 => {
                    format!("  ({:.3} Melem/s)", n as f64 * 1e3 / m.ns_per_iter)
                }
                Some(Throughput::Bytes(n)) if m.ns_per_iter > 0.0 => {
                    format!(
                        "  ({:.1} MiB/s)",
                        n as f64 * 1e9 / m.ns_per_iter / (1 << 20) as f64
                    )
                }
                _ => String::new(),
            };
            println!(
                "{:<48} time: {:>12.1} ns/iter  ({} iters){rate}",
                m.id, m.ns_per_iter, m.iters
            );
            self.criterion.results.push(m);
        }
    }
}

enum Mode {
    /// Test mode: run the body exactly once.
    Once,
    /// Bench mode: warm up, then sample for the given wall-clock budget.
    Measure { budget: Duration },
}

/// Timing harness handed to each benchmark body.
pub struct Bencher {
    mode: Mode,
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Measure `f`, discarding its output through [`black_box`].
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            Mode::Once => {
                black_box(f());
                self.iters = 1;
            }
            Mode::Measure { budget } => {
                // Warm-up and per-iteration cost estimate: double the batch
                // until it takes at least ~1 ms.
                let mut batch: u64 = 1;
                let est = loop {
                    let t0 = Instant::now();
                    for _ in 0..batch {
                        black_box(f());
                    }
                    let dt = t0.elapsed();
                    if dt >= Duration::from_millis(1) || batch >= 1 << 20 {
                        break dt.as_secs_f64() / batch as f64;
                    }
                    batch *= 2;
                };
                let total = (budget.as_secs_f64() / est.max(1e-9)).clamp(1.0, 5e7) as u64;
                let t0 = Instant::now();
                for _ in 0..total {
                    black_box(f());
                }
                let dt = t0.elapsed();
                self.ns_per_iter = dt.as_secs_f64() * 1e9 / total as f64;
                self.iters = total;
            }
        }
    }
}

/// Expand to a function running every listed benchmark with one
/// [`Criterion`] instance.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench_fn:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $bench_fn(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Expand to `main` invoking every listed [`criterion_group!`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_body_once() {
        let mut c = Criterion {
            measure_ms: 10,
            run_full: false,
            results: Vec::new(),
        };
        let mut runs = 0u32;
        let mut group = c.benchmark_group("g");
        group.bench_function("one", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 1);
        assert!(c.measurements().is_empty());
    }

    #[test]
    fn bench_mode_measures() {
        let mut c = Criterion {
            measure_ms: 5,
            run_full: true,
            results: Vec::new(),
        };
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_function(BenchmarkId::new("add", 3), |b| {
            b.iter(|| black_box(1u64 + 2))
        });
        group.finish();
        let m = &c.measurements()[0];
        assert_eq!(m.id, "g/add/3");
        assert!(m.iters >= 1);
        assert!(m.ns_per_iter >= 0.0);
    }
}
