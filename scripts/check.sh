#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, tests.
#
# Usage: scripts/check.sh
# Run from anywhere; operates on the workspace containing this script.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> chaos smoke (fault injection + supervised recovery, legacy + pooled)"
cargo test -q -p ssj-runtime --test chaos
cargo test -q -p ssj-partition --test cross_partitioners

echo "==> pooled scheduler smoke (pooled == thread-per-task join output)"
cargo test -q -p ssj-core --test sched_equivalence
cargo test -q -p ssj-runtime --test metrics_conservation

echo "==> shared-nothing scale-out smoke (wire codec, socket groups == single process,"
echo "    2-worker Unix-socket CLI run incl. a killed-and-relaunched worker)"
cargo test -q -p ssj-core --test wire_codec
cargo test -q -p ssj-core --test distributed_equivalence
cargo test -q -p ssj-cli --test distributed

echo "==> sliding-window smoke (pane-chained runtime == oracle == brute force,"
echo "    route-cache expiry on pane eviction, crash-and-recover inside a sliding run)"
cargo test -q -p ssj-core --test sliding_equivalence
cargo test -q -p ssj-core --test route_cache_expiry
cargo test -q -p ssj-core --test sliding_chaos

echo "==> partitioning pipeline smoke bench vs committed baseline (+ claims)"
cargo build --release -q -p ssj-bench --bin bench_partition
./target/release/bench_partition --check BENCH_partition.json

echo "==> routing allocation audit (count-allocs build, 0 allocs/route)"
cargo run --release -q -p ssj-bench --features count-allocs --bin bench_partition -- --audit

echo "==> runtime throughput smoke bench vs committed baseline (incl. scheduler gates:"
echo "    20% regression on sched/*, transport/{inproc,socket} and sliding/* ids,"
echo "    pooled/legacy >= 1.5x at m=64, >= 0.95x at m=4, sliding 16-pane >= 0.3x 1-pane)"
cargo build --release -q -p ssj-bench --bin bench_runtime
./target/release/bench_runtime --check BENCH_runtime.json

echo "==> metrics overhead gate (join smoke, metrics on vs off, >5% fails)"
./target/release/bench_runtime --overhead

echo "==> tail-latency smoke vs committed baseline (open-loop paced runs:"
echo "    constant p99 <= 4x baseline, Zipf straggler probe load with"
echo "    replication <= 0.7x unreplicated; every run asserts the shed"
echo "    conservation law offered == dropped + passed)"
cargo build --release -q -p ssj-bench --bin bench_latency
./target/release/bench_latency --check BENCH_latency.json

echo "==> replication + shedding smoke (replicated == unreplicated == oracle,"
echo "    joiner crash holding replica cells recovers byte-identical, shed"
echo "    counters conserved across replay)"
cargo test -q -p ssj-core --test replication_equivalence
cargo test -q -p ssj-core --test replication_chaos

echo "==> all checks passed"
