#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, tests, smoke benches.
#
# Usage: scripts/check.sh
# Run from anywhere; operates on the workspace containing this script.
#
# Every stage is named and timed; on failure the exit trap prints which
# stage died and after how long, so a red CI run names its culprit in the
# final log line instead of requiring a scroll-back.

set -euo pipefail
cd "$(dirname "$0")/.."

CURRENT_STAGE="(startup)"
STAGE_START=$SECONDS

on_exit() {
    status=$?
    if [ "$status" -ne 0 ]; then
        echo "FAILED in stage '$CURRENT_STAGE' after $((SECONDS - STAGE_START))s (exit $status)" >&2
    fi
}
trap on_exit EXIT

# stage NAME CMD... — announce, run, report wall time.
stage() {
    CURRENT_STAGE=$1
    shift
    echo "==> $CURRENT_STAGE"
    STAGE_START=$SECONDS
    "$@"
    echo "    $CURRENT_STAGE: $((SECONDS - STAGE_START))s"
}

stage "fmt" cargo fmt --check

stage "clippy" cargo clippy --workspace --all-targets -- -D warnings

stage "test" cargo test -q

# Fault injection + supervised recovery, legacy + pooled.
stage "chaos smoke" cargo test -q -p ssj-runtime --test chaos
stage "partitioner differential" cargo test -q -p ssj-partition --test cross_partitioners

# Pooled == thread-per-task join output; metric conservation laws.
stage "scheduler equivalence" cargo test -q -p ssj-core --test sched_equivalence
stage "metrics conservation" cargo test -q -p ssj-runtime --test metrics_conservation

# Every reported quantile within 12.5% of the exact order statistic.
stage "histogram accuracy" cargo test -q -p ssj-runtime --test histogram_error

# Wire codec, socket groups == single process, 2-worker Unix-socket CLI
# run incl. a killed-and-relaunched worker.
stage "wire codec" cargo test -q -p ssj-core --test wire_codec
stage "distributed equivalence" cargo test -q -p ssj-core --test distributed_equivalence
stage "distributed CLI" cargo test -q -p ssj-cli --test distributed

# Pane-chained runtime == oracle == brute force, route-cache expiry on
# pane eviction, crash-and-recover inside a sliding run.
stage "sliding equivalence" cargo test -q -p ssj-core --test sliding_equivalence
stage "route-cache expiry" cargo test -q -p ssj-core --test route_cache_expiry
stage "sliding chaos" cargo test -q -p ssj-core --test sliding_chaos

# Spilled == resident join output across window shapes, batch sizes,
# schedulers, and a recovered crash; budget 0 provably installs nothing.
stage "spill equivalence" cargo test -q -p ssj-core --test spill_equivalence

stage "bench_partition build" cargo build --release -q -p ssj-bench --bin bench_partition
# Partitioning pipeline smoke bench vs committed baseline (+ claims).
stage "bench_partition gate" ./target/release/bench_partition --check BENCH_partition.json

# Count-allocs build, 0 allocs/route.
stage "routing alloc audit" cargo run --release -q -p ssj-bench --features count-allocs --bin bench_partition -- --audit

stage "bench_runtime build" cargo build --release -q -p ssj-bench --bin bench_runtime
# Throughput vs committed baseline incl. scheduler gates: 20% regression
# on sched/*, transport/{inproc,socket} and sliding/* ids, pooled/legacy
# >= 1.5x at m=64, >= 0.95x at m=4, sliding 16-pane >= 0.3x 1-pane.
stage "bench_runtime gate" ./target/release/bench_runtime --check BENCH_runtime.json

# Join smoke, metrics on vs off, >5% fails.
stage "metrics overhead gate" ./target/release/bench_runtime --overhead

stage "bench_latency build" cargo build --release -q -p ssj-bench --bin bench_latency
# Open-loop paced runs: constant p99 <= 4x baseline, Zipf straggler probe
# load with replication <= 0.7x unreplicated; every run asserts the shed
# conservation law offered == dropped + passed.
stage "bench_latency gate" ./target/release/bench_latency --check BENCH_latency.json

stage "bench_spill build" cargo build --release -q -p ssj-bench --bin bench_spill
# Out-of-core runs: window state >= 10x budget, tier engaged in both
# directions, spilled probe p99 bounded vs a fresh resident baseline;
# spilled and resident join output asserted equal inside the binary.
stage "bench_spill gate" ./target/release/bench_spill --check BENCH_spill.json

# Replicated == unreplicated == oracle, joiner crash holding replica
# cells recovers byte-identical, shed counters conserved across replay.
stage "replication equivalence" cargo test -q -p ssj-core --test replication_equivalence
stage "replication chaos" cargo test -q -p ssj-core --test replication_chaos

CURRENT_STAGE="(done)"
echo "==> all checks passed"
