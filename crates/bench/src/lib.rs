//! # ssj-bench — the experiment harness
//!
//! Shared machinery for regenerating every figure of the paper's evaluation
//! (§VII). The `figures` binary drives it; the Criterion benches reuse the
//! dataset builders.
//!
//! Scaling: the paper streams a day of logs per 3-minute window on an
//! 8-node cluster. Here a "minute" maps to [`Scale::docs_per_minute`]
//! documents, so the paper's `w ∈ {3, 6, 9}` minutes become windows of
//! `3·dpm / 6·dpm / 9·dpm` documents. Shapes (who wins, by what factor) are
//! preserved; absolute numbers are not comparable to the paper's cluster.

#![warn(missing_docs)]

pub mod report;
pub mod traffic;

use ssj_core::{Pipeline, StreamJoinConfig};
use ssj_data::{
    ideal_stream, IdealConfig, NoBenchConfig, NoBenchGen, ServerLogConfig, ServerLogGen,
};
use ssj_json::{Dictionary, Document};
use ssj_partition::PartitionerKind;

/// The two datasets of §VII-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataSet {
    /// Server-log substitute for the proprietary real-world data.
    RwData,
    /// NoBench-style synthetic data.
    NbData,
}

impl DataSet {
    /// Paper-style label ("rwData" / "nbData").
    pub fn label(self) -> &'static str {
        match self {
            DataSet::RwData => "rwData",
            DataSet::NbData => "nbData",
        }
    }

    /// Both datasets in presentation order.
    pub fn all() -> [DataSet; 2] {
        [DataSet::RwData, DataSet::NbData]
    }

    /// Generate `n` documents into a fresh dictionary.
    pub fn generate(self, n: usize, seed: u64) -> (Dictionary, Vec<Document>) {
        let dict = Dictionary::new();
        let docs = match self {
            DataSet::RwData => ServerLogGen::new(
                ServerLogConfig {
                    seed,
                    ..Default::default()
                },
                dict.clone(),
            )
            .take_docs(n),
            DataSet::NbData => NoBenchGen::new(
                NoBenchConfig {
                    seed,
                    ..Default::default()
                },
                dict.clone(),
            )
            .take_docs(n),
        };
        (dict, docs)
    }
}

/// Experiment scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Documents per simulated "minute" (the paper's window unit).
    pub docs_per_minute: usize,
    /// Number of windows per experiment run.
    pub windows: usize,
    /// Multiplier on Fig. 11 document counts (1.0 = the paper's 100k–500k /
    /// 10k–50k axis values).
    pub join_scale: f64,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            docs_per_minute: 250,
            windows: 8,
            join_scale: 0.1,
        }
    }
}

/// One partitioning-experiment measurement (one bar in Figs. 6–10).
#[derive(Debug, Clone)]
pub struct PartitionMeasurement {
    /// Mean replication across windows (Fig. 6).
    pub replication: f64,
    /// Mean Gini load balance (Fig. 7).
    pub load_balance: f64,
    /// Mean maximal processing load (Fig. 8).
    pub max_load: f64,
    /// Percentage of windows that repartitioned (Fig. 9).
    pub repartitions_pct: f64,
}

/// Run the streaming partitioning experiment behind Figs. 6–9.
pub fn partition_experiment(
    dataset: DataSet,
    kind: PartitionerKind,
    m: usize,
    w_minutes: usize,
    theta: f64,
    scale: Scale,
) -> PartitionMeasurement {
    let window_docs = w_minutes * scale.docs_per_minute;
    let total = window_docs * scale.windows;
    let (dict, docs) = dataset.generate(total, 42);
    let cfg = StreamJoinConfig::default()
        .with_m(m)
        .with_window_spec(ssj_core::WindowSpec::tumbling(window_docs))
        .with_theta(theta)
        .with_partitioner(kind)
        .with_expansion(true)
        .build()
        .expect("valid experiment config");
    let mut pipeline = Pipeline::new(cfg, dict);
    pipeline.compute_joins = false;
    let report = pipeline.run(docs);
    PartitionMeasurement {
        replication: report.mean_replication(),
        load_balance: report.mean_load_balance(),
        max_load: report.mean_max_load(),
        repartitions_pct: report.repartition_fraction() * 100.0,
    }
}

/// Run the ideal-execution experiment of Fig. 10.
pub fn ideal_experiment(kind: PartitionerKind, m: usize, scale: Scale) -> PartitionMeasurement {
    let dict = Dictionary::new();
    // A stable base window: no novelty, so co-occurrence characteristics
    // repeat exactly (§VII-E-4).
    let base = ServerLogGen::new(
        ServerLogConfig {
            seed: 42,
            novelty: 0.0,
            ..Default::default()
        },
        dict.clone(),
    )
    .take_docs(6 * scale.docs_per_minute);
    let windows = ideal_stream(
        &base,
        IdealConfig {
            windows: scale.windows,
            novel_per_window: (base.len() / 100).max(1),
        },
        &dict,
    );
    let cfg = StreamJoinConfig::default()
        .with_m(m)
        .with_window_spec(ssj_core::WindowSpec::tumbling(
            base.len() + base.len() / 100,
        ))
        .with_partitioner(kind)
        .with_expansion(true)
        .build()
        .expect("valid experiment config");
    let mut pipeline = Pipeline::new(cfg, dict);
    pipeline.compute_joins = false;
    let mut reports = Vec::new();
    for w in &windows {
        reports.push(pipeline.process_window(w));
    }
    let report = ssj_core::PipelineReport { windows: reports };
    PartitionMeasurement {
        replication: report.mean_replication(),
        load_balance: report.mean_load_balance(),
        max_load: report.mean_max_load(),
        repartitions_pct: report.repartition_fraction() * 100.0,
    }
}

pub mod testutil {
    //! Reusable run-equivalence assertions for integration, recovery, and
    //! chaos tests: canonicalize a run's per-window join output and compare
    //! two runs window by window with a readable diff.

    use ssj_core::TopologyRunReport;
    use std::fmt::Debug;

    /// Canonical per-window join output: `windows[w]` holds the window's
    /// unique `(min, max)` document-id pairs, sorted.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct RunWindows {
        /// Sorted unique pairs, one `Vec` per window in window order.
        pub windows: Vec<Vec<(u64, u64)>>,
    }

    impl RunWindows {
        /// Canonicalize raw per-window pair collections (order and
        /// duplicates are normalized away; each pair is flipped to
        /// `(min, max)`).
        pub fn from_pairs<I>(windows: I) -> RunWindows
        where
            I: IntoIterator,
            I::Item: IntoIterator<Item = (u64, u64)>,
        {
            let windows = windows
                .into_iter()
                .map(|w| {
                    let mut pairs: Vec<(u64, u64)> =
                        w.into_iter().map(|(a, b)| (a.min(b), a.max(b))).collect();
                    pairs.sort_unstable();
                    pairs.dedup();
                    pairs
                })
                .collect();
            RunWindows { windows }
        }

        /// Canonicalize a full topology run.
        pub fn from_report(report: &TopologyRunReport) -> RunWindows {
            RunWindows::from_pairs(
                report
                    .joins_per_window
                    .iter()
                    .map(|w| w.iter().copied().collect::<Vec<_>>()),
            )
        }
    }

    /// Anything comparable as canonical per-window join output.
    pub trait AsRunWindows {
        /// The canonical view of this run.
        fn run_windows(&self) -> RunWindows;
    }

    impl AsRunWindows for RunWindows {
        fn run_windows(&self) -> RunWindows {
            self.clone()
        }
    }

    impl AsRunWindows for TopologyRunReport {
        fn run_windows(&self) -> RunWindows {
            RunWindows::from_report(self)
        }
    }

    /// Assert that two runs produced identical join output in every window;
    /// panics with the first differing window and both sides' pairs.
    pub fn assert_runs_equal(a: &impl AsRunWindows, b: &impl AsRunWindows) {
        let (a, b) = (a.run_windows(), b.run_windows());
        assert_windows_equal("join pairs", &a.windows, &b.windows);
    }

    /// Generic per-window equality with a readable per-window diff:
    /// compares lengths first, then each window, naming `what` differs.
    pub fn assert_windows_equal<T: PartialEq + Debug>(what: &str, a: &[T], b: &[T]) {
        assert_eq!(
            a.len(),
            b.len(),
            "window counts differ for {what}: {} vs {}",
            a.len(),
            b.len()
        );
        for (w, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                x, y,
                "window {w}: {what} differ\n  left: {x:?}\n right: {y:?}"
            );
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn canonicalization_flips_sorts_and_dedups() {
            let a = RunWindows::from_pairs(vec![vec![(2, 1), (1, 2), (3, 4)]]);
            let b = RunWindows::from_pairs(vec![vec![(3, 4), (1, 2)]]);
            assert_eq!(a, b);
            assert_runs_equal(&a, &b);
        }

        #[test]
        #[should_panic(expected = "window 1")]
        fn differing_window_is_named() {
            let a = RunWindows::from_pairs(vec![vec![(1, 2)], vec![(3, 4)]]);
            let b = RunWindows::from_pairs(vec![vec![(1, 2)], vec![(3, 5)]]);
            assert_runs_equal(&a, &b);
        }

        #[test]
        #[should_panic(expected = "window counts differ")]
        fn differing_window_count_is_named() {
            let a = RunWindows::from_pairs(vec![vec![(1, 2)]]);
            let b = RunWindows::from_pairs(Vec::<Vec<(u64, u64)>>::new());
            assert_runs_equal(&a, &b);
        }
    }
}

/// Print a paper-style table: rows = x-axis values, columns = algorithms.
pub fn print_table<T: std::fmt::Display>(
    title: &str,
    x_label: &str,
    xs: &[T],
    columns: &[(&str, Vec<f64>)],
) {
    println!("\n# {title}");
    print!("{x_label:<8}");
    for (name, _) in columns {
        print!("{name:>10}");
    }
    println!();
    for (i, x) in xs.iter().enumerate() {
        print!("{:<8}", x.to_string());
        for (_, values) in columns {
            print!("{:>10.3}", values[i]);
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            docs_per_minute: 40,
            windows: 3,
            join_scale: 0.01,
        }
    }

    #[test]
    fn partition_experiment_runs_all_combinations() {
        for dataset in DataSet::all() {
            for kind in PartitionerKind::all() {
                let m = partition_experiment(dataset, kind, 4, 3, 0.2, tiny());
                assert!(m.replication >= 1.0, "{dataset:?} {kind:?}: {m:?}");
                assert!(m.replication <= 4.0 + 1e-9);
                assert!((0.0..=1.0).contains(&m.load_balance));
                assert!((0.0..=1.0).contains(&m.max_load));
                assert!((0.0..=100.0).contains(&m.repartitions_pct));
            }
        }
    }

    #[test]
    fn ideal_experiment_runs() {
        let m = ideal_experiment(PartitionerKind::Ag, 4, tiny());
        assert!(m.replication >= 1.0);
    }

    #[test]
    fn ds_has_best_replication_ag_has_better_balance_than_ds() {
        // Shape check from the paper on the ideal (stable) workload:
        // DS ≈ 1 replication but concentrated load; AG balances better.
        let scale = Scale {
            docs_per_minute: 80,
            windows: 4,
            join_scale: 0.01,
        };
        let ag = ideal_experiment(PartitionerKind::Ag, 4, scale);
        let ds = ideal_experiment(PartitionerKind::Ds, 4, scale);
        assert!(
            ds.replication <= ag.replication + 1e-9,
            "DS replication {} vs AG {}",
            ds.replication,
            ag.replication
        );
        assert!(
            ag.max_load <= ds.max_load + 1e-9,
            "AG max load {} vs DS {}",
            ag.max_load,
            ds.max_load
        );
    }

    #[test]
    fn dataset_generation_deterministic() {
        let (d1, a) = DataSet::RwData.generate(50, 1);
        let (d2, b) = DataSet::RwData.generate(50, 1);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_json(&d1), y.to_json(&d2));
        }
    }
}
