//! Shared plumbing for the `bench_*` binaries: the measurement record, the
//! best-of-N repetition policy, and the one-measurement-per-line JSON report
//! format that `--check` modes (and shell tooling) can parse without a JSON
//! library.

/// One throughput measurement.
pub struct Measurement {
    /// e.g. `chain/batch=32` — the key `--check` compares by.
    pub id: String,
    /// Primary rate (tuples, docs, views or derives per second).
    pub tuples_per_sec: f64,
    /// Items processed.
    pub tuples: u64,
    /// Wall-clock seconds of the best run.
    pub secs: f64,
    /// Benchmark-specific secondary figure (average transport batch for the
    /// runtime bench, speedup factor for the partition bench; 0 when
    /// unused).
    pub avg_batch: f64,
}

/// Best-of-`reps`: wall-clock throughput on a shared machine is noisy, and
/// the fastest run is the least-perturbed estimate of what the code can do.
pub fn best_of(reps: usize, f: impl Fn() -> Measurement) -> Measurement {
    let mut best = f();
    for _ in 1..reps {
        let m = f();
        if m.tuples_per_sec > best.tuples_per_sec {
            best = m;
        }
    }
    best
}

/// Render measurements as the lines of one JSON array (no brackets).
pub fn json_section(ms: &[Measurement]) -> String {
    ms.iter()
        .map(|m| {
            format!(
                "    {{\"id\": \"{}\", \"tuples_per_sec\": {:.1}, \"tuples\": {}, \
                 \"secs\": {:.4}, \"avg_batch\": {:.2}}}",
                m.id, m.tuples_per_sec, m.tuples, m.secs, m.avg_batch
            )
        })
        .collect::<Vec<_>>()
        .join(",\n")
}

/// Write a `{"bench": name, "<section>": [...], …}` report to `path`.
pub fn write_report(path: &str, bench: &str, sections: &[(&str, &[Measurement])]) {
    let mut body = format!("{{\n  \"bench\": \"{bench}\"");
    for (name, ms) in sections {
        body.push_str(&format!(",\n  \"{name}\": [\n{}\n  ]", json_section(ms)));
    }
    body.push_str("\n}\n");
    std::fs::write(path, body).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}

/// Extract `(id, tuples_per_sec)` pairs from one section of a committed
/// baseline. One-measurement-per-line format; no JSON library needed.
pub fn parse_section(text: &str, section: &str) -> Vec<(String, f64)> {
    let header = format!("\"{section}\"");
    let mut out = Vec::new();
    let mut inside = false;
    for line in text.lines() {
        if line.contains(&header) {
            inside = true;
            continue;
        }
        if inside && line.trim_start().starts_with(']') {
            break;
        }
        if !inside {
            continue;
        }
        let Some(id) = extract_str(line, "\"id\": \"") else {
            continue;
        };
        let Some(rate) = extract_num(line, "\"tuples_per_sec\": ") else {
            continue;
        };
        out.push((id, rate));
    }
    out
}

/// The string value following `key` on `line`, up to the closing quote.
pub fn extract_str(line: &str, key: &str) -> Option<String> {
    let rest = &line[line.find(key)? + key.len()..];
    Some(rest[..rest.find('"')?].to_owned())
}

/// The number following `key` on `line`.
pub fn extract_num(line: &str, key: &str) -> Option<f64> {
    let rest = &line[line.find(key)? + key.len()..];
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Compare a fresh run against a baseline section with a relative-rate
/// floor; prints one line per id and returns `false` on any regression or
/// missing id. `min_ratio` 0.8 = the standard 20% gate.
pub fn check_against(baseline: &[(String, f64)], fresh: &[Measurement], min_ratio: f64) -> bool {
    let mut ok = true;
    for (id, base_rate) in baseline {
        let Some(m) = fresh.iter().find(|m| &m.id == id) else {
            eprintln!("baseline id {id} missing from fresh run");
            ok = false;
            continue;
        };
        let ratio = m.tuples_per_sec / base_rate;
        let verdict = if ratio < min_ratio {
            ok = false;
            "REGRESSION"
        } else {
            "ok"
        };
        println!(
            "check {id}: baseline {base_rate:.0}/s, now {:.0}/s ({ratio:.2}x) {verdict}",
            m.tuples_per_sec
        );
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(id: &str, rate: f64) -> Measurement {
        Measurement {
            id: id.into(),
            tuples_per_sec: rate,
            tuples: 10,
            secs: 0.5,
            avg_batch: 0.0,
        }
    }

    #[test]
    fn roundtrip_through_section_parser() {
        let ms = vec![m("a/b", 1234.5), m("c", 9.0)];
        let body = format!("{{\n  \"smoke\": [\n{}\n  ]\n}}\n", json_section(&ms));
        let parsed = parse_section(&body, "smoke");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "a/b");
        assert!((parsed[0].1 - 1234.5).abs() < 1e-6);
        assert!(parse_section(&body, "full").is_empty());
    }

    #[test]
    fn best_of_keeps_fastest() {
        let rates = std::cell::Cell::new(0.0);
        let best = best_of(3, || {
            rates.set(rates.get() + 1.0);
            m("x", if rates.get() == 2.0 { 100.0 } else { 1.0 })
        });
        assert!((best.tuples_per_sec - 100.0).abs() < 1e-9);
    }

    #[test]
    fn check_against_flags_regressions() {
        let base = vec![("x".to_string(), 100.0)];
        assert!(check_against(&base, &[m("x", 90.0)], 0.8));
        assert!(!check_against(&base, &[m("x", 50.0)], 0.8));
        assert!(!check_against(&base, &[m("y", 100.0)], 0.8));
    }
}
