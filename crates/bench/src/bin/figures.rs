//! Regenerate every figure of the paper's evaluation (§VII).
//!
//! ```text
//! cargo run -p ssj-bench --release --bin figures -- all
//! cargo run -p ssj-bench --release --bin figures -- fig6 fig11
//! cargo run -p ssj-bench --release --bin figures -- --dpm 500 --windows 10 fig8
//! cargo run -p ssj-bench --release --bin figures -- --join-scale 1.0 fig11   # paper-scale axis
//! ```
//!
//! Output is a plain-text table per sub-figure: rows are the x-axis of the
//! paper's plot, columns the competing algorithms.

use ssj_bench::{ideal_experiment, partition_experiment, print_table, DataSet, Scale};
use ssj_join::{split_timings, JoinAlgo};
use ssj_partition::PartitionerKind;

const MS: [usize; 4] = [5, 8, 10, 20];
const WS: [usize; 3] = [3, 6, 9];
const THETAS: [f64; 2] = [0.2, 0.6];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::default();
    let mut figures: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--dpm" => {
                scale.docs_per_minute = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--dpm needs a number");
            }
            "--windows" => {
                scale.windows = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--windows needs a number");
            }
            "--join-scale" => {
                scale.join_scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--join-scale needs a number");
            }
            other => figures.push(other.to_ascii_lowercase()),
        }
    }
    if figures.is_empty() || figures.iter().any(|f| f == "all") {
        figures = vec![
            "fig6".into(),
            "fig7".into(),
            "fig8".into(),
            "fig9".into(),
            "fig10".into(),
            "fig11".into(),
        ];
    }
    println!(
        "scale: {} docs/minute, {} windows per run, join-scale {}",
        scale.docs_per_minute, scale.windows, scale.join_scale
    );
    for fig in figures {
        match fig.as_str() {
            "fig6" => partition_figure(scale, Metric::Replication),
            "fig7" => partition_figure(scale, Metric::LoadBalance),
            "fig8" => partition_figure(scale, Metric::MaxLoad),
            "fig9" => fig9(scale),
            "fig10" => fig10(scale),
            "fig11" => fig11(scale),
            other => eprintln!("unknown figure '{other}' (expected fig6..fig11)"),
        }
    }
}

#[derive(Clone, Copy)]
enum Metric {
    Replication,
    LoadBalance,
    MaxLoad,
}

impl Metric {
    fn title(self) -> &'static str {
        match self {
            Metric::Replication => "Fig. 6 — Replication (avg)",
            Metric::LoadBalance => "Fig. 7 — Load Balance (Gini)",
            Metric::MaxLoad => "Fig. 8 — Max Processing Load (avg)",
        }
    }

    fn pick(self, m: &ssj_bench::PartitionMeasurement) -> f64 {
        match self {
            Metric::Replication => m.replication,
            Metric::LoadBalance => m.load_balance,
            Metric::MaxLoad => m.max_load,
        }
    }
}

/// Figs. 6/7/8: (a) varying m rwData, (b) varying w rwData, (c) varying m
/// nbData, (d) varying w nbData.
fn partition_figure(scale: Scale, metric: Metric) {
    for dataset in DataSet::all() {
        // Varying partitions, w=6, θ=0.2.
        let columns: Vec<(&str, Vec<f64>)> = PartitionerKind::all()
            .iter()
            .map(|&kind| {
                let vals: Vec<f64> = MS
                    .iter()
                    .map(|&m| metric.pick(&partition_experiment(dataset, kind, m, 6, 0.2, scale)))
                    .collect();
                (kind.name(), vals)
            })
            .collect();
        print_table(
            &format!(
                "{} — varying partitions ({}) [w=6, θ=0.2]",
                metric.title(),
                dataset.label()
            ),
            "m",
            &MS,
            &columns,
        );

        // Varying window, m=8, θ=0.2.
        let columns: Vec<(&str, Vec<f64>)> = PartitionerKind::all()
            .iter()
            .map(|&kind| {
                let vals: Vec<f64> = WS
                    .iter()
                    .map(|&w| metric.pick(&partition_experiment(dataset, kind, 8, w, 0.2, scale)))
                    .collect();
                (kind.name(), vals)
            })
            .collect();
        print_table(
            &format!(
                "{} — varying window ({}) [m=8, θ=0.2]",
                metric.title(),
                dataset.label()
            ),
            "w",
            &WS,
            &columns,
        );
    }
}

/// Fig. 9: repartition percentage vs θ, m=8, w=6.
fn fig9(scale: Scale) {
    for dataset in DataSet::all() {
        let columns: Vec<(&str, Vec<f64>)> = PartitionerKind::all()
            .iter()
            .map(|&kind| {
                let vals: Vec<f64> = THETAS
                    .iter()
                    .map(|&theta| {
                        partition_experiment(dataset, kind, 8, 6, theta, scale).repartitions_pct
                    })
                    .collect();
                (kind.name(), vals)
            })
            .collect();
        print_table(
            &format!("Fig. 9 — Repartitions (%) ({}) [m=8, w=6]", dataset.label()),
            "theta",
            &THETAS,
            &columns,
        );
    }
}

/// Fig. 10: ideal execution — replication / Gini / max load vs m.
fn fig10(scale: Scale) {
    let mut per_kind: Vec<(&str, Vec<ssj_bench::PartitionMeasurement>)> = Vec::new();
    for kind in PartitionerKind::all() {
        let ms: Vec<_> = MS
            .iter()
            .map(|&m| ideal_experiment(kind, m, scale))
            .collect();
        per_kind.push((kind.name(), ms));
    }
    for (sub, title, pick) in [
        ("a", "Replication (avg)", 0usize),
        ("b", "Load balance (Gini)", 1),
        ("c", "Max processing load (avg)", 2),
    ] {
        let columns: Vec<(&str, Vec<f64>)> = per_kind
            .iter()
            .map(|(name, ms)| {
                let vals: Vec<f64> = ms
                    .iter()
                    .map(|m| match pick {
                        0 => m.replication,
                        1 => m.load_balance,
                        _ => m.max_load,
                    })
                    .collect();
                (*name, vals)
            })
            .collect();
        print_table(
            &format!("Fig. 10{sub} — Ideal execution: {title} [w=6, θ=0.2]"),
            "m",
            &MS,
            &columns,
        );
    }
}

/// Fig. 11: local join execution times.
fn fig11(scale: Scale) {
    let fp_sizes: Vec<usize> = [100_000usize, 300_000, 500_000]
        .iter()
        .map(|&n| ((n as f64 * scale.join_scale) as usize).max(100))
        .collect();
    let base_sizes: Vec<usize> = [10_000usize, 30_000, 50_000]
        .iter()
        .map(|&n| ((n as f64 * scale.join_scale) as usize).max(100))
        .collect();

    for dataset in DataSet::all() {
        // (a)/(b): FPTreeJoin creation + join, stacked.
        let max = *fp_sizes.last().unwrap();
        let (_dict, docs) = dataset.generate(max, 42);
        let mut creation = Vec::new();
        let mut join = Vec::new();
        for &n in &fp_sizes {
            let t = split_timings(JoinAlgo::FpTree, &docs[..n]);
            creation.push(t.creation.as_secs_f64());
            join.push(t.join.as_secs_f64());
        }
        print_table(
            &format!("Fig. 11 — FPTreeJoin ({}) [seconds]", dataset.label()),
            "docs",
            &fp_sizes,
            &[("Creation", creation), ("Join", join)],
        );

        // (c)/(d): NLJ vs HBJ.
        let max = *base_sizes.last().unwrap();
        let (_dict, docs) = dataset.generate(max, 42);
        let mut nlj = Vec::new();
        let mut hbj = Vec::new();
        for &n in &base_sizes {
            let t = split_timings(JoinAlgo::Nlj, &docs[..n]);
            nlj.push(t.creation.as_secs_f64() + t.join.as_secs_f64());
            let t = split_timings(JoinAlgo::Hbj, &docs[..n]);
            hbj.push(t.creation.as_secs_f64() + t.join.as_secs_f64());
        }
        print_table(
            &format!("Fig. 11 — Competitor joins ({}) [seconds]", dataset.label()),
            "docs",
            &base_sizes,
            &[("NLJ", nlj), ("HBJ", hbj)],
        );
    }
}
