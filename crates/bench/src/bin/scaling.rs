//! Beyond the paper: end-to-end throughput of the threaded Fig. 2 topology
//! on this machine, as a function of the number of Joiners (m) and of the
//! local join algorithm.
//!
//! ```text
//! cargo run -p ssj-bench --release --bin scaling [-- docs-per-run]
//! ```

use ssj_bench::DataSet;
use ssj_core::{run_topology, StreamJoinConfig};
use ssj_join::JoinAlgo;
use std::time::Instant;

fn main() {
    let docs_per_run: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let window = (docs_per_run / 8).max(100);

    println!("threaded topology throughput ({docs_per_run} docs, window {window})\n");
    println!(
        "{:<10} {:<6} {:>12} {:>12}",
        "dataset", "m", "seconds", "docs/sec"
    );
    for dataset in DataSet::all() {
        for m in [1usize, 2, 4, 8] {
            let (dict, docs) = dataset.generate(docs_per_run, 42);
            let cfg = StreamJoinConfig::default()
                .with_m(m)
                .with_window_spec(ssj_core::WindowSpec::tumbling(window))
                .with_partition_creators(2)
                .with_assigners(4)
                .build()
                .expect("valid scaling config");
            let t0 = Instant::now();
            let report = run_topology(cfg, &dict, docs).expect("run");
            let secs = t0.elapsed().as_secs_f64();
            let joins: usize = report.joins_per_window.iter().map(|w| w.len()).sum();
            println!(
                "{:<10} {:<6} {:>12.3} {:>12.0}   ({} join pairs)",
                dataset.label(),
                m,
                secs,
                docs_per_run as f64 / secs,
                joins
            );
        }
    }

    println!("\nlocal join algorithm at the Joiners (m=4, rwData)\n");
    println!("{:<6} {:>12} {:>12}", "algo", "seconds", "docs/sec");
    for algo in JoinAlgo::all() {
        let (dict, docs) = DataSet::RwData.generate(docs_per_run, 42);
        let cfg = StreamJoinConfig::default()
            .with_m(4)
            .with_window_spec(ssj_core::WindowSpec::tumbling(window))
            .with_join(algo)
            .with_partition_creators(2)
            .with_assigners(4)
            .build()
            .expect("valid scaling config");
        let t0 = Instant::now();
        run_topology(cfg, &dict, docs).expect("run");
        let secs = t0.elapsed().as_secs_f64();
        println!(
            "{:<6} {:>12.3} {:>12.0}",
            algo.name(),
            secs,
            docs_per_run as f64 / secs
        );
    }
}
