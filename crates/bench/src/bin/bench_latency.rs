//! Open-loop tail-latency benchmark for the Fig. 2 join topology.
//!
//! A deterministic arrival schedule (see [`ssj_bench::traffic`]) is
//! replayed by a paced spout against real time; every document's
//! end-to-end latency — intended arrival to window report — lands in a
//! histogram per window, and this binary reports the pooled p50/p99/p999.
//! Three workloads:
//!
//! * **constant** — uniform sessionized stream at a constant rate,
//!   replication off: the baseline tail the regression gate tracks.
//! * **zipf** — heavily skewed stream (Zipf s=1.5 over 8 sessions), paced
//!   identically with replication OFF and ON. The hot session's quadratic
//!   join load lands on one joiner without replication and spreads over
//!   the replica cells with it, which is what the paired gate measures.
//! * **bursty** — on/off arrival bursts with a small shed budget: reports
//!   the drop counters and asserts their conservation
//!   (`offered == dropped + passed`).
//!
//! Modes:
//! * no args: run all workloads, print per-window quantiles, write
//!   `BENCH_latency.json` at the repository root;
//! * `--check FILE`: rerun and exit non-zero when (a) the constant-profile
//!   p99 exceeds 4x the committed baseline (tail latency on a shared
//!   machine is noisy; 4x still catches an accidental sync stall), or
//!   (b) under the Zipf workload, the straggler joiner's p99 probe load
//!   with replication ON exceeds 0.7x the replication-OFF value — the
//!   scale-out claim of DESIGN.md §4h, gated on one seed and one schedule
//!   so the comparison is paired.
//!
//! Gate (b) deliberately measures probe load (candidate pairs per
//! window-close join, `probe_pairs_p99`) rather than a wall-clock tail.
//! On a core-starved CI runner every topology thread time-slices on the
//! same CPUs, so each joiner's wall-clock probe duration — and the
//! end-to-end tail behind it — approaches the *total* work of all
//! concurrent joiners, which systematically hides the straggler effect
//! replication removes. The probe load is what a Zipfian hot group
//! inflates (one joiner holds the whole quadratic blow-up) and what
//! replication provably splits across replica cells; with one joiner per
//! core it is proportional to the deployed window-close latency, and
//! being a pure count it is deterministic per seed, so the gate never
//! flakes. Wall-clock quantiles are still reported for context.
//!
//! Latencies are written in microseconds, one measurement per line, so
//! `--check` (and shell tooling) can parse the file without a JSON
//! library.

use ssj_bench::report::extract_num;
use ssj_bench::traffic::{sessionized_docs, ArrivalProfile, SkewConfig};
use ssj_core::{run_topology_paced, LatencyReport, StreamJoinConfig, WindowSpec};
use ssj_runtime::FaultPlan;

const REPORT_PATH: &str = "BENCH_latency.json";
const WINDOW: usize = 3000;
const WINDOWS: usize = 6;
const N: usize = WINDOW * WINDOWS;

/// One latency measurement: pooled quantiles plus the shed counters of the
/// run (zero with shedding off).
struct LatencyRow {
    id: String,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    /// Straggler probe p99: max over joiners of the per-window
    /// window-close join duration p99. Wall-clock — context only.
    probe_p99_us: f64,
    /// Straggler probe load p99: p99 over the per-(joiner, window)
    /// candidate-pair counts of the steady-state windows (window 0 is the
    /// detection window — hot lists computed from it take effect from
    /// window 1). Deterministic per seed; the gated value.
    probe_pairs_p99: u64,
    shed_offered: u64,
    shed_dropped: u64,
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

/// Run one paced topology and collect quantiles + shed counters. Panics if
/// the shed counters fail conservation — no run may lose envelopes
/// unaccounted.
fn paced_run(
    id: &str,
    cfg: StreamJoinConfig,
    skew: SkewConfig,
    profile: ArrivalProfile,
    jitter: f64,
) -> (LatencyRow, LatencyReport) {
    let (dict, docs) = sessionized_docs(N, skew);
    let schedule = profile.schedule(N, skew.seed, jitter);
    let (report, lat) = run_topology_paced(cfg, &dict, docs, schedule, FaultPlan::new()).unwrap();

    let (mut offered, mut dropped, mut passed) = (0u64, 0u64, 0u64);
    let mut probe_p99 = 0u64;
    for t in report
        .runtime
        .tasks
        .iter()
        .filter(|t| t.component == "joiner")
    {
        offered += t.counter("shed_offered");
        dropped += t.counter("shed_dropped");
        passed += t.counter("shed_passed");
        if let Some(h) = t.histogram("probe_ns") {
            probe_p99 = probe_p99.max(h.quantile_ns(0.99));
        }
    }

    // Straggler probe load: per-(joiner, window) candidate-pair counts as
    // reported in each joiner's JoinStats — exact and deterministic per
    // seed. Window 0 is skipped: it is the detection window, whose hot
    // lists govern routing from window 1 onward, so replication cannot
    // engage before it by construction.
    let probe_pairs_p99 = report
        .pairs_per_joiner
        .iter()
        .skip(1)
        .flatten()
        .map(|&p| p as u64)
        .max()
        .unwrap_or(0);
    assert_eq!(
        offered,
        dropped + passed,
        "{id}: shed counters must be conserved"
    );

    let row = LatencyRow {
        id: id.to_string(),
        p50_us: us(lat.quantile_ns(0.50)),
        p99_us: us(lat.quantile_ns(0.99)),
        p999_us: us(lat.quantile_ns(0.999)),
        probe_p99_us: us(probe_p99),
        probe_pairs_p99,
        shed_offered: offered,
        shed_dropped: dropped,
    };
    (row, lat)
}

fn print_windows(id: &str, lat: &LatencyReport) {
    for (w, h) in &lat.per_window {
        println!(
            "{id} window {w}: n={} p50={:.0}us p99={:.0}us p999={:.0}us",
            h.count,
            us(h.quantile_ns(0.50)),
            us(h.quantile_ns(0.99)),
            us(h.quantile_ns(0.999)),
        );
    }
}

fn base_cfg() -> ssj_core::ConfigBuilder {
    StreamJoinConfig::default()
        .with_m(6)
        .with_window_spec(WindowSpec::tumbling(WINDOW))
        .with_partition_creators(2)
        .with_assigners(2)
        .with_expansion(false)
        .with_metrics(true)
}

/// Constant-rate uniform baseline: all sessions equally likely.
fn constant_run() -> LatencyRow {
    let skew = SkewConfig {
        seed: 11,
        keys: 6,
        s: 0.0,
        attach: 0.8,
    };
    let profile = ArrivalProfile::Constant { rate: 400_000.0 };
    let cfg = base_cfg().build().unwrap();
    let (row, lat) = paced_run("constant/rep_off", cfg, skew, profile, 0.0);
    print_windows(&row.id, &lat);
    row
}

/// Paired skewed runs: identical stream and schedule, replication toggled.
fn zipf_runs() -> (LatencyRow, LatencyRow) {
    // Bare session documents (attach 0): each document carries exactly the
    // session pair, so the hot session's quadratic join lands on a single
    // joiner without replication — the cleanest PanJoin-style scenario.
    let skew = SkewConfig {
        seed: 42,
        keys: 8,
        s: 1.5,
        attach: 0.0,
    };
    let profile = ArrivalProfile::Constant { rate: 300_000.0 };
    let off = base_cfg().build().unwrap();
    let on = base_cfg()
        .with_replicate_hot(true)
        .with_hot_factor(1.2)
        .build()
        .unwrap();
    let (row_off, lat_off) = paced_run("zipf/rep_off", off, skew, profile, 0.0);
    let (row_on, lat_on) = paced_run("zipf/rep_on", on, skew, profile, 0.0);
    print_windows(&row_off.id, &lat_off);
    print_windows(&row_on.id, &lat_on);
    (row_off, row_on)
}

/// Bursty arrivals against a small shed budget: probe-only documents are
/// dropped under queue pressure; table state and punctuation never are.
fn bursty_shed_run() -> LatencyRow {
    let skew = SkewConfig {
        seed: 7,
        keys: 4,
        s: 1.1,
        attach: 0.9,
    };
    let profile = ArrivalProfile::Bursty {
        trough: 20_000.0,
        peak: 2_000_000.0,
        period_ns: 4_000_000,
        duty: 0.25,
    };
    let cfg = base_cfg().with_shed_budget(32).build().unwrap();
    let (row, lat) = paced_run("bursty/shed_budget=32", cfg, skew, profile, 0.1);
    print_windows(&row.id, &lat);
    row
}

fn write_latency_report(path: &str, rows: &[LatencyRow]) {
    let body = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"id\": \"{}\", \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
                 \"p999_us\": {:.1}, \"probe_p99_us\": {:.1}, \
                 \"probe_pairs_p99\": {}, \
                 \"shed_offered\": {}, \"shed_dropped\": {}}}",
                r.id,
                r.p50_us,
                r.p99_us,
                r.p999_us,
                r.probe_p99_us,
                r.probe_pairs_p99,
                r.shed_offered,
                r.shed_dropped
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let text = format!("{{\n  \"bench\": \"latency\",\n  \"latency\": [\n{body}\n  ]\n}}\n");
    std::fs::write(path, text).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}

/// The committed baseline's quantile for one id, parsed without a JSON
/// library (one measurement per line).
fn baseline_quantile(text: &str, id: &str, key: &str) -> Option<f64> {
    let tag = format!("\"id\": \"{id}\"");
    text.lines()
        .find(|l| l.contains(&tag))
        .and_then(|l| extract_num(l, &format!("\"{key}\": ")))
}

fn check(path: &str) -> i32 {
    let baseline = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("read {path}: {e}");
        std::process::exit(2);
    });
    let mut ok = true;

    // Gate 1: constant-profile p99 within 4x of the committed baseline.
    let fresh = constant_run();
    match baseline_quantile(&baseline, &fresh.id, "p99_us") {
        Some(base) => {
            let ratio = fresh.p99_us / base;
            let verdict = if ratio > 4.0 {
                ok = false;
                "REGRESSION"
            } else {
                "ok"
            };
            println!(
                "check {}: baseline p99 {base:.0}us, now {:.0}us ({ratio:.2}x) {verdict}",
                fresh.id, fresh.p99_us
            );
        }
        None => {
            eprintln!("baseline id {} missing from {path}", fresh.id);
            ok = false;
        }
    }

    // Gate 2 (paired, same run): replication must cut the straggler
    // joiner's p99 probe load under skew. Pair counts are deterministic
    // per seed, so this comparison cannot flake under CPU contention.
    let (off, on) = zipf_runs();
    let ratio = on.probe_pairs_p99 as f64 / off.probe_pairs_p99 as f64;
    let verdict = if ratio > 0.7 {
        ok = false;
        "FAIL"
    } else {
        "ok"
    };
    println!(
        "check zipf replication: straggler probe load p99 off {} pairs, on {} pairs \
         ({ratio:.2}x, need <= 0.70); wall probe p99 off {:.0}us, on {:.0}us {verdict}",
        off.probe_pairs_p99, on.probe_pairs_p99, off.probe_p99_us, on.probe_p99_us
    );

    if ok {
        0
    } else {
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--check") => {
            let Some(path) = args.get(1) else {
                eprintln!("--check requires a baseline file path");
                std::process::exit(2);
            };
            std::process::exit(check(path));
        }
        None => {
            let constant = constant_run();
            let (off, on) = zipf_runs();
            let shed = bursty_shed_run();
            write_latency_report(REPORT_PATH, &[constant, off, on, shed]);
        }
        Some(other) => {
            eprintln!("unknown argument {other}; usage: bench_latency [--check FILE]");
            std::process::exit(2);
        }
    }
}
