//! Out-of-core sustained-ingest benchmark for the §4i tiered segment store.
//!
//! One deterministic sessionized stream is joined twice over sliding
//! windows whose resident state is an order of magnitude larger than the
//! configured memory budget:
//!
//! * **resident** — `mem_budget = 0`: the whole pane ring stays on the
//!   heap; the baseline the probe-latency gate compares against.
//! * **spilled** — a budget of `window_bytes / 12`: sealed chunks are
//!   serialized to sorted segment files, the arena is dropped, and probe
//!   misses read blocks back through the direct-mapped block cache.
//!
//! Modes:
//! * no args: run both, print per-run counters, write `BENCH_spill.json`
//!   at the repository root;
//! * `--check FILE`: rerun and exit non-zero when (a) the window's
//!   resident footprint is less than 10x the budget (the run would not
//!   demonstrate out-of-core operation at all), (b) the spilled run never
//!   wrote or never read back a segment, or (c) the spilled run's pooled
//!   joiner probe p99 exceeds 25x the *fresh* resident baseline from the
//!   same invocation. The paired fresh comparison keeps the gate immune
//!   to machine-to-machine speed differences, and the multiple is
//!   generous because the resident baseline itself swings ~2x under CPU
//!   contention — typical penalties measure 5-8x; the committed FILE is
//!   only checked for having both measurement ids.
//!
//! Join output equality between the two runs is asserted on every
//! invocation — a fast spilled run that dropped pairs would be worthless.

use ssj_bench::report::extract_num;
use ssj_bench::testutil::assert_runs_equal;
use ssj_bench::traffic::{sessionized_docs, SkewConfig};
use ssj_core::{run_topology, StreamJoinConfig, TopologyRunReport, WindowSpec};

const REPORT_PATH: &str = "BENCH_spill.json";
const PANE: usize = 1500;
const PANES: usize = 3;
const N: usize = PANE * 8;
/// The demonstrated state:budget ratio. The budget is derived as
/// `window_bytes / (RATIO + 2)`, so the gate's `>= RATIO` check holds with
/// slack by construction and the check is deterministic per seed.
const RATIO: u64 = 10;

struct SpillRow {
    id: String,
    docs_per_sec: f64,
    probe_p99_us: f64,
    spill_bytes: u64,
    spill_segments: u64,
    segment_reads: u64,
    block_cache_hits: u64,
    block_cache_misses: u64,
    compactions: u64,
    peak_rss_bytes: u64,
    window_bytes: u64,
    budget: u64,
}

fn skew() -> SkewConfig {
    SkewConfig {
        seed: 31,
        keys: 24,
        s: 0.8,
        attach: 0.9,
    }
}

/// Resident footprint of one full window of documents — the interned-pair
/// arenas the joiners would hold with no budget. Deterministic per seed.
fn window_bytes(docs: &[ssj_json::Document]) -> u64 {
    docs[..PANE * PANES]
        .iter()
        .map(|d| d.approx_bytes() as u64)
        .sum()
}

fn cfg(budget: u64) -> StreamJoinConfig {
    let b = StreamJoinConfig::default()
        .with_m(4)
        .with_window_spec(WindowSpec::sliding(PANE, PANES))
        .with_partition_creators(2)
        .with_assigners(2)
        .with_expansion(false)
        .with_metrics(true);
    let b = if budget > 0 {
        b.with_mem_budget(budget).with_spill_dir(
            std::env::temp_dir().join(format!("ssj-bench-spill-{}", std::process::id())),
        )
    } else {
        b
    };
    b.build().unwrap()
}

fn run(id: &str, budget: u64, wbytes: u64) -> (SpillRow, TopologyRunReport) {
    let (dict, docs) = sessionized_docs(N, skew());
    let start = std::time::Instant::now();
    let report = run_topology(cfg(budget), &dict, docs).unwrap();
    let secs = start.elapsed().as_secs_f64();

    let probe_p99 = report
        .runtime
        .tasks
        .iter()
        .filter(|t| t.component == "joiner")
        .filter_map(|t| t.histogram("probe_ns"))
        .map(|h| h.quantile_ns(0.99))
        .max()
        .unwrap_or(0);
    let c = |name: &str| report.runtime.counter_total(name);
    let row = SpillRow {
        id: id.to_string(),
        docs_per_sec: N as f64 / secs,
        probe_p99_us: probe_p99 as f64 / 1_000.0,
        spill_bytes: c("spill_bytes"),
        spill_segments: c("spill_segments"),
        segment_reads: c("segment_reads"),
        block_cache_hits: c("block_cache_hits"),
        block_cache_misses: c("block_cache_misses"),
        compactions: c("compactions"),
        peak_rss_bytes: report.runtime.peak_rss,
        window_bytes: wbytes,
        budget,
    };
    println!(
        "{id}: {:.0} docs/s, probe p99 {:.0}us, spilled {} B in {} segments, \
         {} block reads ({} cache hits / {} misses), {} compactions",
        row.docs_per_sec,
        row.probe_p99_us,
        row.spill_bytes,
        row.spill_segments,
        row.segment_reads,
        row.block_cache_hits,
        row.block_cache_misses,
        row.compactions,
    );
    (row, report)
}

/// Both runs over the identical stream; join output must match pair for
/// pair before any number is reported.
fn paired_runs() -> (SpillRow, SpillRow) {
    let (_, docs) = sessionized_docs(N, skew());
    let wbytes = window_bytes(&docs);
    let budget = wbytes / (RATIO + 2);
    let (resident, resident_report) = run("resident", 0, wbytes);
    let (spilled, spilled_report) = run("spilled", budget, wbytes);
    assert_runs_equal(&resident_report, &spilled_report);
    let _ = std::fs::remove_dir_all(
        std::env::temp_dir().join(format!("ssj-bench-spill-{}", std::process::id())),
    );
    (resident, spilled)
}

fn write_report(path: &str, rows: &[SpillRow]) {
    let body = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"id\": \"{}\", \"docs_per_sec\": {:.0}, \"probe_p99_us\": {:.1}, \
                 \"spill_bytes\": {}, \"spill_segments\": {}, \"segment_reads\": {}, \
                 \"block_cache_hits\": {}, \"block_cache_misses\": {}, \
                 \"compactions\": {}, \"peak_rss_bytes\": {}, \
                 \"window_bytes\": {}, \"budget\": {}}}",
                r.id,
                r.docs_per_sec,
                r.probe_p99_us,
                r.spill_bytes,
                r.spill_segments,
                r.segment_reads,
                r.block_cache_hits,
                r.block_cache_misses,
                r.compactions,
                r.peak_rss_bytes,
                r.window_bytes,
                r.budget
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let text = format!("{{\n  \"bench\": \"spill\",\n  \"spill\": [\n{body}\n  ]\n}}\n");
    std::fs::write(path, text).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}

fn check(path: &str) -> i32 {
    let baseline = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("read {path}: {e}");
        std::process::exit(2);
    });
    let mut ok = true;
    // The committed file must describe this benchmark (stale or missing
    // rows mean the report was never regenerated after a change).
    for id in ["resident", "spilled"] {
        let tag = format!("\"id\": \"{id}\"");
        if !baseline.lines().any(|l| l.contains(&tag)) {
            eprintln!("baseline id {id} missing from {path}");
            ok = false;
        }
    }
    if let Some(base_ratio) = baseline
        .lines()
        .find(|l| l.contains("\"id\": \"spilled\""))
        .and_then(|l| Some(extract_num(l, "\"window_bytes\": ")? / extract_num(l, "\"budget\": ")?))
    {
        if base_ratio < RATIO as f64 {
            eprintln!("committed baseline ratio {base_ratio:.1} < {RATIO}");
            ok = false;
        }
    }

    let (resident, spilled) = paired_runs();

    // Gate (a): the run demonstrates window state >= RATIO x budget.
    let ratio = spilled.window_bytes as f64 / spilled.budget as f64;
    let verdict = if ratio < RATIO as f64 {
        ok = false;
        "FAIL"
    } else {
        "ok"
    };
    println!(
        "check ratio: window {} B over budget {} B = {ratio:.1}x (need >= {RATIO}) {verdict}",
        spilled.window_bytes, spilled.budget
    );

    // Gate (b): the tier actually engaged, both directions.
    if spilled.spill_bytes == 0 || spilled.segment_reads == 0 {
        ok = false;
        println!(
            "check engagement: spill_bytes {} segment_reads {} FAIL (tier never engaged)",
            spilled.spill_bytes, spilled.segment_reads
        );
    } else {
        println!(
            "check engagement: spill_bytes {} segment_reads {} ok",
            spilled.spill_bytes, spilled.segment_reads
        );
    }

    // Gate (c): bounded probe penalty versus the fresh resident baseline.
    let penalty = spilled.probe_p99_us / resident.probe_p99_us.max(1.0);
    let verdict = if penalty > 25.0 {
        ok = false;
        "FAIL"
    } else {
        "ok"
    };
    println!(
        "check probe p99: resident {:.0}us, spilled {:.0}us ({penalty:.2}x, need <= 25x) {verdict}",
        resident.probe_p99_us, spilled.probe_p99_us
    );

    if ok {
        0
    } else {
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--check") => {
            let Some(path) = args.get(1) else {
                eprintln!("--check requires a baseline file path");
                std::process::exit(2);
            };
            std::process::exit(check(path));
        }
        None => {
            let (resident, spilled) = paired_runs();
            write_report(REPORT_PATH, &[resident, spilled]);
        }
        Some(other) => {
            eprintln!("unknown argument {other}; usage: bench_spill [--check FILE]");
            std::process::exit(2);
        }
    }
}
