//! Partitioning-pipeline benchmark: group build (sequential vs sharded),
//! incremental association-group maintenance vs from-scratch rebuilds,
//! Merger consolidation, and document routing (legacy allocating `route()`
//! vs the zero-alloc `route_into()` + fingerprint-cache fast path).
//!
//! Modes:
//! * no args: run the smoke *and* full suites, verify the two tentpole
//!   claims (incremental ≥ 2x on steady-state delta windows; fast routing
//!   beats legacy routing), and write `BENCH_partition.json` at the
//!   repository root;
//! * `--smoke`: only the fast suite, same file, same claim checks;
//! * `--check FILE`: rerun the smoke suite and exit non-zero if any
//!   measurement regresses by more than 20% versus the baseline in FILE
//!   or a tentpole claim no longer holds;
//! * `--audit` (requires `--features count-allocs`): route a warmed
//!   workload and exit non-zero if the route path performs any heap
//!   allocation per document.
//!
//! The JSON is one measurement per line (see `ssj_bench::report`); for the
//! `incr/*/delta` and `route/*/fast` rows the `avg_batch` field carries the
//! speedup factor over the corresponding baseline row.

use ssj_bench::report::{best_of, check_against, parse_section, write_report, Measurement};
use ssj_bench::DataSet;
use ssj_json::AvpId;
use ssj_partition::{
    assign_groups, association_groups, association_groups_sharded, fingerprint_view,
    merge_and_assign, GroupIndex, PartitionTable, RouteOutcome, RouteScratch, View,
};
use std::time::Instant;

#[cfg(feature = "count-allocs")]
mod alloc_counter {
    //! Thread-local allocation counter installed as the global allocator.
    //! It only counts allocation events; all real work is delegated to the
    //! system allocator. `try_with` keeps it safe during TLS teardown.
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    thread_local! {
        static ALLOCS: Cell<u64> = const { Cell::new(0) };
    }

    struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    /// Allocation events observed on this thread so far.
    pub fn allocations() -> u64 {
        ALLOCS.with(|c| c.get())
    }
}

const M: usize = 8;
const BUILD_WORKERS: usize = 4;

/// Partitioning views of `n` dataset documents.
fn dataset_views(dataset: DataSet, n: usize) -> Vec<View> {
    let (_dict, docs) = dataset.generate(n, 42);
    docs.iter().map(|d| d.avps().collect()).collect()
}

fn measure(id: String, items: u64, secs: f64, secondary: f64) -> Measurement {
    Measurement {
        id,
        tuples_per_sec: items as f64 / secs,
        tuples: items,
        secs,
        avg_batch: secondary,
    }
}

/// Sequential and sharded from-scratch group builds.
fn group_build(dataset: DataSet, views: &[View], reps: usize) -> Vec<Measurement> {
    let seq = best_of(reps, || {
        let t0 = Instant::now();
        let groups = association_groups(views);
        measure(
            format!("groups/{}/batch", dataset.label()),
            views.len() as u64,
            t0.elapsed().as_secs_f64(),
            groups.len() as f64,
        )
    });
    let par = best_of(reps, || {
        let t0 = Instant::now();
        let groups = association_groups_sharded(views, BUILD_WORKERS);
        measure(
            format!("groups/{}/parallel={BUILD_WORKERS}", dataset.label()),
            views.len() as u64,
            t0.elapsed().as_secs_f64(),
            groups.len() as f64,
        )
    });
    vec![seq, par]
}

/// Steady-state delta windows: a large live population with a small churn
/// per derive. Incremental maintenance reuses the untouched groups; the
/// from-scratch baseline rebuilds docsets + equivalence groups every time.
fn incremental_churn(
    dataset: DataSet,
    views: &[View],
    population: usize,
    churn: usize,
    steps: usize,
    reps: usize,
) -> Vec<Measurement> {
    assert!(views.len() >= population + churn * steps);

    // Incremental path: push/expire deltas, derive after each.
    let delta = best_of(reps, || {
        let mut idx = GroupIndex::new();
        let mut live: std::collections::VecDeque<u32> =
            views[..population].iter().map(|v| idx.push(v)).collect();
        let mut next = population;
        idx.association_groups(); // warm: the initial build is not a delta
        let t0 = Instant::now();
        let mut groups = 0usize;
        for _ in 0..steps {
            for _ in 0..churn {
                idx.expire(live.pop_front().expect("live view"));
                live.push_back(idx.push(&views[next]));
                next += 1;
            }
            groups += idx.association_groups().len();
        }
        let secs = t0.elapsed().as_secs_f64();
        assert!(groups > 0);
        measure(
            format!("incr/{}/delta", dataset.label()),
            steps as u64,
            secs,
            0.0,
        )
    });

    // From-scratch baseline over the identical window sequence.
    let scratch = best_of(reps, || {
        let mut window: Vec<View> = views[..population].to_vec();
        let mut next = population;
        let t0 = Instant::now();
        let mut groups = 0usize;
        for _ in 0..steps {
            window.drain(..churn);
            window.extend_from_slice(&views[next..next + churn]);
            next += churn;
            groups += association_groups(&window).len();
        }
        let secs = t0.elapsed().as_secs_f64();
        assert!(groups > 0);
        measure(
            format!("incr/{}/scratch", dataset.label()),
            steps as u64,
            secs,
            0.0,
        )
    });

    let speedup = delta.tuples_per_sec / scratch.tuples_per_sec;
    let delta = Measurement {
        avg_batch: speedup,
        ..delta
    };
    vec![scratch, delta]
}

/// Merger consolidation of per-creator local groups.
fn merge_bench(dataset: DataSet, views: &[View], reps: usize) -> Measurement {
    let half = views.len() / 2;
    let locals = vec![
        association_groups(&views[..half]),
        association_groups(&views[half..]),
    ];
    let group_count: u64 = locals.iter().map(|l| l.len() as u64).sum();
    best_of(reps, || {
        let t0 = Instant::now();
        let iters = 20;
        let mut pairs = 0usize;
        for _ in 0..iters {
            pairs += merge_and_assign(locals.clone(), M).pair_count();
        }
        let secs = t0.elapsed().as_secs_f64();
        assert!(pairs > 0);
        measure(
            format!("merge/{}", dataset.label()),
            group_count * iters,
            secs,
            0.0,
        )
    })
}

/// Route `passes` passes over the views through the legacy allocating
/// `route()`.
fn route_legacy(table: &PartitionTable, views: &[View], passes: usize) -> (u64, f64) {
    let t0 = Instant::now();
    let mut sends = 0u64;
    for _ in 0..passes {
        for v in views {
            sends += table.route(v).fanout(M) as u64;
        }
    }
    (sends, t0.elapsed().as_secs_f64())
}

/// The Assigner's fast path: fingerprint cache, bitmask accumulation, and
/// the reusable scratch buffer. Zero allocations per document once warm.
fn route_fast(
    table: &PartitionTable,
    views: &[View],
    passes: usize,
    scratch: &mut RouteScratch,
) -> (u64, f64) {
    let t0 = Instant::now();
    let mut sends = 0u64;
    for _ in 0..passes {
        for v in views {
            sends += route_one_fast(table, v, scratch);
        }
    }
    (sends, t0.elapsed().as_secs_f64())
}

/// One fast-path route; returns the fanout.
fn route_one_fast(table: &PartitionTable, view: &[AvpId], scratch: &mut RouteScratch) -> u64 {
    let fp = fingerprint_view(view.iter().copied());
    if let Some(mask) = scratch.cache_get(fp) {
        scratch.set_targets_from_mask(mask);
        return scratch.targets().len() as u64;
    }
    match table.route_into(view, scratch) {
        RouteOutcome::Matched => {
            let mask = table.view_mask(view);
            // Only fully-known views are cacheable; the creation batch is
            // fully covered, so every view here qualifies.
            if view.iter().all(|&a| table.avp_mask(a) != 0) {
                scratch.cache_put(fp, mask);
            }
            scratch.targets().len() as u64
        }
        RouteOutcome::Broadcast => M as u64,
    }
}

fn route_bench(dataset: DataSet, views: &[View], passes: usize, reps: usize) -> Vec<Measurement> {
    let table = assign_groups(association_groups(views), M);
    let docs = (views.len() * passes) as u64;
    let legacy = best_of(reps, || {
        let (sends, secs) = route_legacy(&table, views, passes);
        assert!(sends >= docs);
        measure(format!("route/{}/legacy", dataset.label()), docs, secs, 0.0)
    });
    let fast = best_of(reps, || {
        let mut scratch = RouteScratch::new();
        let (sends, secs) = route_fast(&table, views, passes, &mut scratch);
        assert!(sends >= docs);
        measure(format!("route/{}/fast", dataset.label()), docs, secs, 0.0)
    });
    // Cross-check: both paths fan out identically.
    let (a, _) = route_legacy(&table, views, 1);
    let mut scratch = RouteScratch::new();
    let (b, _) = route_fast(&table, views, 1, &mut scratch);
    assert_eq!(a, b, "fast route disagrees with legacy route");
    let speedup = fast.tuples_per_sec / legacy.tuples_per_sec;
    let fast = Measurement {
        avg_batch: speedup,
        ..fast
    };
    vec![legacy, fast]
}

struct SuiteSize {
    group_views: usize,
    population: usize,
    churn: usize,
    steps: usize,
    route_passes: usize,
    reps: usize,
}

// Five reps keep the fastest run stable enough for the 20% regression
// gate on a shared machine (same policy as bench_runtime's smoke suite).
const SMOKE: SuiteSize = SuiteSize {
    group_views: 2_000,
    population: 2_000,
    churn: 20,
    steps: 25,
    route_passes: 20,
    reps: 5,
};

const FULL: SuiteSize = SuiteSize {
    group_views: 6_000,
    population: 5_000,
    churn: 50,
    steps: 40,
    route_passes: 40,
    reps: 3,
};

fn run_suite(name: &str, size: &SuiteSize) -> Vec<Measurement> {
    let mut out = Vec::new();
    for dataset in DataSet::all() {
        let views = dataset_views(
            dataset,
            size.group_views
                .max(size.population + size.churn * size.steps),
        );
        let group_views = &views[..size.group_views.min(views.len())];
        out.extend(group_build(dataset, group_views, size.reps));
        out.extend(incremental_churn(
            dataset,
            &views,
            size.population,
            size.churn,
            size.steps,
            size.reps,
        ));
        out.push(merge_bench(dataset, group_views, size.reps));
        out.extend(route_bench(
            dataset,
            group_views,
            size.route_passes,
            size.reps,
        ));
    }
    for m in &out {
        println!(
            "{name}: {} -> {:.0}/s ({} items in {:.3}s{})",
            m.id,
            m.tuples_per_sec,
            m.tuples,
            m.secs,
            if m.avg_batch > 0.0 {
                format!(", x{:.2}", m.avg_batch)
            } else {
                String::new()
            }
        );
    }
    out
}

/// The two tentpole claims, applied to a suite's measurements. Returns
/// `false` (after printing why) if either fails.
fn verify_claims(ms: &[Measurement]) -> bool {
    let find = |id: &str| ms.iter().find(|m| m.id == id);
    let mut ok = true;
    for dataset in DataSet::all() {
        let l = dataset.label();
        if let Some(delta) = find(&format!("incr/{l}/delta")) {
            println!(
                "claim incr/{l}: incremental {:.2}x from-scratch",
                delta.avg_batch
            );
            if delta.avg_batch < 2.0 {
                eprintln!(
                    "CLAIM FAILED: incr/{l} speedup {:.2}x < 2x",
                    delta.avg_batch
                );
                ok = false;
            }
        }
        if let Some(fast) = find(&format!("route/{l}/fast")) {
            println!("claim route/{l}: fast {:.2}x legacy", fast.avg_batch);
            if fast.avg_batch < 1.0 {
                eprintln!(
                    "CLAIM FAILED: route/{l} fast path {:.2}x < 1x",
                    fast.avg_batch
                );
                ok = false;
            }
        }
    }
    ok
}

const REPORT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_partition.json");

fn check(baseline_path: &str) -> i32 {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return 2;
        }
    };
    let baseline = parse_section(&text, "smoke");
    if baseline.is_empty() {
        eprintln!("no smoke measurements found in {baseline_path}");
        return 2;
    }
    let fresh = run_suite("smoke", &SMOKE);
    let mut ok = check_against(&baseline, &fresh, 0.8);
    ok &= verify_claims(&fresh);
    if ok {
        0
    } else {
        eprintln!("partitioning performance regressed versus {baseline_path}");
        1
    }
}

/// Allocation audit: the route fast path must not touch the heap once the
/// scratch and cache are warm.
fn audit() -> i32 {
    #[cfg(not(feature = "count-allocs"))]
    {
        eprintln!("--audit requires building with --features count-allocs");
        2
    }
    #[cfg(feature = "count-allocs")]
    {
        let views = dataset_views(DataSet::RwData, 2_000);
        let table = assign_groups(association_groups(&views), M);
        let mut scratch = RouteScratch::new();
        // Warm pass: fills the cache and grows the scratch buffers.
        let _ = route_fast(&table, &views, 1, &mut scratch);
        let routes = (views.len() * 10) as u64;
        let before = alloc_counter::allocations();
        let (sends, _) = route_fast(&table, &views, 10, &mut scratch);
        let allocs = alloc_counter::allocations() - before;
        assert!(sends > 0);
        println!("audit: {allocs} allocations across {routes} warmed routes");
        if allocs == 0 {
            println!("route path is allocation-free");
            0
        } else {
            eprintln!("route path allocated {allocs} times in {routes} routes");
            1
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--check") => {
            let Some(path) = args.get(1) else {
                eprintln!("--check requires a baseline file path");
                std::process::exit(2);
            };
            std::process::exit(check(path));
        }
        Some("--smoke") => {
            let s = run_suite("smoke", &SMOKE);
            let ok = verify_claims(&s);
            write_report(REPORT_PATH, "partition", &[("smoke", &s)]);
            std::process::exit(i32::from(!ok));
        }
        Some("--audit") => std::process::exit(audit()),
        None => {
            let s = run_suite("smoke", &SMOKE);
            let f = run_suite("full", &FULL);
            let ok = verify_claims(&s) & verify_claims(&f);
            write_report(REPORT_PATH, "partition", &[("smoke", &s), ("full", &f)]);
            std::process::exit(i32::from(!ok));
        }
        Some(other) => {
            eprintln!(
                "unknown argument {other}; usage: bench_partition [--smoke | --audit | --check FILE]"
            );
            std::process::exit(2);
        }
    }
}
