//! End-to-end runtime throughput benchmark for the batched transport.
//!
//! Two workloads:
//! * **chain** — a spout → shuffle map stage → fields-grouped aggregation
//!   stage, pure transport with trivial per-message work, measured at
//!   several batch sizes. This isolates the per-envelope costs the
//!   micro-batching amortizes.
//! * **join** — the real Fig. 2 join topology on nbData, batched vs
//!   unbatched.
//! * **sched** — the join topology at m ∈ {4, 16, 64} joiners, pooled
//!   work-stealing executor vs legacy thread-per-task. `--check` also
//!   gates the paired ratios: pooled must be ≥1.5x legacy at m=64 and
//!   within 5% of legacy at m=4.
//! * **sliding** — the join topology covering the same window span chained
//!   from 1, 4, or 16 panes. `--check` gates the 16-pane run at ≥0.3x the
//!   1-pane run, the observable consequence of O(pane) eviction.
//!
//! Modes:
//! * no args: run the smoke *and* full suites and write `BENCH_runtime.json`
//!   at the repository root;
//! * `--smoke`: run only the (fast) smoke suite, write the same file;
//! * `--check FILE`: rerun the smoke suite and exit non-zero if any smoke
//!   measurement regresses by more than 20% versus the baseline in FILE,
//!   or if the metrics-enabled join run falls more than 5% behind the
//!   metrics-off join run of the same session (observability overhead
//!   budget);
//! * `--overhead`: run only the paired metrics-off / metrics-on join
//!   comparison and apply the 5% gate.
//!
//! The JSON is written one measurement per line so the `--check` mode (and
//! shell tooling) can parse it without a JSON library.

use ssj_bench::report::{best_of, check_against, parse_section, write_report, Measurement};
use ssj_bench::DataSet;
use ssj_core::{
    run_topology, run_topology_distributed, DistRuntime, SchedulerKind, StreamJoinConfig,
};
use ssj_runtime::{fn_bolt, run, Bolt, Grouping, Outbox, TopologyBuilder, VecSpout};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Terminal aggregation stage: sums locally, publishes once on shutdown.
struct SumBolt {
    local: u64,
    total: Arc<AtomicU64>,
}

impl Bolt<u64> for SumBolt {
    fn execute(&mut self, msg: u64, _out: &mut Outbox<u64>) {
        self.local += msg;
    }
    fn finish(&mut self, _out: &mut Outbox<u64>) {
        self.total.fetch_add(self.local, Ordering::SeqCst);
    }
}

/// spout → map x3 (shuffle) → sum x3 (fields): transport-bound chain.
fn chain_run(n: u64, batch: usize) -> Measurement {
    let total = Arc::new(AtomicU64::new(0));
    let t2 = Arc::clone(&total);
    let t = TopologyBuilder::new()
        .batch_size(batch)
        .spout("src", 1, move |_| {
            VecSpout::boxed((0..n).collect::<Vec<u64>>())
        })
        .bolt("map", 3, |_| {
            fn_bolt(|x: u64, out: &mut Outbox<u64>| out.emit(x))
        })
        .subscribe("src", Grouping::Shuffle)
        .done()
        .bolt("sum", 3, move |_| {
            Box::new(SumBolt {
                local: 0,
                total: Arc::clone(&t2),
            })
        })
        .subscribe("map", Grouping::Fields(Arc::new(|x: &u64| *x)))
        .done()
        .build()
        .unwrap();
    let start = Instant::now();
    let report = run(t).unwrap();
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(
        total.load(Ordering::SeqCst),
        n * (n - 1) / 2,
        "chain lost or duplicated tuples"
    );
    // Tuples crossing an edge: n into map, n into sum.
    let tuples = report.received("map") + report.received("sum");
    Measurement {
        id: format!("chain/batch={batch}"),
        tuples_per_sec: tuples as f64 / secs,
        tuples,
        secs,
        avg_batch: report.avg_batch_size("src"),
    }
}

/// The real join topology on nbData documents, with or without the full
/// observability layer (histograms + per-window snapshots + trace).
fn join_run(docs_n: usize, window: usize, batch: usize, metrics: bool) -> Measurement {
    let (dict, docs) = DataSet::NbData.generate(docs_n, 42);
    let cfg = StreamJoinConfig::default()
        .with_m(4)
        .with_window_spec(ssj_core::WindowSpec::tumbling(window))
        .with_expansion(false)
        .with_batch_size(batch)
        .with_metrics(metrics)
        .build()
        .unwrap();
    let start = Instant::now();
    let report = run_topology(cfg, &dict, docs).unwrap();
    let secs = start.elapsed().as_secs_f64();
    // NoBench documents share wide attribute sets with mostly distinct
    // values, so the natural join is near-empty — the bench measures the
    // transport+routing cost, and only window conservation is asserted.
    assert_eq!(
        report.joins_per_window.len(),
        docs_n / window,
        "join topology lost windows"
    );
    if metrics {
        assert!(
            !report.runtime.windows.is_empty(),
            "metrics run produced no per-window snapshots"
        );
    }
    let tag = if metrics { "/metrics" } else { "" };
    Measurement {
        id: format!("join/nbData{tag}/batch={batch}"),
        tuples_per_sec: docs_n as f64 / secs,
        tuples: docs_n as u64,
        secs,
        avg_batch: report.runtime.avg_batch_size("reader"),
    }
}

/// Scheduler comparison (DESIGN.md §4e): the real join topology at `m`
/// joiners under the pooled work-stealing executor vs legacy
/// thread-per-task. At m=64 the legacy mode runs ~75 OS threads — far past
/// any laptop's core count — while the pool stays at one worker per core.
///
/// Runs unbatched (batch=1): scheduling cost is paid per envelope, so this
/// is the configuration where executor differences are visible rather than
/// amortized away. Batching amortization is the chain suite's measurement,
/// not this one's.
fn sched_run(docs_n: usize, window: usize, m: usize, kind: SchedulerKind) -> Measurement {
    let (dict, docs) = DataSet::NbData.generate(docs_n, 42);
    let cfg = StreamJoinConfig::default()
        .with_m(m)
        .with_window_spec(ssj_core::WindowSpec::tumbling(window))
        .with_expansion(false)
        .with_batch_size(1)
        .with_scheduler(kind)
        .build()
        .unwrap();
    let start = Instant::now();
    let report = run_topology(cfg, &dict, docs).unwrap();
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(
        report.joins_per_window.len(),
        docs_n / window,
        "join topology lost windows"
    );
    Measurement {
        id: format!("sched/{kind}/m={m}"),
        tuples_per_sec: docs_n as f64 / secs,
        tuples: docs_n as u64,
        secs,
        avg_batch: report.runtime.avg_batch_size("reader"),
    }
}

/// Edge-transport comparison (DESIGN.md §4f): the same Fig. 2 join topology
/// with every edge in-process (`workers=1`) versus sharded over a 2-member
/// Unix-socket group, cross-worker edges paying the full binary-codec +
/// frame + kernel-socket path. Group members run as threads here — like the
/// core `distributed_equivalence` suite — sharing no dictionary and talking
/// only through the socket mesh, so the measured delta is the wire cost,
/// not process-spawn cost.
fn transport_run(docs_n: usize, window: usize, socket: bool) -> Measurement {
    let workers = if socket { 2 } else { 1 };
    let cfg = StreamJoinConfig::default()
        .with_m(4)
        .with_window_spec(ssj_core::WindowSpec::tumbling(window))
        .with_expansion(false)
        .with_batch_size(64)
        .with_workers(workers)
        .build()
        .unwrap();
    let (secs, report) = if socket {
        let dir = std::env::temp_dir().join(format!("ssj-bench-transport-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Each member builds its own dictionary before the clock starts:
        // deploy-time work, not steady-state transport.
        let streams: Vec<_> = (0..workers)
            .map(|_| DataSet::NbData.generate(docs_n, 42))
            .collect();
        let start = Instant::now();
        let handles: Vec<_> = streams
            .into_iter()
            .enumerate()
            .map(|(w, (dict, docs))| {
                let dir = dir.clone();
                let cfg = cfg.clone();
                std::thread::spawn(move || {
                    let dr = DistRuntime {
                        workers,
                        my_worker: w,
                        socket_dir: dir,
                        attempt: 0,
                    };
                    run_topology_distributed(cfg, &dict, docs, &dr).unwrap()
                })
            })
            .collect();
        let mut reports: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let secs = start.elapsed().as_secs_f64();
        let _ = std::fs::remove_dir_all(&dir);
        (secs, reports.remove(0))
    } else {
        let (dict, docs) = DataSet::NbData.generate(docs_n, 42);
        let start = Instant::now();
        let report = run_topology(cfg, &dict, docs).unwrap();
        (start.elapsed().as_secs_f64(), report)
    };
    assert_eq!(
        report.joins_per_window.len(),
        docs_n / window,
        "transport topology lost windows"
    );
    let tag = if socket { "socket" } else { "inproc" };
    Measurement {
        id: format!("transport/{tag}/batch=64"),
        tuples_per_sec: docs_n as f64 / secs,
        tuples: docs_n as u64,
        secs,
        avg_batch: report.runtime.avg_batch_size("reader"),
    }
}

/// Sliding-window comparison (DESIGN.md §4g): the join topology covering
/// the same `window` span of documents chained from 1, 4, or 16 panes.
/// Pane-chained state makes eviction O(pane) — a boundary freezes the open
/// pane and drops exactly one expired pane — so slicing a window 16 ways
/// buys fine-grained slides without rebuilding per-window state from
/// scratch 16 times. The `--check` floor on panes=16 vs panes=1 is what
/// guards that claim: O(window)-per-boundary eviction would pay the full
/// window cost at every slide and collapse the ratio. (The cost that does
/// remain with more panes is punctuation cadence: 16x more alignments and
/// 16x smaller effective batches at the pane-boundary flushes.)
fn sliding_run(docs_n: usize, window: usize, panes: usize) -> Measurement {
    let (dict, docs) = DataSet::NbData.generate(docs_n, 42);
    let spec = ssj_core::WindowSpec::sliding(window / panes, panes);
    let cfg = StreamJoinConfig::default()
        .with_m(4)
        .with_window_spec(spec)
        .with_expansion(false)
        .with_batch_size(64)
        .build()
        .unwrap();
    let start = Instant::now();
    let report = run_topology(cfg, &dict, docs).unwrap();
    let secs = start.elapsed().as_secs_f64();
    // Under sliding windows join output is keyed per pane.
    assert_eq!(
        report.joins_per_window.len(),
        docs_n / spec.pane_docs(),
        "sliding topology lost panes"
    );
    Measurement {
        id: format!("sliding/panes={panes}"),
        tuples_per_sec: docs_n as f64 / secs,
        tuples: docs_n as u64,
        secs,
        avg_batch: report.runtime.avg_batch_size("reader"),
    }
}

/// Same window span sliced into 1, 4, and 16 panes.
fn sliding_suite(name: &str, reps: usize, docs_n: usize, window: usize) -> Vec<Measurement> {
    let mut out = Vec::new();
    for &panes in &[1usize, 4, 16] {
        let meas = best_of(reps, || sliding_run(docs_n, window, panes));
        println!(
            "{name}: {} -> {:.0} docs/s ({} docs in {:.3}s)",
            meas.id, meas.tuples_per_sec, meas.tuples, meas.secs
        );
        out.push(meas);
    }
    out
}

/// Paired in-process vs 2-worker-socket measurements of the join topology.
fn transport_suite(name: &str, reps: usize, join_n: usize) -> Vec<Measurement> {
    let mut out = Vec::new();
    for socket in [false, true] {
        let meas = best_of(reps, || transport_run(join_n, join_n / 3, socket));
        println!(
            "{name}: {} -> {:.0} docs/s ({} docs in {:.3}s)",
            meas.id, meas.tuples_per_sec, meas.tuples, meas.secs
        );
        out.push(meas);
    }
    out
}

/// Pooled-vs-legacy measurements at m ∈ {4, 16, 64}.
fn sched_suite(name: &str, reps: usize, join_n: usize) -> Vec<Measurement> {
    let mut out = Vec::new();
    for &m in &[4usize, 16, 64] {
        for kind in [SchedulerKind::ThreadPerTask, SchedulerKind::Pooled] {
            let meas = best_of(reps, || sched_run(join_n, join_n / 3, m, kind));
            println!(
                "{name}: {} -> {:.0} docs/s ({} docs in {:.3}s)",
                meas.id, meas.tuples_per_sec, meas.tuples, meas.secs
            );
            out.push(meas);
        }
    }
    out
}

fn run_suite(
    name: &str,
    reps: usize,
    chain_n: u64,
    chain_batches: &[usize],
    join_n: usize,
) -> Vec<Measurement> {
    let mut out = Vec::new();
    for &b in chain_batches {
        let m = best_of(reps, || chain_run(chain_n, b));
        println!(
            "{name}: {} -> {:.0} tuples/s ({} tuples in {:.3}s, avg batch {:.1})",
            m.id, m.tuples_per_sec, m.tuples, m.secs, m.avg_batch
        );
        out.push(m);
    }
    for &b in &[1usize, 64] {
        let m = best_of(reps, || join_run(join_n, join_n / 3, b, false));
        println!(
            "{name}: {} -> {:.0} docs/s ({} docs in {:.3}s, avg batch {:.1})",
            m.id, m.tuples_per_sec, m.tuples, m.secs, m.avg_batch
        );
        out.push(m);
    }
    // The same join with the full observability layer on: histograms on the
    // hot path, a collector snapshotting per punctuation, and the trace
    // ring. Its rate versus the metrics-off run above is the overhead gate.
    let m = best_of(reps, || join_run(join_n, join_n / 3, 64, true));
    println!(
        "{name}: {} -> {:.0} docs/s ({} docs in {:.3}s, avg batch {:.1})",
        m.id, m.tuples_per_sec, m.tuples, m.secs, m.avg_batch
    );
    out.push(m);
    out
}

/// Paired metrics-off / metrics-on comparison; returns the on/off ratio.
///
/// Each rep runs off then on back-to-back and the *best* paired ratio is
/// reported — the same reasoning as `best_of`: external load on a shared
/// machine only ever slows a run down, so the cleanest pair is the one
/// closest to the true overhead, and an unlucky off/on pairing across
/// independent best-ofs would measure noise, not instrumentation.
fn overhead_ratio(reps: usize, join_n: usize) -> f64 {
    let mut best = f64::MIN;
    for _ in 0..reps {
        let off = join_run(join_n, join_n / 3, 64, false);
        let on = join_run(join_n, join_n / 3, 64, true);
        let ratio = on.tuples_per_sec / off.tuples_per_sec;
        println!(
            "overhead: metrics off {:.0} docs/s, on {:.0} docs/s ({:.3}x)",
            off.tuples_per_sec, on.tuples_per_sec, ratio
        );
        best = best.max(ratio);
    }
    println!("overhead: best paired ratio {best:.3}x over {reps} reps");
    best
}

/// Exit code for the 5% observability-overhead budget.
fn overhead_gate(ratio: f64) -> i32 {
    if ratio < 0.95 {
        eprintln!(
            "metrics overhead exceeds the 5% budget ({:.1}% slower)",
            (1.0 - ratio) * 100.0
        );
        1
    } else {
        println!("metrics overhead within the 5% budget");
        0
    }
}

fn smoke() -> Vec<Measurement> {
    // Five reps and a fairly large chain keep the fastest run stable enough
    // for the 20% regression gate on a shared machine. The scheduler pairs
    // use fewer reps but a longer stream: the ratio only stabilizes once
    // per-window scheduling costs dominate fixed startup, and the legacy
    // m=64 runs are slow by design (that is the point of the comparison).
    let mut s = run_suite("smoke", 5, 400_000, &[1, 32], 4_500);
    s.extend(sched_suite("smoke", 3, 12_000));
    s.extend(transport_suite("smoke", 3, 12_000));
    // Window span divisible by 16 so every pane count tiles it exactly.
    s.extend(sliding_suite("smoke", 3, 4_800, 1_600));
    s
}

fn full() -> Vec<Measurement> {
    let mut f = run_suite("full", 3, 600_000, &[1, 8, 32, 128], 12_000);
    f.extend(sched_suite("full", 2, 12_000));
    f.extend(transport_suite("full", 2, 24_000));
    f.extend(sliding_suite("full", 2, 12_800, 1_600));
    f
}

const REPORT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runtime.json");

fn speedup_summary(ms: &[Measurement]) {
    let rate = |id: &str| ms.iter().find(|m| m.id == id).map(|m| m.tuples_per_sec);
    if let (Some(b1), Some(b32)) = (rate("chain/batch=1"), rate("chain/batch=32")) {
        println!("chain speedup batch=32 vs batch=1: {:.2}x", b32 / b1);
    }
    if let (Some(b1), Some(b64)) = (rate("join/nbData/batch=1"), rate("join/nbData/batch=64")) {
        println!("join speedup batch=64 vs batch=1: {:.2}x", b64 / b1);
    }
    for m in [4usize, 16, 64] {
        if let (Some(legacy), Some(pooled)) = (
            rate(&format!("sched/legacy/m={m}")),
            rate(&format!("sched/pooled/m={m}")),
        ) {
            println!(
                "sched speedup pooled vs legacy at m={m}: {:.2}x",
                pooled / legacy
            );
        }
    }
    if let (Some(inproc), Some(socket)) = (
        rate("transport/inproc/batch=64"),
        rate("transport/socket/batch=64"),
    ) {
        println!(
            "transport socket vs inproc: {:.2}x (wire cost of the 2-worker split)",
            socket / inproc
        );
    }
    if let (Some(one), Some(sixteen)) = (rate("sliding/panes=1"), rate("sliding/panes=16")) {
        println!(
            "sliding 16 panes vs 1: {:.2}x (slide granularity cost at O(pane) eviction)",
            sixteen / one
        );
    }
}

fn check(baseline_path: &str) -> i32 {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return 2;
        }
    };
    let baseline = parse_section(&text, "smoke");
    if baseline.is_empty() {
        eprintln!("no smoke measurements found in {baseline_path}");
        return 2;
    }
    let fresh = smoke();
    let mut failed = !check_against(&baseline, &fresh, 0.8);
    // Observability-overhead budget: metrics-on join within 5% of
    // metrics-off. Paired fresh runs (so machine-to-machine noise cancels
    // out) on a long stream (so per-run constant noise does too).
    let ratio = overhead_ratio(5, 12_000);
    println!("check join metrics on/off: {ratio:.3}x");
    if overhead_gate(ratio) != 0 {
        failed = true;
    }
    let rate = |id: &str| fresh.iter().find(|m| m.id == id).map(|m| m.tuples_per_sec);
    // Scheduler win conditions, measured on fresh paired runs of this same
    // session (ISSUE 6): the pooled executor must deliver >= 1.5x the
    // legacy thread-per-task join throughput at m=64 (m >> cores), and must
    // not regress by more than 5% at m=4 (m ~ cores).
    for (m, floor) in [(64usize, 1.5f64), (4, 0.95)] {
        match (
            rate(&format!("sched/legacy/m={m}")),
            rate(&format!("sched/pooled/m={m}")),
        ) {
            (Some(legacy), Some(pooled)) => {
                let ratio = pooled / legacy;
                println!("check sched pooled/legacy at m={m}: {ratio:.3}x (floor {floor}x)");
                if ratio < floor {
                    eprintln!("pooled scheduler below the {floor}x floor at m={m}: {ratio:.3}x");
                    failed = true;
                }
            }
            _ => {
                eprintln!("scheduler measurements missing from the fresh smoke suite");
                failed = true;
            }
        }
    }
    // Sliding-window eviction gate (ISSUE 8): chaining the same window span
    // from 16 panes instead of 1 must keep >= 0.3x the throughput. O(pane)
    // eviction makes each of the 16x-more-frequent boundaries 16x cheaper,
    // leaving mostly the punctuation-cadence cost (smaller effective batches,
    // 16x more alignments — measured ~0.4x here); O(window)-per-boundary
    // eviction would multiply the boundary work 16x and sink the ratio.
    match (rate("sliding/panes=1"), rate("sliding/panes=16")) {
        (Some(one), Some(sixteen)) => {
            let ratio = sixteen / one;
            println!("check sliding panes=16/panes=1: {ratio:.3}x (floor 0.3x)");
            if ratio < 0.3 {
                eprintln!("16-pane sliding below 0.3x the 1-pane throughput: {ratio:.3}x");
                failed = true;
            }
        }
        _ => {
            eprintln!("sliding measurements missing from the fresh smoke suite");
            failed = true;
        }
    }
    if failed {
        eprintln!("runtime throughput regressed versus {baseline_path} or the overhead budget");
        1
    } else {
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--check") => {
            let Some(path) = args.get(1) else {
                eprintln!("--check requires a baseline file path");
                std::process::exit(2);
            };
            std::process::exit(check(path));
        }
        Some("--smoke") => {
            let s = smoke();
            speedup_summary(&s);
            write_report(REPORT_PATH, "runtime", &[("smoke", &s)]);
        }
        Some("--overhead") => {
            // Longer paired runs than the smoke suite: the on/off ratio sits
            // within a couple percent of 1.0, so per-run constant noise on a
            // short stream dominates the signal.
            let ratio = overhead_ratio(5, 12_000);
            std::process::exit(overhead_gate(ratio));
        }
        None => {
            let s = smoke();
            let f = full();
            speedup_summary(&s);
            speedup_summary(&f);
            write_report(REPORT_PATH, "runtime", &[("smoke", &s), ("full", &f)]);
        }
        Some(other) => {
            eprintln!(
                "unknown argument {other}; usage: bench_runtime [--smoke | --overhead | --check FILE]"
            );
            std::process::exit(2);
        }
    }
}
