//! Open-loop traffic generation: deterministic arrival schedules and
//! skewed (Zipfian / hot-key) document streams.
//!
//! The schedules are **logical**: a profile maps tuple index → virtual
//! arrival time in nanoseconds, computed purely from its parameters and a
//! seed — no wall clock enters the schedule itself. A paced spout (see
//! `ssj-runtime`'s `PacedSpout`) later replays a schedule against real
//! time; the split keeps every experiment reproducible and lets tests
//! assert on the exact schedule.
//!
//! The skew generators overlay a `HotKey` attribute on the existing
//! datasets (§VII-B), with values drawn from a Zipfian rank distribution:
//! rank 0 concentrates load on one association group, which is what the
//! hot-group replication path (DESIGN.md §4h) responds to.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssj_json::{Document, Scalar};

use crate::DataSet;

const NS_PER_SEC: f64 = 1_000_000_000.0;

/// A deterministic open-loop arrival process. Rates are tuples per
/// *virtual* second.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProfile {
    /// Fixed inter-arrival gap.
    Constant {
        /// Arrival rate (tuples / virtual second).
        rate: f64,
    },
    /// Square-wave rate alternation: each `period_ns` of virtual time
    /// spends its first `duty` fraction at `peak` and the rest at
    /// `trough`.
    Bursty {
        /// Rate outside bursts.
        trough: f64,
        /// Rate inside bursts.
        peak: f64,
        /// Virtual length of one trough+peak cycle, in nanoseconds.
        period_ns: u64,
        /// Fraction of each period spent at `peak` (0, 1).
        duty: f64,
    },
    /// Rate interpolates linearly from `start` to `end` over the run.
    Ramp {
        /// Rate at the first tuple.
        start: f64,
        /// Rate at the last tuple.
        end: f64,
    },
}

impl ArrivalProfile {
    /// Short id for bench rows and logs.
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalProfile::Constant { .. } => "constant",
            ArrivalProfile::Bursty { .. } => "bursty",
            ArrivalProfile::Ramp { .. } => "ramp",
        }
    }

    /// Instantaneous rate at virtual time `t_ns`, for tuple `i` of `n`.
    fn rate_at(&self, t_ns: u64, i: usize, n: usize) -> f64 {
        match *self {
            ArrivalProfile::Constant { rate } => rate,
            ArrivalProfile::Bursty {
                trough,
                peak,
                period_ns,
                duty,
            } => {
                let phase = (t_ns % period_ns) as f64 / period_ns as f64;
                if phase < duty {
                    peak
                } else {
                    trough
                }
            }
            ArrivalProfile::Ramp { start, end } => {
                let f = if n > 1 {
                    i as f64 / (n - 1) as f64
                } else {
                    0.0
                };
                start + (end - start) * f
            }
        }
    }

    /// The virtual arrival time (ns) of each of `n` tuples. `jitter`
    /// perturbs every inter-arrival gap by a seeded uniform factor in
    /// `[1 - jitter, 1 + jitter]`; `jitter = 0.0` makes the schedule a
    /// pure function of the profile (the seed is then irrelevant).
    pub fn schedule(&self, n: usize, seed: u64, jitter: f64) -> Vec<u64> {
        assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1)");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0u64;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(t);
            let rate = self.rate_at(t, i, n);
            assert!(rate > 0.0, "arrival rate must be positive");
            let mut gap = NS_PER_SEC / rate;
            if jitter > 0.0 {
                gap *= rng.gen_range(1.0 - jitter..1.0 + jitter);
            }
            t += (gap as u64).max(1);
        }
        out
    }
}

/// Zipfian rank distribution over `{0, …, n-1}`: rank `k` has probability
/// proportional to `1 / (k+1)^s`. `s = 0` degenerates to uniform.
/// Sampling is inverse-CDF (binary search), deterministic under a seeded
/// [`StdRng`].
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the CDF for `n` ranks with exponent `s >= 0`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += (k as f64).powf(s).recip();
            cdf.push(acc);
        }
        for c in &mut cdf {
            *c /= acc;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.cdf.len()
    }

    /// Probability of rank `k`.
    pub fn prob(&self, k: usize) -> f64 {
        let lo = if k == 0 { 0.0 } else { self.cdf[k - 1] };
        self.cdf[k] - lo
    }

    /// Draw one rank.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

/// Skew overlay for a document stream.
#[derive(Debug, Clone, Copy)]
pub struct SkewConfig {
    /// RNG seed for the overlay (and the base dataset).
    pub seed: u64,
    /// Number of distinct `HotKey` values.
    pub keys: usize,
    /// Zipf exponent over the key ranks (`0.0` = uniform, no skew).
    pub s: f64,
    /// Fraction of documents that carry a `HotKey` attribute at all.
    pub attach: f64,
}

impl Default for SkewConfig {
    fn default() -> Self {
        SkewConfig {
            seed: 42,
            keys: 16,
            s: 1.2,
            attach: 0.75,
        }
    }
}

/// Generate `n` dataset documents and overlay a Zipf-distributed `HotKey`
/// attribute per [`SkewConfig`]. Deterministic under the seed; document
/// ids are the base dataset's ids.
pub fn skewed_docs(
    dataset: DataSet,
    n: usize,
    cfg: SkewConfig,
) -> (ssj_json::Dictionary, Vec<Document>) {
    let (dict, base) = dataset.generate(n, cfg.seed);
    let zipf = Zipf::new(cfg.keys, cfg.s);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5eed_cafe);
    let docs = base
        .into_iter()
        .map(|doc| {
            if rng.gen_bool(cfg.attach) {
                let rank = zipf.sample(&mut rng) as i64;
                let mut pairs = doc.pairs().to_vec();
                pairs.push(dict.intern("HotKey", Scalar::Int(rank)));
                Document::from_pairs(doc.id(), pairs)
            } else {
                doc
            }
        })
        .collect();
    (dict, docs)
}

/// Closed-vocabulary Zipfian stream: every document belongs to one of
/// `cfg.keys` sessions (Zipf-distributed over the ranks), carries the
/// session pair plus a handful of session-namespaced filler attributes.
///
/// Two properties matter for the replication experiments:
///
/// * The vocabulary is tiny and fixed, so a routing table built over any
///   window prefix covers the whole stream — no unknown-pair broadcasts,
///   which means skew-aware replica routing actually engages (the open
///   datasets' novelty churn makes every view partially unknown and
///   forces the exactness broadcast instead).
/// * Filler values are namespaced by session, so documents join exactly
///   within their session: the hot session IS the hot association group,
///   and its quadratic probe load is what replication spreads.
///
/// `cfg.attach` is the probability a document carries filler pairs at all
/// (a bare session pair still joins). Deterministic under `cfg.seed`.
pub fn sessionized_docs(n: usize, cfg: SkewConfig) -> (ssj_json::Dictionary, Vec<Document>) {
    let dict = ssj_json::Dictionary::new();
    let zipf = Zipf::new(cfg.keys, cfg.s);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5e55_1075);
    let docs = (0..n)
        .map(|i| {
            let k = zipf.sample(&mut rng) as i64;
            let mut pairs = vec![dict.intern("Session", Scalar::Int(k))];
            if rng.gen_bool(cfg.attach) {
                // Up to three filler pairs from a per-session pool of 4
                // values each: small enough that window 0 sees them all.
                for (attr, pool) in [("Step", 4i64), ("Status", 3), ("Kind", 4)] {
                    pairs.push(dict.intern(attr, Scalar::Int(k * 16 + rng.gen_range(0..pool))));
                }
            }
            Document::from_pairs(ssj_json::DocId(i as u64), pairs)
        })
        .collect();
    (dict, docs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let p = ArrivalProfile::Bursty {
            trough: 1_000.0,
            peak: 20_000.0,
            period_ns: 2_000_000,
            duty: 0.25,
        };
        let a = p.schedule(5_000, 7, 0.2);
        let b = p.schedule(5_000, 7, 0.2);
        assert_eq!(a, b);
        let c = p.schedule(5_000, 8, 0.2);
        assert_ne!(a, c, "different seed must perturb a jittered schedule");
    }

    #[test]
    fn constant_schedule_is_exact() {
        let p = ArrivalProfile::Constant { rate: 1_000_000.0 };
        let s = p.schedule(100, 0, 0.0);
        assert_eq!(s.len(), 100);
        for (i, t) in s.iter().enumerate() {
            assert_eq!(*t, i as u64 * 1_000);
        }
    }

    #[test]
    fn schedules_are_monotone() {
        for p in [
            ArrivalProfile::Constant { rate: 5_000.0 },
            ArrivalProfile::Bursty {
                trough: 500.0,
                peak: 50_000.0,
                period_ns: 1_000_000,
                duty: 0.5,
            },
            ArrivalProfile::Ramp {
                start: 100.0,
                end: 100_000.0,
            },
        ] {
            let s = p.schedule(2_000, 3, 0.3);
            assert!(s.windows(2).all(|w| w[0] < w[1]), "{p:?} not monotone");
        }
    }

    #[test]
    fn bursty_hits_peak_trough_ratio() {
        let (trough, peak, period, duty) = (1_000.0, 10_000.0, 10_000_000u64, 0.5);
        let p = ArrivalProfile::Bursty {
            trough,
            peak,
            period_ns: period,
            duty,
        };
        let s = p.schedule(40_000, 0, 0.0);
        let cut = (period as f64 * duty) as u64;
        let (mut in_peak, mut in_trough) = (0u64, 0u64);
        // Skip the final (possibly partial) period so both phases are
        // sampled the same number of times.
        let whole = s.last().unwrap() / period * period;
        for &t in s.iter().filter(|&&t| t < whole) {
            if t % period < cut {
                in_peak += 1;
            } else {
                in_trough += 1;
            }
        }
        // duty = 0.5 → arrivals per phase are proportional to the rates.
        let ratio = in_peak as f64 / in_trough as f64;
        let want = peak / trough;
        assert!(
            (ratio - want).abs() / want < 0.05,
            "peak/trough arrival ratio {ratio:.2}, want {want:.2}"
        );
    }

    #[test]
    fn ramp_gaps_shrink_as_rate_grows() {
        let p = ArrivalProfile::Ramp {
            start: 1_000.0,
            end: 100_000.0,
        };
        let s = p.schedule(1_000, 0, 0.0);
        let first_gap = s[1] - s[0];
        let last_gap = s[999] - s[998];
        assert!(
            first_gap > last_gap * 50,
            "ramp gaps {first_gap} → {last_gap}"
        );
    }

    #[test]
    fn zipf_empirical_frequencies_within_tolerance() {
        let zipf = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(99);
        let n = 200_000;
        let mut counts = [0usize; 10];
        for _ in 0..n {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let emp = count as f64 / n as f64;
            let want = zipf.prob(k);
            assert!(
                (emp - want).abs() < 0.01 + want * 0.05,
                "rank {k}: empirical {emp:.4} vs expected {want:.4}"
            );
        }
        // s = 1 → rank 0 is twice as likely as rank 1.
        let r = counts[0] as f64 / counts[1] as f64;
        assert!((r - 2.0).abs() < 0.15, "rank0/rank1 ratio {r:.2}");
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let zipf = Zipf::new(8, 0.0);
        for k in 0..8 {
            assert!((zipf.prob(k) - 0.125).abs() < 1e-12);
        }
    }

    #[test]
    fn skewed_docs_deterministic_and_skewed() {
        let cfg = SkewConfig {
            seed: 5,
            keys: 8,
            s: 1.2,
            attach: 0.8,
        };
        let (d1, a) = skewed_docs(DataSet::RwData, 400, cfg);
        let (d2, b) = skewed_docs(DataSet::RwData, 400, cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_json(&d1), y.to_json(&d2));
        }
        // The rank-0 key must dominate among attached keys.
        let hot = d1.intern("HotKey", Scalar::Int(0));
        let hot0 = a.iter().filter(|d| d.has_avp(hot)).count();
        let attached = a
            .iter()
            .filter(|d| d.pairs().iter().any(|p| p.attr == hot.attr))
            .count();
        // s = 1.2 over 8 ranks puts ~43% of mass on rank 0 — well above
        // the 12.5% a uniform draw would give.
        assert!(
            hot0 * 3 > attached,
            "rank-0 key on {hot0} of {attached} attached docs"
        );
    }
}
