//! Ablation: sliding windows (chained FP-tree panes, the paper's "ongoing
//! work") vs. a plain tumbling window of the same total size.

use criterion::{criterion_group, criterion_main, Criterion};
use ssj_bench::DataSet;
use ssj_join::{fpjoin, IncrementalSlidingJoiner, SlidingJoiner, WindowSpec};

fn bench_sliding(c: &mut Criterion) {
    let (_dict, docs) = DataSet::RwData.generate(4000, 42);

    let mut group = c.benchmark_group("sliding");
    group.sample_size(10);

    // Tumbling: windows of 1000 docs, batch join per window.
    group.bench_function("tumbling_1000", |b| {
        b.iter(|| {
            let mut pairs = 0usize;
            for window in docs.chunks(1000) {
                pairs += fpjoin::join_batch(window).1.len();
            }
            pairs
        })
    });

    // Sliding: 4 panes × 250 docs — same window span, per-document probing
    // across pane boundaries.
    group.bench_function("sliding_4x250", |b| {
        b.iter(|| {
            let mut joiner = SlidingJoiner::new(WindowSpec::sliding(250, 4));
            let mut partners = 0usize;
            for d in &docs {
                partners += joiner.insert_and_probe(d.clone()).len();
            }
            partners
        })
    });

    // Finer panes: more cross-pane probes, cheaper evictions.
    group.bench_function("sliding_8x125", |b| {
        b.iter(|| {
            let mut joiner = SlidingJoiner::new(WindowSpec::sliding(125, 8));
            let mut partners = 0usize;
            for d in &docs {
                partners += joiner.insert_and_probe(d.clone()).len();
            }
            partners
        })
    });

    // True per-document sliding: tombstoned evictions + periodic rebuilds.
    group.bench_function("incremental_1000", |b| {
        b.iter(|| {
            let mut joiner = IncrementalSlidingJoiner::new(1000, 0.5);
            let mut partners = 0usize;
            for d in &docs {
                partners += joiner.insert_and_probe(d.clone()).len();
            }
            partners
        })
    });

    group.finish();
}

criterion_group!(benches, bench_sliding);
criterion_main!(benches);
