//! Microbenchmarks of the JSON substrate: parsing, serialization,
//! flattening/interning, and the pairwise join compatibility test.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ssj_bench::DataSet;
use ssj_json::{parse, Dictionary, DocId, Document};

fn bench_json(c: &mut Criterion) {
    // A realistic corpus: 1000 server-log lines as text.
    let dict = Dictionary::new();
    let (gen_dict, docs) = DataSet::RwData.generate(1000, 42);
    let lines: Vec<String> = docs.iter().map(|d| d.to_json(&gen_dict)).collect();
    let bytes: usize = lines.iter().map(String::len).sum();

    let mut group = c.benchmark_group("json");
    group.throughput(Throughput::Bytes(bytes as u64));
    group.bench_function("parse_1000_docs", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for line in &lines {
                n += parse(line).unwrap().len();
            }
            n
        })
    });
    group.bench_function("serialize_1000_docs", |b| {
        let values: Vec<_> = lines.iter().map(|l| parse(l).unwrap()).collect();
        b.iter(|| {
            let mut total = 0usize;
            for v in &values {
                total += v.to_json().len();
            }
            total
        })
    });
    group.bench_function("intern_1000_docs", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for (i, line) in lines.iter().enumerate() {
                n += Document::from_json(DocId(i as u64), line, &dict)
                    .unwrap()
                    .len();
            }
            n
        })
    });
    group.finish();

    let mut group = c.benchmark_group("join_test");
    group.bench_function("check_join_all_pairs_200", |b| {
        let subset = &docs[..200];
        b.iter(|| {
            let mut joinable = 0usize;
            for (i, a) in subset.iter().enumerate() {
                for b in &subset[i + 1..] {
                    joinable += a.joins_with(b) as usize;
                }
            }
            joinable
        })
    });
    group.finish();
}

criterion_group!(benches, bench_json);
criterion_main!(benches);
