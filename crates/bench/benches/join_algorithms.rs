//! Criterion microbenchmarks behind Fig. 11: the three local join
//! algorithms on both datasets at growing window sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ssj_bench::DataSet;
use ssj_join::{join_batch, JoinAlgo};

fn bench_joins(c: &mut Criterion) {
    for dataset in DataSet::all() {
        let mut group = c.benchmark_group(format!("join/{}", dataset.label()));
        group.sample_size(10);
        for &n in &[500usize, 1000, 2000] {
            let (_dict, docs) = dataset.generate(n, 42);
            group.throughput(Throughput::Elements(n as u64));
            for algo in [JoinAlgo::FpTree, JoinAlgo::Hbj, JoinAlgo::Nlj] {
                group.bench_with_input(BenchmarkId::new(algo.name(), n), &docs, |b, docs| {
                    b.iter(|| join_batch(algo, docs))
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_joins);
criterion_main!(benches);
