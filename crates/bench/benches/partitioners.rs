//! Partitioner microbenchmarks: creation cost of AG / SC / DS on one window
//! of each dataset, plus the attribute-expansion ablation (§VI-B).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssj_bench::DataSet;
use ssj_json::Dictionary;
use ssj_partition::{batch_views, Expansion, PartitionerKind, View};

fn views_of(dataset: DataSet, n: usize, expansion: bool, m: usize) -> (Dictionary, Vec<View>) {
    let (dict, docs) = dataset.generate(n, 42);
    let exp = if expansion {
        Expansion::detect(&docs, &dict, m)
    } else {
        None
    };
    let views = batch_views(&docs, exp.as_ref(), &dict)
        .into_iter()
        .flatten()
        .collect();
    (dict, views)
}

fn bench_partitioners(c: &mut Criterion) {
    let m = 8;
    for dataset in DataSet::all() {
        let mut group = c.benchmark_group(format!("partition/{}", dataset.label()));
        group.sample_size(10);
        let (_dict, views) = views_of(dataset, 1500, true, m);
        for kind in PartitionerKind::with_baselines() {
            group.bench_with_input(
                BenchmarkId::new(kind.name(), views.len()),
                &views,
                |b, views| b.iter(|| kind.create(views, m)),
            );
        }
        group.finish();
    }

    // Ablation: AG creation quality work with vs. without expansion —
    // measures the end-to-end cost of view building + partitioning.
    let mut group = c.benchmark_group("partition/expansion_ablation");
    group.sample_size(10);
    for expansion in [true, false] {
        group.bench_function(
            if expansion {
                "nbData/with_expansion"
            } else {
                "nbData/without_expansion"
            },
            |b| {
                b.iter(|| {
                    let (_d, views) = views_of(DataSet::NbData, 1000, expansion, m);
                    PartitionerKind::Ag.create(&views, m)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
