//! FP-tree microbenchmarks: construction, probing, and the ablation of the
//! ubiquitous-attribute fast path (§V-B).
//!
//! The benchmarks are split into a *build* side (batch construction and
//! incremental insertion) and a *probe* side (the four probing strategies,
//! including steady-state probing through a reused [`fpjoin::ProbeScratch`]).
//! In bench mode the measured results are written to `BENCH_fptree.json`
//! at the repository root.
//!
//! With `--features count-allocs` a counting global allocator is installed
//! and the run additionally audits that steady-state probing — warmed
//! scratch plus reused output buffer — performs **zero** heap allocations
//! per probe (it aborts the bench if that regresses).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssj_bench::DataSet;
use ssj_join::{fpjoin, FpTree};

#[cfg(feature = "count-allocs")]
mod alloc_counter {
    //! Thread-local allocation counter installed as the global allocator.
    //! It only counts allocation events; all real work is delegated to the
    //! system allocator. `try_with` keeps it safe during TLS teardown.
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    thread_local! {
        static ALLOCS: Cell<u64> = const { Cell::new(0) };
    }

    struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    /// Allocation events observed on this thread so far.
    pub fn allocations() -> u64 {
        ALLOCS.with(|c| c.get())
    }
}

fn bench_fptree(c: &mut Criterion) {
    for dataset in DataSet::all() {
        let (_dict, docs) = dataset.generate(2000, 42);

        let mut group = c.benchmark_group(format!("fptree/{}", dataset.label()));
        group.sample_size(10);

        // ----- build side ------------------------------------------------
        group.bench_function("build/2000", |b| b.iter(|| FpTree::build(&docs)));

        group.bench_with_input(BenchmarkId::new("build/insert", 2000), &docs, |b, docs| {
            b.iter(|| {
                let order = ssj_join::AttrOrder::compute(docs.iter());
                let mut tree = FpTree::new(order);
                for d in docs {
                    tree.insert(d);
                }
                tree.node_count()
            })
        });

        // ----- probe side ------------------------------------------------
        let tree = FpTree::build(&docs);
        group.bench_function("probe_all/fast_path", |b| {
            b.iter(|| {
                let mut found = 0usize;
                for d in &docs {
                    found += fpjoin::probe_with_stats(&tree, d, true).0.len();
                }
                found
            })
        });
        // Ablation: the same probes without the ubiquitous-level shortcut.
        group.bench_function("probe_all/no_fast_path", |b| {
            b.iter(|| {
                let mut found = 0usize;
                for d in &docs {
                    found += fpjoin::probe_with_stats(&tree, d, false).0.len();
                }
                found
            })
        });
        // Alternative strategy: candidate-driven probing via header chains.
        group.bench_function("probe_all/header_chains", |b| {
            b.iter(|| {
                let mut found = 0usize;
                for d in &docs {
                    found += ssj_join::probe_via_header(&tree, d).len();
                }
                found
            })
        });
        // Steady state: conflict table, DFS stack and output buffer are all
        // reused across probes — the zero-allocation hot path.
        let mut scratch = fpjoin::ProbeScratch::new();
        let mut partners = Vec::new();
        group.bench_function("probe_all/scratch_reuse", |b| {
            b.iter(|| {
                let mut found = 0usize;
                for d in &docs {
                    fpjoin::probe_into(&tree, d, true, &mut scratch, &mut partners);
                    found += partners.len();
                }
                found
            })
        });
        group.finish();
    }
}

/// Run `probes` over the tree with warmed buffers and return the observed
/// allocations per probe, or `None` when the counting allocator is not
/// compiled in.
fn steady_state_allocs_per_probe(
    tree: &FpTree,
    docs: &[ssj_json::Document],
    scratch: &mut fpjoin::ProbeScratch,
    partners: &mut Vec<ssj_json::DocId>,
) -> Option<f64> {
    #[cfg(feature = "count-allocs")]
    {
        let before = alloc_counter::allocations();
        for d in docs {
            fpjoin::probe_into(tree, d, true, scratch, partners);
        }
        let after = alloc_counter::allocations();
        let per_probe = (after - before) as f64 / docs.len() as f64;
        assert_eq!(
            after - before,
            0,
            "steady-state probing must not allocate ({per_probe} allocs/probe observed)"
        );
        Some(per_probe)
    }
    #[cfg(not(feature = "count-allocs"))]
    {
        // Exercise the same loop so both builds run identical code paths.
        for d in docs {
            fpjoin::probe_into(tree, d, true, scratch, partners);
        }
        None
    }
}

/// Audit steady-state allocations and persist every measurement of this run
/// to `BENCH_fptree.json` at the repository root. Runs last in the group so
/// it sees the full measurement list; no-op outside bench mode.
fn report(c: &mut Criterion) {
    if !std::env::args().any(|a| a == "--bench") {
        return;
    }
    let mut audits = String::new();
    for (i, dataset) in DataSet::all().iter().enumerate() {
        let (_dict, docs) = dataset.generate(2000, 42);
        let tree = FpTree::build(&docs);
        let mut scratch = fpjoin::ProbeScratch::new();
        let mut partners = Vec::new();
        // Warm-up grows every reusable buffer to its steady-state capacity.
        for d in &docs {
            fpjoin::probe_into(&tree, d, true, &mut scratch, &mut partners);
        }
        let per_probe = steady_state_allocs_per_probe(&tree, &docs, &mut scratch, &mut partners);
        let (counted, value) = match per_probe {
            Some(v) => {
                println!(
                    "fptree/{}: steady-state allocations per probe: {v}",
                    dataset.label()
                );
                ("true", format!("{v}"))
            }
            None => ("false", "null".to_owned()),
        };
        if i > 0 {
            audits.push_str(",\n");
        }
        audits.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"counted\": {counted}, \"allocs_per_probe\": {value}}}",
            dataset.label()
        ));
    }

    let mut measurements = String::new();
    for (i, m) in c.measurements().iter().enumerate() {
        if i > 0 {
            measurements.push_str(",\n");
        }
        measurements.push_str(&format!(
            "    {{\"id\": \"{}\", \"ns_per_iter\": {:.1}, \"iters\": {}}}",
            m.id, m.ns_per_iter, m.iters
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"fptree\",\n  \"docs_per_dataset\": 2000,\n  \
         \"measurements\": [\n{measurements}\n  ],\n  \
         \"steady_state_allocs\": [\n{audits}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fptree.json");
    std::fs::write(path, json).expect("write BENCH_fptree.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_fptree, report);
criterion_main!(benches);
