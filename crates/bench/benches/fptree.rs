//! FP-tree microbenchmarks: construction, probing, and the ablation of the
//! ubiquitous-attribute fast path (§V-B).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssj_bench::DataSet;
use ssj_join::{fpjoin, FpTree};

fn bench_fptree(c: &mut Criterion) {
    for dataset in DataSet::all() {
        let (_dict, docs) = dataset.generate(2000, 42);

        let mut group = c.benchmark_group(format!("fptree/{}", dataset.label()));
        group.sample_size(10);

        group.bench_function("build/2000", |b| {
            b.iter(|| FpTree::build(docs.iter()))
        });

        let tree = FpTree::build(docs.iter());
        group.bench_function("probe_all/fast_path", |b| {
            b.iter(|| {
                let mut found = 0usize;
                for d in &docs {
                    found += fpjoin::probe_with_stats(&tree, d, true).0.len();
                }
                found
            })
        });
        // Ablation: the same probes without the ubiquitous-level shortcut.
        group.bench_function("probe_all/no_fast_path", |b| {
            b.iter(|| {
                let mut found = 0usize;
                for d in &docs {
                    found += fpjoin::probe_with_stats(&tree, d, false).0.len();
                }
                found
            })
        });
        // Alternative strategy: candidate-driven probing via header chains.
        group.bench_function("probe_all/header_chains", |b| {
            b.iter(|| {
                let mut found = 0usize;
                for d in &docs {
                    found += ssj_join::probe_via_header(&tree, d).len();
                }
                found
            })
        });

        group.bench_with_input(
            BenchmarkId::new("insert", 2000),
            &docs,
            |b, docs| {
                b.iter(|| {
                    let order = ssj_join::AttrOrder::compute(docs.iter());
                    let mut tree = FpTree::new(order);
                    for d in docs {
                        tree.insert(d);
                    }
                    tree.node_count()
                })
            },
        );
        group.finish();
    }
}

criterion_group!(benches, bench_fptree);
criterion_main!(benches);
