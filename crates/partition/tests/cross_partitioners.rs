//! Cross-partitioner differential tests (§IV, §VII-A).
//!
//! Every partitioner — AG, SC, DS, and the hash baseline — must satisfy the
//! same two contracts on a creation batch:
//!
//! 1. **Coverage**: every attribute-value pair that occurs in the batch is
//!    assigned to at least one partition, so no creation-batch document is
//!    ever broadcast.
//! 2. **Join exactness** (the differential oracle): routing the batch
//!    through the table and joining locally on each machine produces exactly
//!    the pairs of documents that share at least one attribute-value pair —
//!    no partitioner may lose or invent a join result, and therefore all
//!    partitioners produce *identical* join output.
//!
//! A fifth table built by the Merger path (`merge_and_assign` over locally
//! computed association groups, §IV-A) is held to the same contracts.

use proptest::prelude::*;
use ssj_partition::{
    association_groups, merge_and_assign, GroupIndex, PartitionTable, PartitionerKind, View,
};
use std::collections::BTreeSet;

use ssj_json::AvpId;

/// Deterministically generate a batch of document views over a small
/// attribute-value vocabulary. Small vocabularies force shared pairs (and
/// thus joins); the LCG keeps the batch a pure function of `seed`.
fn gen_views(seed: u64, docs: usize, vocab: u32, max_len: usize) -> Vec<View> {
    let mut state = seed | 1;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    (0..docs)
        .map(|_| {
            let len = 1 + (next() as usize) % max_len;
            let mut view: View = (0..len).map(|_| AvpId((next() as u32) % vocab)).collect();
            view.sort_unstable();
            view.dedup();
            view
        })
        .collect()
}

/// The global oracle: every unordered pair of documents sharing at least one
/// attribute-value pair.
fn oracle_joins(views: &[View]) -> BTreeSet<(u32, u32)> {
    let mut out = BTreeSet::new();
    for i in 0..views.len() {
        for j in (i + 1)..views.len() {
            if views[i].iter().any(|a| views[j].binary_search(a).is_ok()) {
                out.insert((i as u32, j as u32));
            }
        }
    }
    out
}

/// Route the batch through `table`, join locally on each machine (pairs of
/// co-located documents sharing a pair), and union the machine-local results
/// — the distributed join the table is supposed to make exact.
fn distributed_joins(table: &PartitionTable, views: &[View]) -> BTreeSet<(u32, u32)> {
    let m = table.m();
    let mut per_machine: Vec<Vec<u32>> = vec![Vec::new(); m];
    for (i, view) in views.iter().enumerate() {
        for t in table.route(view).targets(m) {
            per_machine[t as usize].push(i as u32);
        }
    }
    let mut out = BTreeSet::new();
    for machine in &per_machine {
        for (x, &i) in machine.iter().enumerate() {
            for &j in &machine[x + 1..] {
                let (vi, vj) = (&views[i as usize], &views[j as usize]);
                if vi.iter().any(|a| vj.binary_search(a).is_ok()) {
                    out.insert((i.min(j), i.max(j)));
                }
            }
        }
    }
    out
}

/// Distinct pairs of the batch.
fn batch_avps(views: &[View]) -> BTreeSet<AvpId> {
    views.iter().flatten().copied().collect()
}

/// Check both contracts for one table.
fn check_table(
    name: &str,
    table: &PartitionTable,
    views: &[View],
    oracle: &BTreeSet<(u32, u32)>,
) -> Result<(), TestCaseError> {
    for &avp in &batch_avps(views) {
        prop_assert!(
            !table.partitions_of(avp).is_empty(),
            "{name}: pair {avp:?} of the creation batch is unassigned"
        );
    }
    for view in views {
        prop_assert!(
            view.is_empty() || !table.route(view).is_broadcast(),
            "{name}: creation-batch view {view:?} broadcasts"
        );
    }
    let got = distributed_joins(table, views);
    prop_assert_eq!(
        &got,
        oracle,
        "{} join results diverge from the oracle",
        name
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All four partitioners cover every creation-batch pair and produce
    /// join results identical to the single-machine oracle (and therefore
    /// to each other), across batch shapes and machine counts.
    #[test]
    fn partitioners_agree_with_join_oracle(
        seed in 0u64..u64::MAX,
        docs in 4usize..40,
        vocab in 3u32..24,
        max_len in 1usize..6,
        m in 1usize..6,
    ) {
        let views = gen_views(seed, docs, vocab, max_len);
        let oracle = oracle_joins(&views);
        for kind in PartitionerKind::with_baselines() {
            let table = kind.create(&views, m);
            prop_assert_eq!(table.m(), m);
            check_table(kind.name(), &table, &views, &oracle)?;
        }
    }

    /// The Merger path — association groups computed locally on chunks of
    /// the batch, then consolidated and assigned (§IV-A) — obeys the same
    /// coverage and exactness contracts as single-shot creation.
    #[test]
    fn merger_consolidation_preserves_join_exactness(
        seed in 0u64..u64::MAX,
        docs in 4usize..32,
        vocab in 3u32..16,
        chunks in 1usize..5,
        m in 1usize..5,
    ) {
        let views = gen_views(seed, docs, vocab, 5);
        let oracle = oracle_joins(&views);
        let per = views.len().div_ceil(chunks);
        let locals: Vec<_> = views
            .chunks(per.max(1))
            .map(association_groups)
            .collect();
        let table = merge_and_assign(locals, m);
        check_table("merge_and_assign", &table, &views, &oracle)?;
    }

    /// A sixth table built by the *incremental* AG path — the batch pushed
    /// through a [`GroupIndex`] and derived — obeys the same contracts and
    /// equals the batch AG partitioner's table exactly (after expiring a
    /// prefix, it must equal the batch table over the surviving suffix).
    #[test]
    fn incremental_ag_path_matches_batch_partitioner(
        seed in 0u64..u64::MAX,
        docs in 4usize..32,
        vocab in 3u32..16,
        expire in 0usize..8,
        m in 1usize..5,
    ) {
        let views = gen_views(seed, docs, vocab, 5);
        let mut idx = GroupIndex::new();
        let ids: Vec<u32> = views.iter().map(|v| idx.push(v)).collect();
        let table = idx.derive_table(m);
        prop_assert_eq!(&table, &PartitionerKind::Ag.create(&views, m));
        let oracle = oracle_joins(&views);
        check_table("GroupIndex", &table, &views, &oracle)?;

        let expire = expire.min(views.len() - 1);
        for &id in &ids[..expire] {
            prop_assert!(idx.expire(id));
        }
        let rest = views[expire..].to_vec();
        let table = idx.derive_table(m);
        prop_assert_eq!(&table, &PartitionerKind::Ag.create(&rest, m));
        check_table("GroupIndex/expired", &table, &rest, &oracle_joins(&rest))?;
    }
}

/// Documents whose every pair is unknown to the table broadcast to all
/// machines, so joins among them — and with any routed document — stay
/// complete (§VI-A's completeness fallback).
#[test]
fn broadcast_fallback_keeps_unseen_joins_complete() {
    let creation = gen_views(7, 12, 8, 4);
    for kind in PartitionerKind::with_baselines() {
        let table = kind.create(&creation, 3);
        // Probe stream: the creation docs plus documents over a fully
        // disjoint vocabulary (ids ≥ 100) that can only broadcast.
        let mut probe = creation.clone();
        probe.push(vec![AvpId(100), AvpId(101)]);
        probe.push(vec![AvpId(101), AvpId(102)]);
        probe.push(vec![AvpId(200)]);
        for unseen in &probe[creation.len()..] {
            assert!(
                table.route(unseen).is_broadcast(),
                "{}: unseen view must broadcast",
                kind.name()
            );
        }
        let oracle = oracle_joins(&probe);
        let got = distributed_joins(&table, &probe);
        assert_eq!(got, oracle, "{}: broadcast joins diverge", kind.name());
    }
}
