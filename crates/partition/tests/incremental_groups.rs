//! Differential tests for the fast partitioning pipeline.
//!
//! Three equivalences, each held across randomized inputs:
//!
//! 1. **Incremental ≡ batch**: a [`GroupIndex`] driven through a random
//!    interleaving of pushes, expiries, and derives produces exactly the
//!    association groups — and `assign_groups` tables for several machine
//!    counts — that a from-scratch batch computation over its live views
//!    produces. Equivalence groups agree modulo the order-preserving
//!    document-id relabeling (the index hands out monotone ids, the batch
//!    uses 0-based indices).
//! 2. **Parallel ≡ sequential**: the sharded build is byte-identical to the
//!    sequential one for any worker count.
//! 3. **`route_into` ≡ `route`**: the zero-alloc mask fast path (with and
//!    without the fingerprint cache) returns the same targets as the
//!    allocating `route`, including the `m > 64` fallback.

use proptest::prelude::*;
use ssj_json::AvpId;
use ssj_partition::{
    assign_groups, association_groups, association_groups_sharded, equivalence_groups,
    fingerprint_view, GroupIndex, PartitionTable, RouteScratch, View,
};

/// Deterministic pseudo-random views over a small vocabulary (the same LCG
/// as `cross_partitioners.rs`).
fn gen_views(seed: u64, docs: usize, vocab: u32, max_len: usize) -> Vec<View> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    (0..docs)
        .map(|_| {
            let len = 1 + (next() as usize) % max_len;
            let mut view: View = (0..len).map(|_| AvpId((next() as u32) % vocab)).collect();
            view.sort_unstable();
            view.dedup();
            view
        })
        .collect()
}

/// Compare the index against a from-scratch batch over its live views:
/// association groups, tables for several `m`, and equivalence groups
/// modulo the id relabeling.
fn assert_matches_batch(idx: &mut GroupIndex, live: &[(u32, View)]) -> Result<(), TestCaseError> {
    let views: Vec<View> = live.iter().map(|(_, v)| v.clone()).collect();
    prop_assert_eq!(idx.association_groups(), association_groups(&views));
    for m in [2usize, 4, 8] {
        prop_assert_eq!(
            idx.derive_table(m),
            assign_groups(association_groups(&views), m),
            "tables diverge at m={}",
            m
        );
    }
    // Equivalence groups: the index's ids relabel to batch indices by rank
    // (live is kept in ascending-id order), and the relabeling is monotone,
    // so the deterministic group order is preserved exactly.
    let mut relabeled = idx.equivalence_groups();
    for eg in &mut relabeled {
        for d in &mut eg.docs {
            *d = live
                .binary_search_by_key(d, |&(id, _)| id)
                .expect("index docset id is live") as u32;
        }
    }
    prop_assert_eq!(relabeled, equivalence_groups(&views));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Equivalence 1: random delta sequences with interleaved derives.
    #[test]
    fn incremental_matches_batch_over_delta_sequences(
        seed in 0u64..u64::MAX,
        ops in 5usize..60,
        vocab in 3u32..20,
        max_len in 1usize..6,
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut idx = GroupIndex::new();
        // Mirror of the live population, ascending by id.
        let mut live: Vec<(u32, View)> = Vec::new();
        for op in 0..ops {
            match next() % 10 {
                // Expire a random live view.
                0..=2 if !live.is_empty() => {
                    let at = (next() as usize) % live.len();
                    let (id, _) = live.remove(at);
                    prop_assert!(idx.expire(id));
                }
                // Derive mid-stream and compare against the batch oracle.
                3 => assert_matches_batch(&mut idx, &live)?,
                // Push a fresh view.
                _ => {
                    let len = 1 + (next() as usize) % max_len;
                    let mut view: View =
                        (0..len).map(|_| AvpId((next() as u32) % vocab)).collect();
                    view.sort_unstable();
                    view.dedup();
                    let id = idx.push(&view);
                    live.push((id, view));
                    prop_assert_eq!(idx.len(), live.len(), "op {}", op);
                }
            }
        }
        assert_matches_batch(&mut idx, &live)?;
    }

    /// Equivalence 2: the sharded build is byte-identical to the
    /// sequential one for any worker count (forced below the size cutoff).
    #[test]
    fn sharded_build_matches_sequential(
        seed in 0u64..u64::MAX,
        docs in 2usize..80,
        vocab in 3u32..24,
        max_len in 1usize..6,
        workers in 2usize..9,
    ) {
        let views = gen_views(seed, docs, vocab, max_len);
        prop_assert_eq!(
            association_groups_sharded(&views, workers),
            association_groups(&views)
        );
    }

    /// Equivalence 3a: the mask fast path agrees with `route` on every
    /// view — creation-batch views (all pairs known) and unseen ones.
    #[test]
    fn route_into_matches_route(
        seed in 0u64..u64::MAX,
        docs in 4usize..40,
        vocab in 3u32..24,
        max_len in 1usize..6,
        m in 1usize..7,
    ) {
        let views = gen_views(seed, docs, vocab, max_len);
        let table = assign_groups(association_groups(&views), m);
        prop_assert!(table.mask_supported());
        let mut probes = views;
        // Unseen and half-seen probes exercise the broadcast outcome.
        probes.push(vec![AvpId(vocab + 100)]);
        probes.push(vec![AvpId(0), AvpId(vocab + 101)]);
        let mut scratch = RouteScratch::new();
        for view in &probes {
            assert_route_agrees(&table, view, &mut scratch)?;
        }
        // Cached protocol (the Assigner's): cache only fully-known views,
        // then replay every probe through the cache-first path.
        for view in &probes {
            let mask = table.view_mask(view);
            let all_known = !view.is_empty()
                && view.iter().all(|&a| table.avp_mask(a) != 0);
            if all_known && mask != 0 {
                scratch.cache_put(fingerprint_view(view.iter().copied()), mask);
            }
        }
        for view in &probes {
            let fp = fingerprint_view(view.iter().copied());
            if let Some(mask) = scratch.cache_get(fp) {
                scratch.set_targets_from_mask(mask);
                let legacy = table.route(view);
                prop_assert!(!legacy.is_broadcast());
                let want = legacy.targets(m);
                prop_assert_eq!(scratch.targets(), want.as_slice());
            } else {
                assert_route_agrees(&table, view, &mut scratch)?;
            }
        }
    }

    /// Equivalence 3b: above 64 machines the bitmask no longer fits and
    /// `route_into` takes the sort-dedup fallback — still identical.
    #[test]
    fn route_into_matches_route_beyond_mask_width(
        seed in 0u64..u64::MAX,
        docs in 4usize..24,
        vocab in 3u32..16,
        m in 65usize..80,
    ) {
        let views = gen_views(seed, docs, vocab, 5);
        let table = assign_groups(association_groups(&views), m);
        prop_assert!(!table.mask_supported());
        let mut scratch = RouteScratch::new();
        for view in &views {
            assert_route_agrees(&table, view, &mut scratch)?;
        }
    }
}

/// One view through both routing paths; targets must agree exactly.
fn assert_route_agrees(
    table: &PartitionTable,
    view: &[AvpId],
    scratch: &mut RouteScratch,
) -> Result<(), TestCaseError> {
    let legacy = table.route(view);
    let outcome = table.route_into(view, scratch);
    prop_assert_eq!(legacy.is_broadcast(), outcome.is_broadcast());
    if !outcome.is_broadcast() {
        let want = legacy.targets(table.m());
        prop_assert_eq!(scratch.targets(), want.as_slice());
    }
    Ok(())
}
