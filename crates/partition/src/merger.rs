//! Consolidation of local association groups at the Merger (§IV-A).
//!
//! Each PartitionCreator runs only phase 1 of the partitioning algorithm on
//! its disjoint sample of the window; the Merger unifies the local groups:
//!
//! 1. merge every association group that is a *subset* of another, and
//! 2. for a pair present in two different groups, remove it from the group
//!    with *more* elements,
//!
//! then populates the `m` partitions with the greedy placement of §IV-A.

use crate::groups::AssociationGroup;
use crate::partitions::{assign_groups, PartitionTable};
use ssj_json::{AvpId, FxHashMap};

/// Unify local association groups from several PartitionCreators into one
/// global, non-overlapping set.
pub fn consolidate(locals: Vec<Vec<AssociationGroup>>) -> Vec<AssociationGroup> {
    let mut groups: Vec<AssociationGroup> = locals.into_iter().flatten().collect();
    for g in &mut groups {
        g.avps.sort();
        g.avps.dedup();
    }
    // Deterministic processing order: larger groups first so subset checks
    // compare each group against already-kept supersets.
    groups.sort_by(|a, b| {
        b.avps
            .len()
            .cmp(&a.avps.len())
            .then_with(|| a.avps.cmp(&b.avps))
    });

    // Step 1: drop groups fully contained in an already-kept group, folding
    // their load into the superset (those documents match it anyway).
    let mut kept: Vec<AssociationGroup> = Vec::new();
    'outer: for g in groups {
        for k in kept.iter_mut() {
            if is_subset(&g.avps, &k.avps) {
                k.load = k.load.max(g.load);
                continue 'outer;
            }
        }
        kept.push(g);
    }

    // Step 2: a pair in two groups is removed from the group with more
    // elements (ties: the later one). `owner` maps pair → (kept index, len).
    let mut owner: FxHashMap<AvpId, usize> = FxHashMap::default();
    let mut remove: Vec<Vec<AvpId>> = vec![Vec::new(); kept.len()];
    for (gi, g) in kept.iter().enumerate() {
        for &avp in &g.avps {
            match owner.get(&avp) {
                None => {
                    owner.insert(avp, gi);
                }
                Some(&prev) => {
                    // Remove from the larger group.
                    if kept[prev].avps.len() > g.avps.len() {
                        remove[prev].push(avp);
                        owner.insert(avp, gi);
                    } else {
                        remove[gi].push(avp);
                    }
                }
            }
        }
    }
    for (g, rm) in kept.iter_mut().zip(remove) {
        if !rm.is_empty() {
            g.avps.retain(|a| !rm.contains(a));
        }
    }
    kept.retain(|g| !g.avps.is_empty());
    kept
}

/// Full Merger step: consolidate and place onto `m` partitions.
pub fn merge_and_assign(locals: Vec<Vec<AssociationGroup>>, m: usize) -> PartitionTable {
    assign_groups(consolidate(locals), m)
}

fn is_subset(small: &[AvpId], big: &[AvpId]) -> bool {
    if small.len() > big.len() {
        return false;
    }
    let mut j = 0usize;
    for &x in small {
        loop {
            match big.get(j) {
                None => return false,
                Some(&y) if y == x => {
                    j += 1;
                    break;
                }
                Some(&y) if y > x => return false,
                _ => j += 1,
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_json::FxHashSet;

    fn ag(avps: &[u32], load: usize) -> AssociationGroup {
        AssociationGroup {
            avps: avps.iter().map(|&a| AvpId(a)).collect(),
            load,
        }
    }

    #[test]
    fn subsets_are_absorbed() {
        let locals = vec![vec![ag(&[1, 2, 3], 5)], vec![ag(&[1, 2], 3)]];
        let out = consolidate(locals);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].avps, vec![AvpId(1), AvpId(2), AvpId(3)]);
        assert_eq!(out[0].load, 5);
    }

    #[test]
    fn duplicate_pair_removed_from_larger_group() {
        let locals = vec![vec![ag(&[1, 2, 3], 4)], vec![ag(&[3, 9], 2)]];
        let out = consolidate(locals);
        assert_eq!(out.len(), 2);
        let big = out.iter().find(|g| g.avps.contains(&AvpId(1))).unwrap();
        let small = out.iter().find(|g| g.avps.contains(&AvpId(9))).unwrap();
        assert!(!big.avps.contains(&AvpId(3)), "3 removed from larger group");
        assert!(small.avps.contains(&AvpId(3)));
    }

    #[test]
    fn result_groups_are_disjoint() {
        let locals = vec![
            vec![ag(&[1, 2], 2), ag(&[3, 4, 5], 3)],
            vec![ag(&[2, 3], 2), ag(&[5, 6], 1), ag(&[7], 1)],
        ];
        let out = consolidate(locals);
        let mut seen: FxHashSet<AvpId> = FxHashSet::default();
        for g in &out {
            for &avp in &g.avps {
                assert!(seen.insert(avp), "pair {avp} appears twice");
            }
        }
        // Every original pair survives somewhere.
        for p in 1..=7u32 {
            assert!(seen.contains(&AvpId(p)), "pair {p} lost");
        }
    }

    #[test]
    fn identical_groups_from_two_creators_merge() {
        let locals = vec![vec![ag(&[1, 2], 4)], vec![ag(&[1, 2], 6)]];
        let out = consolidate(locals);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].load, 6);
    }

    #[test]
    fn merge_and_assign_covers_all_pairs() {
        let locals = vec![
            vec![ag(&[1, 2], 5), ag(&[3], 1)],
            vec![ag(&[4, 5], 2), ag(&[2, 6], 3)],
        ];
        let table = merge_and_assign(locals, 2);
        for p in 1..=6u32 {
            assert!(
                !table.partitions_of(AvpId(p)).is_empty(),
                "pair {p} unrouted"
            );
        }
    }

    #[test]
    fn empty_input() {
        assert!(consolidate(vec![]).is_empty());
        assert!(consolidate(vec![vec![], vec![]]).is_empty());
    }
}
