//! Attribute-value expansion for low value variety (§VI-B).
//!
//! An attribute present in *all* documents with fewer distinct values than
//! the required number of partitions `m` (the **disabling attribute** — think
//! a Boolean flag) caps how many partitions any scheme can create. The fix:
//! concatenate its values with those of a **combining attribute** (the next
//! attribute appearing in most documents with the fewest distinct values),
//! repeating until the synthetic attribute has at least `m` distinct values.
//!
//! Correctness: two documents that share the disabling pair and both carry
//! the combining attribute either agree on it (same synthetic value → same
//! partition) or conflict on it (not joinable anyway). A document *missing*
//! a chained attribute cannot form the synthetic value and must be broadcast
//! to all machines; the expected extra replication is `pna · m` where `pna`
//! is the fraction of such documents.

use crate::groups::View;
use ssj_json::{AttrId, Dictionary, Document, FxHashMap, FxHashSet};

/// A detected expansion: the chain of combined attributes and the synthetic
/// attribute their concatenated values intern under.
#[derive(Debug, Clone)]
pub struct Expansion {
    /// Combined attributes: `[disabling, combining₁, combining₂, …]`.
    pub chain: Vec<AttrId>,
    /// The synthetic attribute (e.g. `"bool+str1"`).
    pub synth_attr: AttrId,
    /// Fraction of detection-batch documents lacking a chained attribute
    /// (the `pna` of the paper's replication estimate).
    pub pna: f64,
}

impl Expansion {
    /// Detect whether expansion is needed for `docs` given `m` partitions;
    /// `None` when no disabling attribute exists.
    ///
    /// ```
    /// use ssj_partition::Expansion;
    /// use ssj_json::{Dictionary, DocId, Document};
    ///
    /// let dict = Dictionary::new();
    /// // A ubiquitous Boolean plus a 4-valued group attribute.
    /// let docs: Vec<Document> = (0..16u64)
    ///     .map(|i| Document::from_json(
    ///         DocId(i),
    ///         &format!(r#"{{"flag":{},"grp":"g{}"}}"#, i % 2 == 0, (i / 2) % 4),
    ///         &dict,
    ///     ).unwrap())
    ///     .collect();
    /// let exp = Expansion::detect(&docs, &dict, 8).expect("flag limits m");
    /// assert_eq!(dict.attr_name(exp.synth_attr), "flag+grp");
    /// ```
    pub fn detect(docs: &[Document], dict: &Dictionary, m: usize) -> Option<Expansion> {
        if docs.is_empty() || m <= 1 {
            return None;
        }
        // Per-attribute document frequency and batch-local distinct values.
        let mut freq: FxHashMap<AttrId, usize> = FxHashMap::default();
        let mut distinct: FxHashMap<AttrId, FxHashSet<u32>> = FxHashMap::default();
        for d in docs {
            for p in d.pairs() {
                *freq.entry(p.attr).or_insert(0) += 1;
                distinct.entry(p.attr).or_default().insert(p.avp.0);
            }
        }
        let n = docs.len();
        // Disabling attribute: in all documents, fewer distinct values than
        // m; pick the one with the fewest values (most limiting).
        let disabling = freq
            .iter()
            .filter(|&(a, &f)| f == n && distinct[a].len() < m)
            .min_by_key(|&(a, _)| (distinct[a].len(), a.0))
            .map(|(&a, _)| a)?;

        let mut chain = vec![disabling];
        let mut combined = combined_distinct(docs, &chain);
        while combined < m {
            // Combining attribute: most frequent, then fewest distinct.
            let next = freq
                .iter()
                .filter(|&(a, _)| !chain.contains(a))
                .max_by_key(|&(a, &f)| {
                    (
                        f,
                        std::cmp::Reverse(distinct[a].len()),
                        std::cmp::Reverse(a.0),
                    )
                })
                .map(|(&a, _)| a);
            match next {
                Some(a) => {
                    chain.push(a);
                    let now = combined_distinct(docs, &chain);
                    if now == combined {
                        // No progress possible (e.g. constant attribute);
                        // keep it anyway and stop: variety is exhausted.
                        break;
                    }
                    combined = now;
                }
                None => break,
            }
        }

        let missing = docs
            .iter()
            .filter(|d| chain.iter().any(|&a| !d.has_attr(a)))
            .count();
        let name = chain
            .iter()
            .map(|&a| dict.attr_name(a))
            .collect::<Vec<_>>()
            .join("+");
        Some(Expansion {
            synth_attr: dict.intern_attr(&name),
            pna: missing as f64 / n as f64,
            chain,
        })
    }

    /// The synthetic pair for `doc`, or `None` when a chained attribute is
    /// missing (the document must then be broadcast).
    pub fn synthetic_pair(&self, doc: &Document, dict: &Dictionary) -> Option<ssj_json::Pair> {
        let mut parts = Vec::with_capacity(self.chain.len());
        for &attr in &self.chain {
            let pair = doc.pair_for_attr(attr)?;
            parts.push(dict.avp_scalar(pair.avp).render());
        }
        Some(dict.intern_avp(self.synth_attr, ssj_json::Scalar::Str(parts.join("+"))))
    }

    /// The partitioning view of `doc`: its pairs with the chained attributes
    /// replaced by the synthetic pair. `None` = broadcast.
    pub fn view(&self, doc: &Document, dict: &Dictionary) -> Option<View> {
        let synth = self.synthetic_pair(doc, dict)?;
        let mut view: View = doc
            .pairs()
            .iter()
            .filter(|p| !self.chain.contains(&p.attr))
            .map(|p| p.avp)
            .collect();
        view.push(synth.avp);
        Some(view)
    }

    /// Allocation-free [`view`](Self::view): writes the partitioning view
    /// into `buf` (cleared first) and returns whether the synthetic pair
    /// could be formed. `false` = a chained attribute is missing, the
    /// document must be broadcast (`buf` is left empty).
    pub fn view_into(
        &self,
        doc: &Document,
        dict: &Dictionary,
        buf: &mut Vec<ssj_json::AvpId>,
    ) -> bool {
        buf.clear();
        let Some(synth) = self.synthetic_pair(doc, dict) else {
            return false;
        };
        buf.extend(
            doc.pairs()
                .iter()
                .filter(|p| !self.chain.contains(&p.attr))
                .map(|p| p.avp),
        );
        buf.push(synth.avp);
        true
    }

    /// The paper's replication estimate for broadcast fallback: `pna · m`.
    pub fn estimated_extra_replication(&self, m: usize) -> f64 {
        self.pna * m as f64
    }
}

/// Build partitioning views for a batch: expanded when possible, `None`
/// (broadcast) when a chained attribute is missing. Without an expansion the
/// view is simply the document's own pairs.
pub fn batch_views(
    docs: &[Document],
    expansion: Option<&Expansion>,
    dict: &Dictionary,
) -> Vec<Option<View>> {
    docs.iter()
        .map(|d| match expansion {
            Some(e) => e.view(d, dict),
            None => Some(d.avps().collect()),
        })
        .collect()
}

fn combined_distinct(docs: &[Document], chain: &[AttrId]) -> usize {
    let mut seen: FxHashSet<Vec<u32>> = FxHashSet::default();
    'outer: for d in docs {
        let mut key = Vec::with_capacity(chain.len());
        for &a in chain {
            match d.pair_for_attr(a) {
                Some(p) => key.push(p.avp.0),
                None => continue 'outer,
            }
        }
        seen.insert(key);
    }
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_json::{DocId, Document};

    fn doc(dict: &Dictionary, id: u64, json: &str) -> Document {
        Document::from_json(DocId(id), json, dict).unwrap()
    }

    fn bool_dataset(dict: &Dictionary) -> Vec<Document> {
        // `flag` appears everywhere with 2 values; `grp` appears everywhere
        // with 4 values; `x` is noise.
        (0..16u64)
            .map(|i| {
                doc(
                    dict,
                    i + 1,
                    &format!(
                        r#"{{"flag":{},"grp":"g{}","x":{}}}"#,
                        i % 2 == 0,
                        (i / 2) % 4,
                        i
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn detects_boolean_disabling_attribute() {
        let dict = Dictionary::new();
        let docs = bool_dataset(&dict);
        let exp = Expansion::detect(&docs, &dict, 8).expect("expansion needed");
        let flag = dict.intern_attr("flag");
        assert_eq!(exp.chain[0], flag, "flag is the most limiting attribute");
        assert!(exp.chain.len() >= 2, "must chain a combining attribute");
        assert_eq!(exp.pna, 0.0);
        // flag(2) × grp(4) = 8 distinct synthetic values ≥ m.
        assert_eq!(dict.attr_name(exp.synth_attr), "flag+grp");
    }

    #[test]
    fn no_expansion_when_variety_sufficient() {
        let dict = Dictionary::new();
        let docs: Vec<Document> = (0..10u64)
            .map(|i| doc(&dict, i + 1, &format!(r#"{{"id":"u{i}"}}"#)))
            .collect();
        assert!(Expansion::detect(&docs, &dict, 5).is_none());
    }

    #[test]
    fn no_expansion_for_single_partition() {
        let dict = Dictionary::new();
        let docs = bool_dataset(&dict);
        assert!(Expansion::detect(&docs, &dict, 1).is_none());
    }

    #[test]
    fn synthetic_values_distinguish_partitions() {
        let dict = Dictionary::new();
        let docs = bool_dataset(&dict);
        let exp = Expansion::detect(&docs, &dict, 8).unwrap();
        let mut synth: FxHashSet<u32> = FxHashSet::default();
        for d in &docs {
            let p = exp.synthetic_pair(d, &dict).unwrap();
            synth.insert(p.avp.0);
        }
        assert_eq!(synth.len(), 8);
    }

    #[test]
    fn missing_combining_attribute_forces_broadcast() {
        let dict = Dictionary::new();
        let mut docs = bool_dataset(&dict);
        let exp = Expansion::detect(&docs, &dict, 8).unwrap();
        // A late document without `grp` cannot form the synthetic value.
        let orphan = doc(&dict, 99, r#"{"flag":true,"x":5}"#);
        assert!(exp.view(&orphan, &dict).is_none());
        docs.push(orphan);
        let views = batch_views(&docs, Some(&exp), &dict);
        assert_eq!(views.iter().filter(|v| v.is_none()).count(), 1);
    }

    #[test]
    fn view_replaces_chained_attributes() {
        let dict = Dictionary::new();
        let docs = bool_dataset(&dict);
        let exp = Expansion::detect(&docs, &dict, 8).unwrap();
        let v = exp.view(&docs[0], &dict).unwrap();
        let flag_pair = docs[0].pair_for_attr(dict.intern_attr("flag")).unwrap();
        assert!(!v.contains(&flag_pair.avp), "original flag pair removed");
        let synth = exp.synthetic_pair(&docs[0], &dict).unwrap();
        assert!(v.contains(&synth.avp));
        // The noise attribute x is untouched.
        let x_pair = docs[0].pair_for_attr(dict.intern_attr("x")).unwrap();
        assert!(v.contains(&x_pair.avp));
    }

    #[test]
    fn view_into_matches_view() {
        let dict = Dictionary::new();
        let docs = bool_dataset(&dict);
        let exp = Expansion::detect(&docs, &dict, 8).unwrap();
        let mut buf = Vec::new();
        for d in &docs {
            assert!(exp.view_into(d, &dict, &mut buf));
            assert_eq!(buf, exp.view(d, &dict).unwrap());
        }
        let orphan = doc(&dict, 99, r#"{"flag":true,"x":5}"#);
        assert!(!exp.view_into(&orphan, &dict, &mut buf));
        assert!(buf.is_empty());
    }

    #[test]
    fn pna_estimate() {
        let dict = Dictionary::new();
        let mut docs = bool_dataset(&dict);
        // 4 of 20 docs carry only the disabling attribute → pna = 0.2.
        for i in 0..4u64 {
            docs.push(doc(&dict, 100 + i, r#"{"flag":true}"#));
        }
        let exp = Expansion::detect(&docs, &dict, 8).unwrap();
        assert!((exp.pna - 0.2).abs() < 1e-9, "pna = {}", exp.pna);
        assert!((exp.estimated_extra_replication(8) - 1.6).abs() < 1e-9);
    }

    #[test]
    fn chains_multiple_attributes_when_needed() {
        let dict = Dictionary::new();
        // Two ubiquitous Booleans and one 3-valued attr: need m=10 →
        // 2×2×3 = 12 ≥ 10 requires a chain of 3.
        let docs: Vec<Document> = (0..24u64)
            .map(|i| {
                doc(
                    &dict,
                    i + 1,
                    &format!(
                        r#"{{"b1":{},"b2":{},"t":"v{}"}}"#,
                        i % 2 == 0,
                        (i / 2) % 2 == 0,
                        i % 3
                    ),
                )
            })
            .collect();
        let exp = Expansion::detect(&docs, &dict, 10).unwrap();
        assert_eq!(exp.chain.len(), 3);
        let mut synth: FxHashSet<u32> = FxHashSet::default();
        for d in &docs {
            synth.insert(exp.synthetic_pair(d, &dict).unwrap().avp.0);
        }
        assert!(synth.len() >= 10, "got {} synthetic values", synth.len());
    }
}
