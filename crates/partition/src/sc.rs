//! The Set-Cover competitor (SC, §VII-A), after Alvanaki & Michel \[26\],
//! tuned for low communication overhead as described by the paper.
//!
//! Phase 1 seeds the `m` partitions: in each iteration the document pair-set
//! with the *most uncovered* and, on ties, the *fewest covered* pairs is
//! selected and becomes a partition. Phase 2 assigns the remaining sets —
//! smallest first, ties broken by most uncovered pairs — to the partition
//! with the *least load* and, on ties, the *most pairs in common* with the
//! set; the set's pairs are merged into that partition.
//!
//! Because whole document pair-sets are merged into partitions, popular
//! pairs end up replicated across many partitions. That is precisely the
//! behaviour the paper observes: SC approaches worst-case replication while
//! showing a deceptively flat load balance.

use crate::groups::View;
use crate::partitions::PartitionTable;
use crate::Partitioner;
use ssj_json::{AvpId, FxHashMap, FxHashSet};

/// Set-cover–based partitioning.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScPartitioner;

impl Partitioner for ScPartitioner {
    fn name(&self) -> &'static str {
        "SC"
    }

    fn create(&self, views: &[View], m: usize) -> PartitionTable {
        assert!(m > 0);
        let mut table = PartitionTable::empty(m);
        if views.is_empty() {
            return table;
        }

        // Deduplicated pair-sets per document.
        let sets: Vec<Vec<AvpId>> = views
            .iter()
            .map(|v| {
                let mut s = v.clone();
                s.sort();
                s.dedup();
                s
            })
            .collect();

        // Inverted index pair → documents, to update uncovered counts
        // incrementally as pairs become covered.
        let mut containing: FxHashMap<AvpId, Vec<u32>> = FxHashMap::default();
        for (i, s) in sets.iter().enumerate() {
            for &avp in s {
                containing.entry(avp).or_default().push(i as u32);
            }
        }

        let mut uncovered: Vec<usize> = sets.iter().map(Vec::len).collect();
        let mut covered: FxHashSet<AvpId> = FxHashSet::default();
        let mut taken = vec![false; sets.len()];
        let mut loads = vec![0usize; m];

        let cover_set =
            |set_idx: usize, covered: &mut FxHashSet<AvpId>, uncovered: &mut Vec<usize>| {
                for &avp in &sets[set_idx] {
                    if covered.insert(avp) {
                        for &d in &containing[&avp] {
                            uncovered[d as usize] -= 1;
                        }
                    }
                }
            };

        // Phase 1: seed partitions.
        let seeds = m.min(sets.len());
        #[allow(clippy::needless_range_loop)] // p is a partition id, not just an index
        for p in 0..seeds {
            let best = (0..sets.len())
                .filter(|&i| !taken[i])
                .max_by_key(|&i| {
                    let cov = sets[i].len() - uncovered[i];
                    // most uncovered, then fewest covered, then stable index.
                    (uncovered[i], std::cmp::Reverse(cov), std::cmp::Reverse(i))
                })
                .expect("untaken set exists");
            taken[best] = true;
            for &avp in &sets[best] {
                table.add_avp(p as u32, avp);
            }
            loads[p] += 1;
            cover_set(best, &mut covered, &mut uncovered);
        }

        // Phase 2: remaining sets, smallest first, most uncovered on ties
        // (uncovered counts frozen at the end of phase 1 to keep the pass
        // linear; the paper's description does not pin the refresh point).
        let mut remaining: Vec<usize> = (0..sets.len()).filter(|&i| !taken[i]).collect();
        remaining.sort_by_key(|&i| (sets[i].len(), std::cmp::Reverse(uncovered[i]), i));
        for i in remaining {
            // Partition with least load, then most pairs in common.
            let mut common = vec![0usize; m];
            for &avp in &sets[i] {
                for &p in table.partitions_of(avp) {
                    common[p as usize] += 1;
                }
            }
            let p = (0..m)
                .min_by_key(|&p| (loads[p], std::cmp::Reverse(common[p]), p))
                .expect("m > 0");
            for &avp in &sets[i] {
                table.add_avp(p as u32, avp);
            }
            loads[p] += 1;
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_json::{Dictionary, Scalar};

    fn views(dict: &Dictionary, specs: &[&[(&str, i64)]]) -> Vec<View> {
        specs
            .iter()
            .map(|doc| {
                doc.iter()
                    .map(|&(a, v)| dict.intern(a, Scalar::Int(v)).avp)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn every_creation_pair_is_covered() {
        let dict = Dictionary::new();
        let vs = views(
            &dict,
            &[
                &[("a", 1), ("b", 2)],
                &[("b", 2), ("c", 3)],
                &[("d", 4)],
                &[("a", 1), ("c", 3), ("e", 5)],
            ],
        );
        let table = ScPartitioner.create(&vs, 2);
        for v in &vs {
            assert!(!table.route(v).is_broadcast());
        }
    }

    #[test]
    fn popular_pairs_replicate_across_partitions() {
        let dict = Dictionary::new();
        // s:1 occurs in every document; whole-set merging must copy it into
        // more than one partition (the paper's SC pathology).
        let vs = views(
            &dict,
            &[
                &[("s", 1), ("a", 1)],
                &[("s", 1), ("b", 2)],
                &[("s", 1), ("c", 3)],
                &[("s", 1), ("d", 4)],
                &[("s", 1), ("e", 5)],
                &[("s", 1), ("f", 6)],
            ],
        );
        let table = ScPartitioner.create(&vs, 3);
        let s1 = dict.lookup("s", &Scalar::Int(1)).unwrap().avp;
        assert!(
            table.partitions_of(s1).len() > 1,
            "s:1 should be in several partitions, found {:?}",
            table.partitions_of(s1)
        );
        // Consequently documents carrying s:1 fan out widely.
        let fan = table.route(&vs[0]).fanout(3);
        assert!(fan > 1);
    }

    #[test]
    fn joinable_views_share_a_machine() {
        let dict = Dictionary::new();
        let vs = views(
            &dict,
            &[
                &[("u", 1), ("s", 10)],
                &[("u", 1), ("m", 2)],
                &[("u", 2), ("s", 20)],
                &[("ip", 7), ("s", 10)],
            ],
        );
        let table = ScPartitioner.create(&vs, 2);
        for (i, a) in vs.iter().enumerate() {
            for b in &vs[i + 1..] {
                if !a.iter().any(|p| b.contains(p)) {
                    continue;
                }
                let ta = table.route(a).targets(2);
                let tb = table.route(b).targets(2);
                assert!(ta.iter().any(|t| tb.contains(t)));
            }
        }
    }

    #[test]
    fn fewer_sets_than_partitions() {
        let dict = Dictionary::new();
        let vs = views(&dict, &[&[("a", 1)]]);
        let table = ScPartitioner.create(&vs, 4);
        assert!(!table.route(&vs[0]).is_broadcast());
    }

    #[test]
    fn empty_input_gives_empty_table() {
        let table = ScPartitioner.create(&[], 2);
        assert!(table.is_empty());
    }
}
