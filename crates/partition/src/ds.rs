//! The Disjoint-Sets competitor (DS, §VII-A), after Alvanaki & Michel \[26\].
//!
//! Union–find over attribute-value pairs: all pairs co-occurring in one
//! document are unioned, producing connected components ("disjoint sets").
//! Every pair belongs to exactly one component and every component is
//! assigned to exactly one partition, so a matched document is sent to
//! exactly one machine — perfect replication of 1. The price, as the paper
//! shows, is load balance: real data tends to collapse into one giant
//! component that lands on a single machine.

use crate::groups::{AssociationGroup, View};
use crate::partitions::{assign_groups, PartitionTable};
use crate::Partitioner;
use ssj_json::{AvpId, FxHashMap};

/// Disjoint-sets partitioning.
#[derive(Debug, Clone, Copy, Default)]
pub struct DsPartitioner;

/// A plain union–find with path halving and union by size.
#[derive(Debug, Default)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// Create a forest of `n` singletons.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Grow to at least `n` elements.
    pub fn ensure(&mut self, n: usize) {
        while self.parent.len() < n {
            self.parent.push(self.parent.len() as u32);
            self.size.push(1);
        }
    }

    /// The representative of `x`'s component.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            // Path halving.
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    /// Merge the components of `a` and `b`; returns the new root.
    pub fn union(&mut self, a: u32, b: u32) -> u32 {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        big
    }

    /// Whether `a` and `b` share a component.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }
}

impl Partitioner for DsPartitioner {
    fn name(&self) -> &'static str {
        "DS"
    }

    fn create(&self, views: &[View], m: usize) -> PartitionTable {
        // Dense renumbering of the pairs present in this batch.
        let mut dense: FxHashMap<AvpId, u32> = FxHashMap::default();
        let mut pairs: Vec<AvpId> = Vec::new();
        for v in views {
            for &avp in v {
                dense.entry(avp).or_insert_with(|| {
                    pairs.push(avp);
                    (pairs.len() - 1) as u32
                });
            }
        }
        let mut uf = UnionFind::new(pairs.len());
        for v in views {
            let mut it = v.iter();
            if let Some(&first) = it.next() {
                let f = dense[&first];
                for avp in it {
                    uf.union(f, dense[avp]);
                }
            }
        }
        // Components → groups with document-count loads.
        let mut members: FxHashMap<u32, Vec<AvpId>> = FxHashMap::default();
        for (i, &avp) in pairs.iter().enumerate() {
            members.entry(uf.find(i as u32)).or_default().push(avp);
        }
        let mut loads: FxHashMap<u32, usize> = FxHashMap::default();
        for v in views {
            if let Some(&first) = v.first() {
                *loads.entry(uf.find(dense[&first])).or_insert(0) += 1;
            }
        }
        let groups: Vec<AssociationGroup> = members
            .into_iter()
            .map(|(root, mut avps)| {
                avps.sort();
                AssociationGroup {
                    load: loads.get(&root).copied().unwrap_or(0),
                    avps,
                }
            })
            .collect();
        assign_groups(groups, m)
    }
}

/// Number of connected components a DS run would produce — used to decide
/// whether attribute expansion is mandatory (§VI-B: DS "can practically
/// never create enough partitions" without it).
pub fn component_count(views: &[View]) -> usize {
    let mut dense: FxHashMap<AvpId, u32> = FxHashMap::default();
    let mut n = 0u32;
    let mut uf = UnionFind::new(0);
    for v in views {
        let mut first: Option<u32> = None;
        for &avp in v {
            let id = *dense.entry(avp).or_insert_with(|| {
                let id = n;
                n += 1;
                id
            });
            uf.ensure(n as usize);
            match first {
                None => first = Some(id),
                Some(f) => {
                    uf.union(f, id);
                }
            }
        }
    }
    let mut roots = ssj_json::FxHashSet::default();
    for i in 0..n {
        roots.insert(uf.find(i));
    }
    roots.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_json::{Dictionary, Scalar};

    fn views(dict: &Dictionary, specs: &[&[(&str, i64)]]) -> Vec<View> {
        specs
            .iter()
            .map(|doc| {
                doc.iter()
                    .map(|&(a, v)| dict.intern(a, Scalar::Int(v)).avp)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert!(!uf.connected(0, 1));
        uf.union(0, 1);
        uf.union(1, 2);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        uf.union(3, 4);
        uf.union(2, 3);
        assert!(uf.connected(0, 4));
    }

    #[test]
    fn matched_documents_route_to_exactly_one_machine() {
        let dict = Dictionary::new();
        let vs = views(
            &dict,
            &[
                &[("a", 1), ("b", 2)],
                &[("b", 2), ("c", 3)],
                &[("d", 4), ("e", 5)],
                &[("f", 6)],
            ],
        );
        let table = DsPartitioner.create(&vs, 3);
        for v in &vs {
            assert_eq!(table.route(v).fanout(3), 1, "view {v:?}");
        }
    }

    #[test]
    fn transitively_connected_pairs_share_a_partition() {
        let dict = Dictionary::new();
        let vs = views(&dict, &[&[("a", 1), ("b", 2)], &[("b", 2), ("c", 3)]]);
        let table = DsPartitioner.create(&vs, 2);
        let a = dict.lookup("a", &Scalar::Int(1)).unwrap().avp;
        let c = dict.lookup("c", &Scalar::Int(3)).unwrap().avp;
        assert_eq!(table.partitions_of(a), table.partitions_of(c));
    }

    #[test]
    fn component_count_matches() {
        let dict = Dictionary::new();
        let vs = views(
            &dict,
            &[
                &[("a", 1), ("b", 2)],
                &[("b", 2), ("c", 3)],
                &[("d", 4), ("e", 5)],
                &[("f", 6)],
            ],
        );
        assert_eq!(component_count(&vs), 3);
    }

    #[test]
    fn giant_component_starves_other_machines() {
        let dict = Dictionary::new();
        // A hub pair chains every document into one component.
        let vs: Vec<View> = (0..10)
            .map(|i| {
                vec![
                    dict.intern("hub", Scalar::Int(0)).avp,
                    dict.intern("x", Scalar::Int(i)).avp,
                ]
            })
            .collect();
        assert_eq!(component_count(&vs), 1);
        let table = DsPartitioner.create(&vs, 4);
        let stats = crate::partitions::route_batch(&table, &vs);
        let busy = stats.per_machine.iter().filter(|&&c| c > 0).count();
        assert_eq!(busy, 1, "all documents on one machine: {stats:?}");
    }

    #[test]
    fn empty_views_handled() {
        let table = DsPartitioner.create(&[], 2);
        assert!(table.is_empty());
        assert_eq!(component_count(&[]), 0);
    }
}
