//! Partitions and document routing (§III, §IV).
//!
//! A partition is a set of attribute-value pairs; a document *matches* a
//! partition when the two share at least one pair. [`PartitionTable`] owns
//! the `m` partitions and answers routing queries; [`assign_groups`]
//! implements the paper's greedy placement of association groups ("populate
//! with the first m groups by load, then always give the largest remaining
//! group to the least-loaded partition").

use crate::fingerprint::Fp128;
use crate::groups::{AssociationGroup, View};
use ssj_json::{AvpId, FxHashMap};

/// Where a document must be sent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// The matching partitions (machine indices), deduplicated, sorted.
    To(Vec<u32>),
    /// No pair matched any partition: broadcast to every machine to
    /// guarantee a complete join result (§VI-A).
    Broadcast,
}

impl Route {
    /// Number of machines this route sends the document to.
    pub fn fanout(&self, m: usize) -> usize {
        match self {
            Route::To(t) => t.len(),
            Route::Broadcast => m,
        }
    }

    /// The concrete machine indices for a cluster of `m` machines.
    pub fn targets(&self, m: usize) -> Vec<u32> {
        match self {
            Route::To(t) => t.clone(),
            Route::Broadcast => (0..m as u32).collect(),
        }
    }

    /// Visit every target machine without materializing a vector —
    /// broadcasts iterate `0..m` directly.
    #[inline]
    pub fn for_each_target(&self, m: usize, mut f: impl FnMut(u32)) {
        match self {
            Route::To(t) => {
                for &p in t {
                    f(p);
                }
            }
            Route::Broadcast => {
                for p in 0..m as u32 {
                    f(p);
                }
            }
        }
    }

    /// True when the route is a broadcast.
    pub fn is_broadcast(&self) -> bool {
        matches!(self, Route::Broadcast)
    }
}

/// Outcome of the allocation-free [`PartitionTable::route_into`]: either the
/// targets were written into the scratch buffer, or the view matched no
/// partition and must be broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteOutcome {
    /// `scratch.targets()` holds the sorted, deduplicated machine indices.
    Matched,
    /// No pair matched any partition (scratch targets left empty).
    Broadcast,
}

impl RouteOutcome {
    /// True when the route is a broadcast.
    pub fn is_broadcast(self) -> bool {
        self == RouteOutcome::Broadcast
    }
}

/// Number of slots in the direct-mapped route cache (power of two).
const ROUTE_CACHE_SLOTS: usize = 256;

/// Reusable routing state: a target buffer [`route_into`] writes into, and a
/// small direct-mapped cache from view fingerprints to partition bitmasks
/// for repeated view shapes. Both are allocated once; steady-state routing
/// performs **zero** heap allocations (audited by `bench_partition --audit`).
///
/// [`route_into`]: PartitionTable::route_into
#[derive(Debug, Clone)]
pub struct RouteScratch {
    targets: Vec<u32>,
    /// Direct-mapped `fingerprint → partition mask` cache, indexed by the
    /// low fingerprint bits. A `None` slot is empty.
    cache: Vec<Option<(Fp128, u64)>>,
}

impl Default for RouteScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl RouteScratch {
    /// A scratch with all buffers pre-sized (the only allocations it will
    /// ever make).
    pub fn new() -> Self {
        RouteScratch {
            targets: Vec::with_capacity(64),
            cache: vec![None; ROUTE_CACHE_SLOTS],
        }
    }

    /// The targets written by the last [`PartitionTable::route_into`].
    #[inline]
    pub fn targets(&self) -> &[u32] {
        &self.targets
    }

    /// Decode a partition bitmask into the target buffer (ascending, so the
    /// result is sorted and deduplicated by construction).
    #[inline]
    pub fn set_targets_from_mask(&mut self, mut mask: u64) {
        self.targets.clear();
        while mask != 0 {
            self.targets.push(mask.trailing_zeros());
            mask &= mask - 1;
        }
    }

    /// Look up a cached partition mask for a view fingerprint.
    #[inline]
    pub fn cache_get(&self, fp: Fp128) -> Option<u64> {
        match self.cache[fp.lo as usize & (ROUTE_CACHE_SLOTS - 1)] {
            Some((cached_fp, mask)) if cached_fp == fp => Some(mask),
            _ => None,
        }
    }

    /// Remember a view fingerprint's partition mask (evicts whatever shared
    /// its slot). Callers must only cache views whose pairs are all known to
    /// the current table, and must [`invalidate_cache`](Self::invalidate_cache)
    /// whenever the table changes.
    #[inline]
    pub fn cache_put(&mut self, fp: Fp128, mask: u64) {
        self.cache[fp.lo as usize & (ROUTE_CACHE_SLOTS - 1)] = Some((fp, mask));
    }

    /// Drop every cached route (call on table deployment/update — and, for
    /// sliding windows, whenever a retained table expires from the pane
    /// lookback, since cached masks are unions over the retained set).
    pub fn invalidate_cache(&mut self) {
        self.cache.iter_mut().for_each(|slot| *slot = None);
    }

    /// Append extra route targets (e.g. from a retained sliding-window
    /// table) and restore the sorted/deduplicated invariant of the buffer.
    pub fn merge_targets(&mut self, extra: impl IntoIterator<Item = u32>) {
        let before = self.targets.len();
        self.targets.extend(extra);
        if self.targets.len() > before {
            self.targets.sort_unstable();
            self.targets.dedup();
        }
    }
}

/// The deployed set of `m` partitions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PartitionTable {
    m: usize,
    /// Pair → partitions carrying it. A single entry for AG/DS (their
    /// partitions are disjoint); possibly several for SC.
    index: FxHashMap<AvpId, Vec<u32>>,
    /// Declared load per partition (from group loads at creation time).
    loads: Vec<usize>,
    /// Pairs per partition (diagnostics and the Merger's update path).
    members: Vec<Vec<AvpId>>,
    /// Pair → bitmask of partitions carrying it, maintained alongside
    /// `index` whenever `m ≤ 64` (bit `p` ⇔ partition `p`). Routing then
    /// reduces to OR-ing one `u64` per pair, and a zero mask doubles as the
    /// "pair unknown" test — one lookup answers both questions.
    masks: FxHashMap<AvpId, u64>,
}

impl PartitionTable {
    /// An empty table of `m` partitions (routes everything to Broadcast).
    pub fn empty(m: usize) -> Self {
        PartitionTable {
            m,
            index: FxHashMap::default(),
            loads: vec![0; m],
            members: vec![Vec::new(); m],
            masks: FxHashMap::default(),
        }
    }

    /// Number of partitions (= machines, = Joiner instances).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Add `avp` to partition `p` (the Merger's single-pair update, §VI-A).
    pub fn add_avp(&mut self, p: u32, avp: AvpId) {
        let entry = self.index.entry(avp).or_default();
        if !entry.contains(&p) {
            entry.push(p);
            self.members[p as usize].push(avp);
            if self.m <= 64 {
                *self.masks.entry(avp).or_insert(0) |= 1u64 << p;
            }
        }
    }

    /// Whether the bitmask fast path is available (`m ≤ 64`, so a partition
    /// set fits one `u64`).
    #[inline]
    pub fn mask_supported(&self) -> bool {
        self.m <= 64
    }

    /// Bitmask of the partitions carrying `avp` (0 ⇔ the pair is unknown).
    /// Only meaningful when [`mask_supported`](Self::mask_supported).
    #[inline]
    pub fn avp_mask(&self, avp: AvpId) -> u64 {
        self.masks.get(&avp).copied().unwrap_or(0)
    }

    /// Bitmask of all partitions matching the view (OR over its pairs).
    #[inline]
    pub fn view_mask(&self, view: &[AvpId]) -> u64 {
        view.iter().fold(0u64, |m, &a| m | self.avp_mask(a))
    }

    /// The partitions that carry `avp`.
    pub fn partitions_of(&self, avp: AvpId) -> &[u32] {
        self.index.get(&avp).map_or(&[], Vec::as_slice)
    }

    /// Pairs assigned to partition `p`.
    pub fn members(&self, p: u32) -> &[AvpId] {
        &self.members[p as usize]
    }

    /// Declared load of partition `p`.
    pub fn declared_load(&self, p: u32) -> usize {
        self.loads[p as usize]
    }

    /// The partition with the smallest declared load — the Merger's target
    /// for single-pair updates (§VI-A).
    pub fn least_loaded(&self) -> u32 {
        (0..self.m as u32)
            .min_by_key(|&p| self.loads[p as usize])
            .expect("m > 0")
    }

    /// Increase the declared load of `p` (used when updates add pairs).
    pub fn bump_load(&mut self, p: u32, by: usize) {
        self.loads[p as usize] += by;
    }

    /// Number of distinct pairs across all partitions.
    pub fn pair_count(&self) -> usize {
        self.index.len()
    }

    /// True when no pair is assigned anywhere.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Route one document view: all partitions sharing at least one pair,
    /// or [`Route::Broadcast`] when nothing matches.
    pub fn route(&self, view: &[AvpId]) -> Route {
        let mut targets: Vec<u32> = Vec::new();
        for avp in view {
            if let Some(ps) = self.index.get(avp) {
                targets.extend_from_slice(ps);
            }
        }
        if targets.is_empty() {
            return Route::Broadcast;
        }
        targets.sort_unstable();
        targets.dedup();
        Route::To(targets)
    }

    /// Allocation-free [`route`](Self::route): writes the sorted,
    /// deduplicated targets into `scratch` instead of returning a fresh
    /// vector. For `m ≤ 64` the match set is accumulated as a single `u64`
    /// bitmask (one hash lookup per pair, no sort); larger clusters fall
    /// back to sort+dedup inside the reusable buffer. Both paths produce
    /// exactly the targets [`route`](Self::route) would.
    pub fn route_into(&self, view: &[AvpId], scratch: &mut RouteScratch) -> RouteOutcome {
        if self.mask_supported() {
            let mask = self.view_mask(view);
            if mask == 0 {
                scratch.targets.clear();
                return RouteOutcome::Broadcast;
            }
            scratch.set_targets_from_mask(mask);
        } else {
            scratch.targets.clear();
            for avp in view {
                if let Some(ps) = self.index.get(avp) {
                    scratch.targets.extend_from_slice(ps);
                }
            }
            if scratch.targets.is_empty() {
                return RouteOutcome::Broadcast;
            }
            scratch.targets.sort_unstable();
            scratch.targets.dedup();
        }
        RouteOutcome::Matched
    }

    /// Human-readable dump of the table: one line per partition with its
    /// declared load and members rendered through the dictionary (members
    /// are truncated to `max_members` per partition; 0 = unlimited).
    pub fn describe(&self, dict: &ssj_json::Dictionary, max_members: usize) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for p in 0..self.m as u32 {
            let members = self.members(p);
            let shown = if max_members == 0 {
                members.len()
            } else {
                members.len().min(max_members)
            };
            let rendered: Vec<String> = members[..shown]
                .iter()
                .map(|&avp| dict.render_avp(avp))
                .collect();
            let ellipsis = if members.len() > shown {
                format!(", … {} more", members.len() - shown)
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "partition {p}: load {} | {} pairs | {{{}{}}}",
                self.loads[p as usize],
                members.len(),
                rendered.join(", "),
                ellipsis
            );
        }
        out
    }

    /// Export the table as a JSON value, suitable for snapshotting next to
    /// a [`ssj_json::Dictionary::export`] (pair ids reference it):
    /// `{"m": m, "partitions": [{"load": l, "avps": [ids…]}, …]}`.
    pub fn export(&self) -> ssj_json::Value {
        use ssj_json::Value;
        let partitions = Value::Array(
            (0..self.m as u32)
                .map(|p| {
                    let mut obj = Value::object();
                    obj.insert("load", Value::Int(self.loads[p as usize] as i64));
                    obj.insert(
                        "avps",
                        Value::Array(
                            self.members(p)
                                .iter()
                                .map(|a| Value::Int(a.0 as i64))
                                .collect(),
                        ),
                    );
                    obj
                })
                .collect(),
        );
        let mut out = Value::object();
        out.insert("m", Value::Int(self.m as i64));
        out.insert("partitions", partitions);
        out
    }

    /// Rebuild a table from an [`export`](Self::export)ed value.
    pub fn import(value: &ssj_json::Value) -> Result<PartitionTable, String> {
        use ssj_json::Value;
        let m = value
            .get("m")
            .and_then(Value::as_int)
            .filter(|&m| m > 0)
            .ok_or("missing or invalid 'm'")? as usize;
        let mut table = PartitionTable::empty(m);
        let partitions = match value.get("partitions") {
            Some(Value::Array(items)) if items.len() == m => items,
            _ => return Err("'partitions' must be an array of length m".into()),
        };
        for (p, part) in partitions.iter().enumerate() {
            let load = part
                .get("load")
                .and_then(Value::as_int)
                .filter(|&l| l >= 0)
                .ok_or(format!("partition {p}: missing 'load'"))?;
            table.loads[p] = load as usize;
            let avps = match part.get("avps") {
                Some(Value::Array(items)) => items,
                _ => return Err(format!("partition {p}: missing 'avps'")),
            };
            for a in avps {
                let id = a
                    .as_int()
                    .filter(|&v| v >= 0 && v <= u32::MAX as i64)
                    .ok_or(format!("partition {p}: invalid pair id"))?;
                table.add_avp(p as u32, AvpId(id as u32));
            }
        }
        Ok(table)
    }

    /// Which fraction of the view's pairs are known to the table — the
    /// Assigner's novelty signal.
    pub fn known_fraction(&self, view: &[AvpId]) -> f64 {
        if view.is_empty() {
            return 1.0;
        }
        let known = view.iter().filter(|a| self.index.contains_key(a)).count();
        known as f64 / view.len() as f64
    }
}

/// Greedy load-balanced placement of association groups onto `m` partitions
/// (§IV-A, following the disjoint-sets placement of Alvanaki & Michel).
pub fn assign_groups(mut groups: Vec<AssociationGroup>, m: usize) -> PartitionTable {
    assert!(m > 0, "need at least one partition");
    // Largest load first (determinism: then by contents).
    groups.sort_by(|a, b| b.load.cmp(&a.load).then_with(|| a.avps.cmp(&b.avps)));
    let mut table = PartitionTable::empty(m);
    for group in groups {
        // The least-loaded partition; the first m groups therefore land on
        // the m initially-empty partitions exactly as the paper describes.
        let p = (0..m as u32)
            .min_by_key(|&p| table.loads[p as usize])
            .expect("m > 0");
        for avp in group.avps {
            table.add_avp(p, avp);
        }
        table.loads[p as usize] += group.load;
    }
    table
}

/// Count how many machines each view is sent to under `table`, returning
/// `(assignments per machine, total sends, broadcasts)` — the raw numbers
/// behind the replication / load-balance / max-load metrics of §VII-C.
pub fn route_batch(table: &PartitionTable, views: &[View]) -> RoutingStats {
    let m = table.m();
    let mut per_machine = vec![0usize; m];
    let mut total_sends = 0usize;
    let mut broadcasts = 0usize;
    let mut scratch = RouteScratch::new();
    for view in views {
        match table.route_into(view, &mut scratch) {
            RouteOutcome::Broadcast => {
                broadcasts += 1;
                for slot in per_machine.iter_mut() {
                    *slot += 1;
                }
                total_sends += m;
            }
            RouteOutcome::Matched => {
                for &t in scratch.targets() {
                    per_machine[t as usize] += 1;
                    total_sends += 1;
                }
            }
        }
    }
    RoutingStats {
        per_machine,
        total_sends,
        broadcasts,
        docs: views.len(),
    }
}

/// Raw routing counts for one batch of views.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingStats {
    /// Documents received per machine.
    pub per_machine: Vec<usize>,
    /// Total document transmissions (sum over machines).
    pub total_sends: usize,
    /// Documents that matched no partition and were broadcast.
    pub broadcasts: usize,
    /// Number of documents routed.
    pub docs: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ag(avps: &[u32], load: usize) -> AssociationGroup {
        AssociationGroup {
            avps: avps.iter().map(|&a| AvpId(a)).collect(),
            load,
        }
    }

    #[test]
    fn seeds_take_largest_groups() {
        let groups = vec![ag(&[1], 10), ag(&[2], 20), ag(&[3], 5), ag(&[4], 8)];
        let table = assign_groups(groups, 2);
        // Largest (20) and second (10) seed the two partitions; 8 joins the
        // 10-partition (load 18), 5 joins the 20-partition (load 25)?
        // Greedy: after seeds loads are [20,10]; 8 → partition with 10 →
        // [20,18]; 5 → partition with 18? No: min is 18 vs 20 → 18 → 23.
        let loads = [table.declared_load(0), table.declared_load(1)];
        let mut sorted = loads;
        sorted.sort();
        assert_eq!(sorted, [20, 23]);
    }

    #[test]
    fn route_matches_any_shared_pair() {
        let table = assign_groups(vec![ag(&[1, 2], 4), ag(&[3], 2)], 2);
        let p12 = table.partitions_of(AvpId(1))[0];
        let p3 = table.partitions_of(AvpId(3))[0];
        assert_ne!(p12, p3);
        assert_eq!(table.route(&[AvpId(1)]), Route::To(vec![p12]));
        assert_eq!(table.route(&[AvpId(2), AvpId(3)]), {
            let mut t = vec![p12, p3];
            t.sort();
            Route::To(t)
        });
    }

    #[test]
    fn unmatched_view_broadcasts() {
        let table = assign_groups(vec![ag(&[1], 1)], 3);
        assert_eq!(table.route(&[AvpId(99)]), Route::Broadcast);
        assert_eq!(table.route(&[AvpId(99)]).fanout(3), 3);
        assert_eq!(table.route(&[]), Route::Broadcast);
    }

    #[test]
    fn empty_table_broadcasts_everything() {
        let table = PartitionTable::empty(4);
        assert!(table.is_empty());
        assert_eq!(table.route(&[AvpId(0)]), Route::Broadcast);
    }

    #[test]
    fn add_avp_is_idempotent() {
        let mut table = PartitionTable::empty(2);
        table.add_avp(1, AvpId(7));
        table.add_avp(1, AvpId(7));
        assert_eq!(table.partitions_of(AvpId(7)), &[1]);
        assert_eq!(table.members(1), &[AvpId(7)]);
        assert_eq!(table.pair_count(), 1);
    }

    #[test]
    fn known_fraction() {
        let table = assign_groups(vec![ag(&[1, 2], 2)], 2);
        assert_eq!(table.known_fraction(&[AvpId(1), AvpId(9)]), 0.5);
        assert_eq!(table.known_fraction(&[]), 1.0);
    }

    #[test]
    fn route_batch_counts() {
        let table = assign_groups(vec![ag(&[1], 1), ag(&[2], 1)], 2);
        let views = vec![
            vec![AvpId(1)],
            vec![AvpId(2)],
            vec![AvpId(1), AvpId(2)],
            vec![AvpId(42)], // broadcast
        ];
        let stats = route_batch(&table, &views);
        assert_eq!(stats.docs, 4);
        assert_eq!(stats.broadcasts, 1);
        // sends: 1 + 1 + 2 + 2 = 6
        assert_eq!(stats.total_sends, 6);
        assert_eq!(stats.per_machine.iter().sum::<usize>(), 6);
    }

    #[test]
    fn route_into_matches_route_on_mask_path() {
        let table = assign_groups(vec![ag(&[1, 2], 4), ag(&[3], 2), ag(&[4, 5], 1)], 3);
        let mut scratch = RouteScratch::new();
        for view in [
            vec![AvpId(1)],
            vec![AvpId(2), AvpId(3)],
            vec![AvpId(5), AvpId(1), AvpId(3)],
            vec![AvpId(99)],
            vec![],
        ] {
            let legacy = table.route(&view);
            match table.route_into(&view, &mut scratch) {
                RouteOutcome::Broadcast => assert!(legacy.is_broadcast(), "{view:?}"),
                RouteOutcome::Matched => {
                    assert_eq!(legacy, Route::To(scratch.targets().to_vec()), "{view:?}")
                }
            }
        }
    }

    #[test]
    fn route_into_matches_route_beyond_mask_width() {
        // m = 70 > 64 disables the bitmask path; the fallback must still
        // agree with route().
        let groups: Vec<AssociationGroup> = (0..70).map(|a| ag(&[a], 1)).collect();
        let table = assign_groups(groups, 70);
        assert!(!table.mask_supported());
        let mut scratch = RouteScratch::new();
        let view = vec![AvpId(69), AvpId(3), AvpId(3), AvpId(12)];
        assert_eq!(table.route_into(&view, &mut scratch), RouteOutcome::Matched);
        assert_eq!(table.route(&view), Route::To(scratch.targets().to_vec()));
        assert_eq!(
            table.route_into(&[AvpId(999)], &mut scratch),
            RouteOutcome::Broadcast
        );
    }

    #[test]
    fn masks_mirror_index() {
        let table = assign_groups(vec![ag(&[1, 2], 4), ag(&[3], 2)], 2);
        assert!(table.mask_supported());
        for id in 0..5u32 {
            let avp = AvpId(id);
            let from_index: u64 = table
                .partitions_of(avp)
                .iter()
                .fold(0, |m, &p| m | 1u64 << p);
            assert_eq!(table.avp_mask(avp), from_index, "pair {id}");
        }
        assert_eq!(
            table.view_mask(&[AvpId(1), AvpId(3)]),
            table.avp_mask(AvpId(1)) | table.avp_mask(AvpId(3))
        );
    }

    #[test]
    fn scratch_cache_roundtrip_and_invalidation() {
        let mut scratch = RouteScratch::new();
        let fp = crate::fingerprint::fingerprint_view([AvpId(1), AvpId(2)].into_iter());
        assert_eq!(scratch.cache_get(fp), None);
        scratch.cache_put(fp, 0b101);
        assert_eq!(scratch.cache_get(fp), Some(0b101));
        scratch.invalidate_cache();
        assert_eq!(scratch.cache_get(fp), None);
    }

    #[test]
    fn set_targets_from_mask_is_sorted_dedup() {
        let mut scratch = RouteScratch::new();
        scratch.set_targets_from_mask(0b1010_0001);
        assert_eq!(scratch.targets(), &[0, 5, 7]);
        scratch.set_targets_from_mask(0);
        assert!(scratch.targets().is_empty());
    }

    #[test]
    fn for_each_target_visits_route() {
        let mut seen = Vec::new();
        Route::To(vec![1, 3]).for_each_target(5, |p| seen.push(p));
        assert_eq!(seen, vec![1, 3]);
        seen.clear();
        Route::Broadcast.for_each_target(3, |p| seen.push(p));
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn more_partitions_than_groups_leaves_spares_empty() {
        let table = assign_groups(vec![ag(&[1], 3)], 4);
        let loaded = (0..4).filter(|&p| table.declared_load(p) > 0).count();
        assert_eq!(loaded, 1);
        // Routing still works and unmatched docs broadcast to all 4.
        assert_eq!(table.route(&[AvpId(5)]).fanout(4), 4);
    }
}

#[cfg(test)]
mod persist_tests {
    use super::*;
    use crate::groups::AssociationGroup;

    fn ag(avps: &[u32], load: usize) -> AssociationGroup {
        AssociationGroup {
            avps: avps.iter().map(|&a| AvpId(a)).collect(),
            load,
        }
    }

    #[test]
    fn export_import_preserves_routing() {
        let table = assign_groups(vec![ag(&[1, 2], 10), ag(&[3], 5), ag(&[4, 5, 6], 8)], 3);
        let text = table.export().to_json();
        let reread = ssj_json::parse(&text).unwrap();
        let table2 = PartitionTable::import(&reread).unwrap();
        assert_eq!(table2.m(), table.m());
        for id in 0..8u32 {
            assert_eq!(
                table2.partitions_of(AvpId(id)),
                table.partitions_of(AvpId(id)),
                "pair {id}"
            );
        }
        for p in 0..3 {
            assert_eq!(table2.declared_load(p), table.declared_load(p));
        }
        // Routing behaves identically, including broadcasts.
        assert_eq!(
            table2.route(&[AvpId(1), AvpId(4)]),
            table.route(&[AvpId(1), AvpId(4)])
        );
        assert_eq!(table2.route(&[AvpId(99)]), Route::Broadcast);
    }

    #[test]
    fn import_rejects_malformed_tables() {
        for bad in [
            "{}",
            r#"{"m":0,"partitions":[]}"#,
            r#"{"m":2,"partitions":[]}"#,
            r#"{"m":1,"partitions":[{"avps":[1]}]}"#,
            r#"{"m":1,"partitions":[{"load":1,"avps":[-3]}]}"#,
        ] {
            let v = ssj_json::parse(bad).unwrap();
            assert!(PartitionTable::import(&v).is_err(), "{bad}");
        }
    }
}
