//! # ssj-partition — partitioning schema-free document streams
//!
//! The partitioning half of the paper: the Association-Groups algorithm
//! (§IV) plus the two competitors it is evaluated against (set cover and
//! disjoint sets, §VII-A), attribute-value expansion for low value variety
//! (§VI-B), the Merger's consolidation of locally computed groups (§IV-A),
//! and the quality metrics / adaptation thresholds of §VI-A and §VII-C.
//!
//! ```
//! use ssj_partition::{AgPartitioner, Partitioner};
//! use ssj_json::{Dictionary, Scalar};
//!
//! let dict = Dictionary::new();
//! let mut avp = |a: &str, v: i64| dict.intern(a, Scalar::Int(v)).avp;
//! // Fig. 3: four documents, three association groups.
//! let views = vec![
//!     vec![avp("A", 2), avp("B", 3), avp("C", 7)],
//!     vec![avp("A", 7), avp("B", 3), avp("C", 4)],
//!     vec![avp("D", 13)],
//!     vec![avp("A", 7), avp("C", 4)],
//! ];
//! let table = AgPartitioner.create(&views, 2);
//! assert!(!table.route(&views[0]).is_broadcast());
//! ```

#![warn(missing_docs)]

pub mod ag;
pub mod ds;
pub mod expansion;
pub mod fingerprint;
pub mod groups;
pub mod hashpart;
pub mod incremental;
pub mod merger;
pub mod parallel;
pub mod partitions;
pub mod quality;
pub mod sc;

pub use ag::AgPartitioner;
pub use ds::{component_count, DsPartitioner, UnionFind};
pub use expansion::{batch_views, Expansion};
pub use fingerprint::{fingerprint_docs, fingerprint_view, Fp128};
pub use groups::{
    association_groups, association_groups_from, equivalence_groups, AssociationGroup,
    EquivalenceGroup, View,
};
pub use hashpart::HashPartitioner;
pub use incremental::{GroupIndex, IndexStats};
pub use merger::{consolidate, merge_and_assign};
pub use parallel::{association_groups_parallel, association_groups_sharded};
pub use partitions::{
    assign_groups, route_batch, PartitionTable, Route, RouteOutcome, RouteScratch, RoutingStats,
};
pub use quality::{gini, RepartitionPolicy, UnseenTracker, WindowQuality};
pub use sc::ScPartitioner;

/// A partitioning algorithm: turn one batch of document views into `m`
/// partitions.
pub trait Partitioner {
    /// Short display name ("AG", "SC", "DS").
    fn name(&self) -> &'static str;
    /// Create the `m` partitions from the batch.
    fn create(&self, views: &[View], m: usize) -> PartitionTable;
}

/// The three partitioners of the evaluation, selectable by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionerKind {
    /// Association groups (the paper's approach).
    Ag,
    /// Set cover (competitor).
    Sc,
    /// Disjoint sets (competitor).
    Ds,
    /// Per-pair hash partitioning (ablation baseline, §II related work;
    /// not part of the paper's AG/SC/DS comparison).
    Hash,
}

impl PartitionerKind {
    /// The paper's three competitors, in presentation order. The hash
    /// baseline is excluded here (the evaluation compares AG/SC/DS); use
    /// [`PartitionerKind::with_baselines`] to include it.
    pub fn all() -> [PartitionerKind; 3] {
        [
            PartitionerKind::Ag,
            PartitionerKind::Sc,
            PartitionerKind::Ds,
        ]
    }

    /// All partitioners including the hash ablation baseline.
    pub fn with_baselines() -> [PartitionerKind; 4] {
        [
            PartitionerKind::Ag,
            PartitionerKind::Sc,
            PartitionerKind::Ds,
            PartitionerKind::Hash,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PartitionerKind::Ag => "AG",
            PartitionerKind::Sc => "SC",
            PartitionerKind::Ds => "DS",
            PartitionerKind::Hash => "HASH",
        }
    }

    /// Create partitions with the selected algorithm.
    pub fn create(self, views: &[View], m: usize) -> PartitionTable {
        match self {
            PartitionerKind::Ag => AgPartitioner.create(views, m),
            PartitionerKind::Sc => ScPartitioner.create(views, m),
            PartitionerKind::Ds => DsPartitioner.create(views, m),
            PartitionerKind::Hash => HashPartitioner.create(views, m),
        }
    }
}

impl std::str::FromStr for PartitionerKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "ag" => Ok(PartitionerKind::Ag),
            "sc" => Ok(PartitionerKind::Sc),
            "ds" => Ok(PartitionerKind::Ds),
            "hash" => Ok(PartitionerKind::Hash),
            other => Err(format!("unknown partitioner '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_json::Scalar;

    #[test]
    fn kind_roundtrip() {
        for k in PartitionerKind::with_baselines() {
            let parsed: PartitionerKind = k.name().parse().unwrap();
            assert_eq!(parsed, k);
        }
        assert!("xx".parse::<PartitionerKind>().is_err());
    }

    #[test]
    fn all_partitioners_cover_creation_batch() {
        let dict = ssj_json::Dictionary::new();
        let avp = |a: &str, v: i64| dict.intern(a, Scalar::Int(v)).avp;
        let views = vec![
            vec![avp("a", 1), avp("b", 2)],
            vec![avp("b", 2), avp("c", 3)],
            vec![avp("d", 4)],
        ];
        for kind in PartitionerKind::all() {
            let table = kind.create(&views, 2);
            for v in &views {
                assert!(
                    !table.route(v).is_broadcast(),
                    "{} broadcasts a creation-batch view",
                    kind.name()
                );
            }
        }
    }
}
