//! Hash partitioning — the related-work baseline of §II.
//!
//! The classic approach the paper argues against: every attribute-value
//! pair is assigned to machine `hash(pair) mod m`, and a document is sent to
//! the machine of each of its pairs. Two documents sharing a pair always
//! meet at that pair's machine, so the join stays exact, but:
//!
//! * **replication** equals the number of distinct machines hit by a
//!   document's pairs — close to `min(|d|, m)` for documents with several
//!   attributes, far above AG's;
//! * **skew** is untreated: one hot pair (a popular `Severity` value, a
//!   heavy-hitter user) pins its entire traffic to a single machine.
//!
//! Included as an ablation baseline; the paper's evaluation compares AG
//! against SC and DS only.

use crate::groups::View;
use crate::partitions::PartitionTable;
use crate::Partitioner;
use ssj_json::hash::hash_u64;
use ssj_json::FxHashSet;

/// Stateless per-pair hash partitioning.
#[derive(Debug, Clone, Copy, Default)]
pub struct HashPartitioner;

impl HashPartitioner {
    /// The machine a pair hashes to.
    #[inline]
    pub fn machine(avp: ssj_json::AvpId, m: usize) -> u32 {
        (hash_u64(avp.0 as u64) % m as u64) as u32
    }
}

impl Partitioner for HashPartitioner {
    fn name(&self) -> &'static str {
        "HASH"
    }

    fn create(&self, views: &[View], m: usize) -> PartitionTable {
        assert!(m > 0);
        let mut table = PartitionTable::empty(m);
        let mut seen: FxHashSet<ssj_json::AvpId> = FxHashSet::default();
        for view in views {
            for &avp in view {
                if seen.insert(avp) {
                    table.add_avp(Self::machine(avp, m), avp);
                }
            }
        }
        // Declared loads: documents per machine under pure hash routing.
        for view in views {
            let mut targets: Vec<u32> = view.iter().map(|&a| Self::machine(a, m)).collect();
            targets.sort_unstable();
            targets.dedup();
            for t in targets {
                table.bump_load(t, 1);
            }
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_json::{AvpId, Dictionary, Scalar};

    fn views(dict: &Dictionary, specs: &[&[(&str, i64)]]) -> Vec<View> {
        specs
            .iter()
            .map(|doc| {
                doc.iter()
                    .map(|&(a, v)| dict.intern(a, Scalar::Int(v)).avp)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn pair_machine_is_stable() {
        let m = HashPartitioner::machine(AvpId(7), 4);
        assert_eq!(m, HashPartitioner::machine(AvpId(7), 4));
        assert!(m < 4);
    }

    #[test]
    fn shared_pairs_colocate() {
        let dict = Dictionary::new();
        let vs = views(
            &dict,
            &[&[("a", 1), ("b", 2)], &[("a", 1), ("c", 3)], &[("d", 4)]],
        );
        let table = HashPartitioner.create(&vs, 3);
        for (i, a) in vs.iter().enumerate() {
            for b in &vs[i + 1..] {
                if !a.iter().any(|p| b.contains(p)) {
                    continue;
                }
                let ta = table.route(a).targets(3);
                let tb = table.route(b).targets(3);
                assert!(ta.iter().any(|t| tb.contains(t)));
            }
        }
    }

    #[test]
    fn replication_grows_with_document_width() {
        // A wide document hits many machines — the pathology AG avoids by
        // grouping co-occurring pairs onto one partition.
        let dict = Dictionary::new();
        let wide: View = (0..32i64)
            .map(|i| dict.intern(&format!("k{i}"), Scalar::Int(i)).avp)
            .collect();
        let table = HashPartitioner.create(std::slice::from_ref(&wide), 8);
        let fanout = table.route(&wide).fanout(8);
        assert!(fanout >= 6, "wide doc fanout only {fanout}");
    }

    #[test]
    fn hot_pair_pins_to_one_machine() {
        let dict = Dictionary::new();
        // 50 documents all carrying the same hot pair plus a unique one.
        let hot = dict.intern("sev", Scalar::Str("W".into())).avp;
        let vs: Vec<View> = (0..50i64)
            .map(|i| vec![hot, dict.intern("id", Scalar::Int(i)).avp])
            .collect();
        let table = HashPartitioner.create(&vs, 4);
        let stats = crate::partitions::route_batch(&table, &vs);
        let hot_machine = HashPartitioner::machine(hot, 4) as usize;
        assert_eq!(
            stats.per_machine[hot_machine], 50,
            "every document lands on the hot pair's machine: {stats:?}"
        );
    }

    #[test]
    fn empty_views() {
        let table = HashPartitioner.create(&[], 2);
        assert!(table.is_empty());
    }
}
