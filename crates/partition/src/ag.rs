//! The paper's Association-Groups partitioner (AG, §IV).

use crate::groups::{association_groups, View};
use crate::partitions::{assign_groups, PartitionTable};
use crate::Partitioner;

/// Association-groups partitioning: find association groups (Algorithm 1),
/// then place them greedily by load onto the `m` partitions.
#[derive(Debug, Clone, Copy, Default)]
pub struct AgPartitioner;

impl Partitioner for AgPartitioner {
    fn name(&self) -> &'static str {
        "AG"
    }

    fn create(&self, views: &[View], m: usize) -> PartitionTable {
        assign_groups(association_groups(views), m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitions::Route;
    use ssj_json::{AvpId, Dictionary, FxHashSet, Scalar};

    fn views(dict: &Dictionary, specs: &[&[(&str, i64)]]) -> Vec<View> {
        specs
            .iter()
            .map(|doc| {
                doc.iter()
                    .map(|&(a, v)| dict.intern(a, Scalar::Int(v)).avp)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn fig3_groups_spread_over_partitions() {
        let dict = Dictionary::new();
        let vs = views(
            &dict,
            &[
                &[("A", 2), ("B", 3), ("C", 7)],
                &[("A", 7), ("B", 3), ("C", 4)],
                &[("D", 13)],
                &[("A", 7), ("C", 4)],
            ],
        );
        let table = AgPartitioner.create(&vs, 2);
        // Three association groups over two partitions; every view routes
        // somewhere concrete (no broadcasts on the creation batch).
        for v in &vs {
            assert!(!table.route(v).is_broadcast());
        }
        // Partitions have disjoint pair sets for AG.
        let mut seen: FxHashSet<AvpId> = FxHashSet::default();
        for p in 0..2 {
            for &avp in table.members(p) {
                assert!(seen.insert(avp));
            }
        }
    }

    #[test]
    fn joinable_views_share_a_machine() {
        // Two views sharing a pair must overlap in their route targets —
        // the correctness invariant of the whole partitioning scheme.
        let dict = Dictionary::new();
        let vs = views(
            &dict,
            &[
                &[("u", 1), ("s", 10)],
                &[("u", 1), ("m", 2)],
                &[("u", 2), ("s", 20)],
                &[("u", 2), ("s", 10)],
                &[("ip", 7), ("s", 10)],
            ],
        );
        let table = AgPartitioner.create(&vs, 3);
        for (i, a) in vs.iter().enumerate() {
            for b in &vs[i + 1..] {
                let shares = a.iter().any(|p| b.contains(p));
                if !shares {
                    continue;
                }
                let ta = table.route(a).targets(3);
                let tb = table.route(b).targets(3);
                assert!(
                    ta.iter().any(|t| tb.contains(t)),
                    "views {a:?} and {b:?} share a pair but no machine"
                );
            }
        }
    }

    #[test]
    fn single_partition_gets_everything() {
        let dict = Dictionary::new();
        let vs = views(&dict, &[&[("a", 1)], &[("b", 2)]]);
        let table = AgPartitioner.create(&vs, 1);
        for v in &vs {
            assert_eq!(table.route(v), Route::To(vec![0]));
        }
    }
}
