//! Incremental association-group maintenance.
//!
//! The batch path of [`crate::groups`] recomputes everything from scratch:
//! every view is rescanned into per-pair docsets, every docset is re-hashed
//! into equivalence groups, and only then does Algorithm 1's implies-merge
//! run. A [`GroupIndex`] keeps the first two stages — the expensive,
//! population-proportional ones — *persistent*: it maintains per-pair
//! docsets and a fingerprint-keyed equivalence grouping across window
//! deltas (new and expired views), and on [`GroupIndex::association_groups`]
//! re-derives only the groups whose member docsets actually changed. The
//! implies-merge scan is shared verbatim with the batch path
//! ([`crate::groups::association_groups_from`]), so the derived association
//! groups — and
//! the [`assign_groups`] table built from them — are **identical** to a
//! from-scratch batch computation over the live views (the differential
//! proptests in `tests/incremental_groups.rs` hold it to that).
//!
//! Document ids are assigned monotonically at [`GroupIndex::push`] time.
//! They differ from the 0-based batch indices, but the relabeling is
//! order-preserving, and association groups / partition tables carry no
//! document ids — only equivalence groups do, and those are equal modulo
//! the relabeling.

use crate::fingerprint::{fingerprint_docs, Fp128};
use crate::groups::{merge_refs, AssociationGroup, EgRef, EquivalenceGroup, View};
use crate::partitions::{assign_groups, PartitionTable};
use ssj_json::{AvpId, FxHashMap, FxHashSet};

/// One pair's live docset plus its incrementally maintained fingerprint —
/// adjusted in O(1) per push/expire, never recomputed by rescanning.
#[derive(Debug, Clone, Default)]
struct DocSet {
    /// Sorted ids of the live documents containing the pair.
    docs: Vec<u32>,
    /// `fingerprint_docs(&docs)`, kept current by add/remove.
    fp: Fp128,
}

/// One cached equivalence group: the pairs currently sharing a docset.
#[derive(Debug, Clone)]
struct Slot {
    /// Fingerprint of the members' common docset at last derive.
    fp: Fp128,
    /// Member pairs, kept sorted.
    avps: Vec<AvpId>,
}

/// Counters describing how much work the index actually did — surfaced as
/// the `group_deltas` / `groups_reused` metrics of the PartitionCreator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Views inserted over the index's lifetime.
    pub pushed: u64,
    /// Views expired over the index's lifetime.
    pub expired: u64,
    /// Derive calls.
    pub derives: u64,
    /// Pairs re-fingerprinted and re-grouped by the last derive.
    pub refreshed_avps: u64,
    /// Equivalence groups reused untouched by the last derive.
    pub reused_groups: u64,
}

/// A persistent docset-fingerprint index over a changing set of views.
///
/// ```
/// use ssj_partition::GroupIndex;
/// use ssj_json::AvpId;
///
/// let mut idx = GroupIndex::new();
/// let a = idx.push(&[AvpId(1), AvpId(2)]);
/// idx.push(&[AvpId(2), AvpId(3)]);
/// let before = idx.association_groups();
/// idx.expire(a);
/// let after = idx.association_groups();
/// assert_ne!(before, after);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GroupIndex {
    /// Next document id to hand out.
    next_doc: u32,
    /// Live documents: id → deduplicated view.
    live: FxHashMap<u32, Vec<AvpId>>,
    /// Pair → its live docset and fingerprint.
    docsets: FxHashMap<AvpId, DocSet>,
    /// Pairs whose docset changed since the last derive.
    dirty: FxHashSet<AvpId>,
    /// Fingerprint → slot indices (collisions resolved by docset equality).
    buckets: FxHashMap<Fp128, Vec<u32>>,
    /// Cached equivalence groups; `None` entries are free slots.
    slots: Vec<Option<Slot>>,
    /// Free slot indices, reused before growing `slots`.
    free: Vec<u32>,
    /// Pair → slot it currently belongs to.
    avp_slot: FxHashMap<AvpId, u32>,
    stats: IndexStats,
}

impl GroupIndex {
    /// An empty index.
    pub fn new() -> Self {
        GroupIndex::default()
    }

    /// Number of live views.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True when no view is live.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Work counters (see [`IndexStats`]).
    pub fn stats(&self) -> IndexStats {
        self.stats
    }

    /// Approximate heap footprint in bytes: live views, docsets, the
    /// fingerprint buckets, and the cached group slots (hash maps counted
    /// at entry size, ignoring table load factor). Surfaced by the
    /// PartitionCreator's `index_bytes` gauge so the out-of-core layer
    /// (DESIGN.md §4i) can show the incremental index stays compact —
    /// which is why pane expiry frees it in place instead of spilling it.
    pub fn approx_bytes(&self) -> usize {
        let entry = |payload: usize| payload + std::mem::size_of::<u64>();
        let live: usize = self
            .live
            .values()
            .map(|v| {
                entry(v.len() * std::mem::size_of::<AvpId>() + std::mem::size_of::<Vec<AvpId>>())
            })
            .sum();
        let docsets: usize = self
            .docsets
            .values()
            .map(|d| entry(d.docs.len() * 4 + std::mem::size_of::<DocSet>()))
            .sum();
        let buckets: usize = self
            .buckets
            .values()
            .map(|v| entry(v.len() * 4 + std::mem::size_of::<Vec<u32>>()))
            .sum();
        let slots: usize = self
            .slots
            .iter()
            .map(|s| {
                std::mem::size_of::<Option<Slot>>()
                    + s.as_ref()
                        .map_or(0, |s| s.avps.len() * std::mem::size_of::<AvpId>())
            })
            .sum();
        let avp_slot = self.avp_slot.len() * entry(8);
        std::mem::size_of::<GroupIndex>()
            + live
            + docsets
            + buckets
            + slots
            + avp_slot
            + self.dirty.len() * entry(0)
            + self.free.len() * 4
    }

    /// Insert one view; returns the id to later [`expire`](Self::expire) it
    /// with. Duplicate pairs within the view count once (as in the batch
    /// path). Ids are handed out in ascending order.
    pub fn push(&mut self, view: &[AvpId]) -> u32 {
        if self.next_doc == u32::MAX {
            self.compact();
        }
        let id = self.next_doc;
        self.next_doc += 1;
        let mut deduped: Vec<AvpId> = Vec::with_capacity(view.len());
        for &avp in view {
            if deduped.contains(&avp) {
                continue;
            }
            deduped.push(avp);
            // Ids are monotone, so appending keeps the docset sorted.
            let ds = self.docsets.entry(avp).or_default();
            ds.docs.push(id);
            ds.fp.add_doc(id);
            self.dirty.insert(avp);
        }
        self.live.insert(id, deduped);
        self.stats.pushed += 1;
        id
    }

    /// Remove the view with `id`; returns `false` if it was not live.
    pub fn expire(&mut self, id: u32) -> bool {
        let Some(view) = self.live.remove(&id) else {
            return false;
        };
        for avp in view {
            if let Some(ds) = self.docsets.get_mut(&avp) {
                if let Ok(pos) = ds.docs.binary_search(&id) {
                    ds.docs.remove(pos);
                    ds.fp.remove_doc(id);
                }
                if ds.docs.is_empty() {
                    self.docsets.remove(&avp);
                }
            }
            self.dirty.insert(avp);
        }
        self.stats.expired += 1;
        true
    }

    /// Bring the cached equivalence grouping up to date with the deltas
    /// applied since the last derive. Only dirty pairs are re-fingerprinted
    /// and re-bucketed; groups with no dirty member are untouched.
    fn refresh(&mut self) {
        if self.dirty.is_empty() {
            return;
        }
        // Deterministic processing order (the output is sorted anyway, but
        // slot allocation order should not depend on hash iteration).
        let mut dirty: Vec<AvpId> = self.dirty.drain().collect();
        dirty.sort_unstable();
        self.stats.refreshed_avps = dirty.len() as u64;

        // Slots a dirty pair left or entered; everything else is reused.
        let mut touched: FxHashSet<u32> = FxHashSet::default();

        // Phase 1: detach every dirty pair from its slot, so that all pairs
        // still sitting in a slot have *unchanged* docsets and any slot
        // representative can stand in for the slot's docset.
        for &avp in &dirty {
            let Some(si) = self.avp_slot.remove(&avp) else {
                continue;
            };
            touched.insert(si);
            let slot = self.slots[si as usize]
                .as_mut()
                .expect("avp_slot points at a live slot");
            let pos = slot
                .avps
                .binary_search(&avp)
                .expect("pair listed in its slot");
            slot.avps.remove(pos);
            if slot.avps.is_empty() {
                let fp = slot.fp;
                self.slots[si as usize] = None;
                self.free.push(si);
                let bucket = self.buckets.get_mut(&fp).expect("slot's bucket exists");
                bucket.retain(|&x| x != si);
                if bucket.is_empty() {
                    self.buckets.remove(&fp);
                }
            }
        }

        // Phase 2: re-insert dirty pairs that still occur somewhere.
        for &avp in &dirty {
            let Some(ds) = self.docsets.get(&avp) else {
                continue; // fully expired
            };
            // The stored fingerprint is already current — the whole point
            // of maintaining it per delta.
            let fp = ds.fp;
            let bucket = self.buckets.entry(fp).or_default();
            // Equality fallback on fingerprint collision: compare against
            // each candidate slot's representative docset.
            let found = bucket.iter().copied().find(|&si| {
                let slot = self.slots[si as usize].as_ref().expect("bucket slot live");
                let rep = slot.avps[0];
                self.docsets.get(&rep).map(|r| r.docs.as_slice()) == Some(ds.docs.as_slice())
            });
            match found {
                Some(si) => {
                    let slot = self.slots[si as usize].as_mut().expect("bucket slot live");
                    let pos = slot.avps.binary_search(&avp).unwrap_err();
                    slot.avps.insert(pos, avp);
                    self.avp_slot.insert(avp, si);
                    touched.insert(si);
                }
                None => {
                    let slot = Slot {
                        fp,
                        avps: vec![avp],
                    };
                    let si = match self.free.pop() {
                        Some(si) => {
                            self.slots[si as usize] = Some(slot);
                            si
                        }
                        None => {
                            self.slots.push(Some(slot));
                            (self.slots.len() - 1) as u32
                        }
                    };
                    bucket.push(si);
                    self.avp_slot.insert(avp, si);
                    touched.insert(si);
                }
            }
        }
        // Reused = live slots no dirty pair left or entered — counted from
        // the touched set, O(dirty) instead of rescanning every member.
        let live_slots = (self.slots.len() - self.free.len()) as u64;
        let touched_live = touched
            .iter()
            .filter(|&&si| self.slots[si as usize].is_some())
            .count() as u64;
        self.stats.reused_groups = live_slots - touched_live;
    }

    /// The current equivalence groups, in the same deterministic order as
    /// the batch [`equivalence_groups`](crate::groups::equivalence_groups)
    /// (document ids are the index's own, see the module docs).
    pub fn equivalence_groups(&mut self) -> Vec<EquivalenceGroup> {
        self.refresh();
        let mut out: Vec<EquivalenceGroup> = self
            .slots
            .iter()
            .flatten()
            .map(|slot| EquivalenceGroup {
                avps: slot.avps.clone(),
                docs: self.docsets[&slot.avps[0]].docs.clone(),
            })
            .collect();
        out.sort_by(|a, b| a.docs.cmp(&b.docs).then_with(|| a.avps.cmp(&b.avps)));
        out
    }

    /// Derive the association groups of the live views (Algorithm 1 over
    /// the incrementally maintained equivalence groups).
    pub fn association_groups(&mut self) -> Vec<AssociationGroup> {
        self.refresh();
        self.stats.derives += 1;
        // Borrow each slot's pairs and its representative's docset straight
        // out of the index — a derive clones nothing.
        let mut refs: Vec<EgRef> = self
            .slots
            .iter()
            .flatten()
            .map(|slot| EgRef {
                avps: &slot.avps,
                docs: &self.docsets[&slot.avps[0]].docs,
            })
            .collect();
        merge_refs(&mut refs)
    }

    /// Derive association groups and place them onto `m` partitions —
    /// identical to `assign_groups(association_groups(live_views), m)`.
    pub fn derive_table(&mut self, m: usize) -> PartitionTable {
        assign_groups(self.association_groups(), m)
    }

    /// The live views in ascending document-id order — what a from-scratch
    /// batch computation over the index's population would be given.
    pub fn live_views(&self) -> Vec<View> {
        let mut ids: Vec<u32> = self.live.keys().copied().collect();
        ids.sort_unstable();
        ids.iter().map(|id| self.live[id].clone()).collect()
    }

    /// Renumber live documents to 0..n when the id space is exhausted.
    /// Ordering is preserved, so group derivation is unaffected.
    fn compact(&mut self) {
        let mut ids: Vec<u32> = self.live.keys().copied().collect();
        ids.sort_unstable();
        let remap: FxHashMap<u32, u32> = ids
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new as u32))
            .collect();
        self.live = std::mem::take(&mut self.live)
            .into_iter()
            .map(|(old, view)| (remap[&old], view))
            .collect();
        for ds in self.docsets.values_mut() {
            for d in ds.docs.iter_mut() {
                *d = remap[d];
            }
            // Monotone remap keeps docsets sorted.
            ds.fp = fingerprint_docs(&ds.docs);
        }
        // Fingerprints are functions of the ids: every group changes.
        for (&avp, _) in self.docsets.iter() {
            self.dirty.insert(avp);
        }
        self.next_doc = ids.len() as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::association_groups;
    use ssj_json::{Dictionary, Scalar};

    fn views(dict: &Dictionary, specs: &[&[(&str, i64)]]) -> Vec<View> {
        specs
            .iter()
            .map(|doc| {
                doc.iter()
                    .map(|&(a, v)| dict.intern(a, Scalar::Int(v)).avp)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn matches_batch_on_fig3() {
        let dict = Dictionary::new();
        let vs = views(
            &dict,
            &[
                &[("A", 2), ("B", 3), ("C", 7)],
                &[("A", 7), ("B", 3), ("C", 4)],
                &[("D", 13)],
                &[("A", 7), ("C", 4)],
            ],
        );
        let mut idx = GroupIndex::new();
        for v in &vs {
            idx.push(v);
        }
        assert_eq!(idx.association_groups(), association_groups(&vs));
    }

    #[test]
    fn expiry_matches_batch_over_remaining_views() {
        let dict = Dictionary::new();
        let vs = views(
            &dict,
            &[
                &[("a", 1), ("b", 1)],
                &[("b", 1), ("c", 1)],
                &[("c", 1), ("a", 1)],
                &[("d", 9)],
            ],
        );
        let mut idx = GroupIndex::new();
        let ids: Vec<u32> = vs.iter().map(|v| idx.push(v)).collect();
        idx.expire(ids[1]);
        let remaining: Vec<View> = vec![vs[0].clone(), vs[2].clone(), vs[3].clone()];
        assert_eq!(idx.association_groups(), association_groups(&remaining));
        assert!(!idx.expire(ids[1]), "double expiry reports false");
    }

    #[test]
    fn interleaved_deltas_and_derives() {
        let dict = Dictionary::new();
        let vs = views(
            &dict,
            &[
                &[("x", 1), ("y", 1), ("z", 1)],
                &[("x", 1), ("y", 1)],
                &[("x", 1)],
                &[("w", 2), ("x", 1)],
            ],
        );
        let mut idx = GroupIndex::new();
        let a = idx.push(&vs[0]);
        idx.push(&vs[1]);
        assert_eq!(idx.association_groups(), association_groups(&vs[0..2]));
        idx.push(&vs[2]);
        idx.expire(a);
        idx.push(&vs[3]);
        let live: Vec<View> = vec![vs[1].clone(), vs[2].clone(), vs[3].clone()];
        assert_eq!(idx.association_groups(), association_groups(&live));
        // Tables derived from identical groups are identical.
        assert_eq!(
            idx.derive_table(3),
            crate::assign_groups(association_groups(&live), 3)
        );
    }

    #[test]
    fn duplicate_pairs_in_view_count_once() {
        let mut idx = GroupIndex::new();
        let p = AvpId(5);
        idx.push(&[p, p, p]);
        let egs = idx.equivalence_groups();
        assert_eq!(egs.len(), 1);
        assert_eq!(egs[0].docs.len(), 1);
    }

    #[test]
    fn empty_index() {
        let mut idx = GroupIndex::new();
        assert!(idx.is_empty());
        assert!(idx.association_groups().is_empty());
        assert!(idx.equivalence_groups().is_empty());
    }

    #[test]
    fn stats_track_reuse() {
        let mut idx = GroupIndex::new();
        idx.push(&[AvpId(1), AvpId(2)]);
        idx.push(&[AvpId(3)]);
        idx.association_groups();
        // A delta touching only pair 4 leaves both existing groups intact.
        idx.push(&[AvpId(4)]);
        idx.association_groups();
        let s = idx.stats();
        assert_eq!(s.pushed, 3);
        assert_eq!(s.refreshed_avps, 1);
        assert_eq!(s.reused_groups, 2);
        assert_eq!(s.derives, 2);
    }
}
