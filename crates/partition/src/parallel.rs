//! Parallel association-group construction.
//!
//! Partition (re)creation is the one stop-the-world moment of the pipeline:
//! the PartitionCreator must scan its whole window share into docsets,
//! fingerprint them, and run Algorithm 1's implies-merge before the Merger
//! can deploy a new table. This module shards the three data-parallel
//! stages — docset building, fingerprinting, and the implies scan — across
//! a small worker pool and merges the partial results in a fixed shard
//! order, so the output is **byte-identical** to the sequential
//! [`association_groups`]: same groups, same member order, same group
//! order (the differential proptest in `tests/incremental_groups.rs`
//! enforces it).
//!
//! The implies scan parallelizes because of a property of Algorithm 1
//! proved at [`sequential_absorbers`](crate::groups::sequential_absorbers):
//! every group is absorbed by its *smallest* implying group, and that group
//! is itself never absorbed. Workers can therefore test `implies(i, j)`
//! over disjoint shards of `i` without seeing each other's absorption
//! state; an elementwise minimum over the partial absorber tables
//! reconstructs exactly the table the sequential scan produces.

use crate::fingerprint::{fingerprint_docs, Fp128};
use crate::groups::{
    assemble_groups, association_groups, group_by_docset_fp, implies_ref, sort_egs_for_merge,
    AssociationGroup, DocIndex, EgRef, EquivalenceGroup, View, NOT_ABSORBED,
};
use ssj_json::{AvpId, FxHashMap, FxHashSet};

/// Below this many views the sequential path wins: thread spawning costs
/// more than it saves.
const PARALLEL_THRESHOLD: usize = 256;

/// [`association_groups`] sharded across `workers` threads. Output is
/// byte-identical to the sequential path; falls back to it for one worker
/// or small batches.
pub fn association_groups_parallel(views: &[View], workers: usize) -> Vec<AssociationGroup> {
    if workers <= 1 || views.len() < PARALLEL_THRESHOLD {
        return association_groups(views);
    }
    association_groups_sharded(views, workers)
}

/// The sharded build proper, with no size cutoff — exposed so the
/// differential tests can force the parallel path on small inputs.
pub fn association_groups_sharded(views: &[View], workers: usize) -> Vec<AssociationGroup> {
    if views.is_empty() {
        return Vec::new();
    }
    let workers = workers.clamp(2, views.len().max(2));
    let chunk = views.len().div_ceil(workers);

    // Stage 1: per-shard docsets over contiguous view ranges. Documents of
    // shard w get global indices base..base+len, so concatenating per-pair
    // docsets in shard order yields globally sorted docsets.
    let (tx, rx) = crossbeam::channel::unbounded();
    std::thread::scope(|s| {
        for (w, slice) in views.chunks(chunk).enumerate() {
            let tx = tx.clone();
            s.spawn(move || {
                let base = (w * chunk) as u32;
                let mut local: FxHashMap<AvpId, Vec<u32>> = FxHashMap::default();
                let mut seen: FxHashSet<AvpId> = FxHashSet::default();
                for (i, view) in slice.iter().enumerate() {
                    seen.clear();
                    for &avp in view {
                        if seen.insert(avp) {
                            local.entry(avp).or_default().push(base + i as u32);
                        }
                    }
                }
                let _ = tx.send((w, local));
            });
        }
    });
    drop(tx);
    let mut shards: Vec<(usize, FxHashMap<AvpId, Vec<u32>>)> = rx.iter().collect();
    shards.sort_by_key(|(w, _)| *w);
    let mut docsets: FxHashMap<AvpId, Vec<u32>> = FxHashMap::default();
    for (_, local) in shards {
        for (avp, mut docs) in local {
            match docsets.entry(avp) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(docs);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    e.get_mut().append(&mut docs);
                }
            }
        }
    }

    // Stage 2: fingerprint the docsets in parallel, group centrally (the
    // grouping itself is a tiny hash-map pass over 16-byte keys).
    let entries: Vec<(AvpId, Vec<u32>)> = docsets.into_iter().collect();
    let fchunk = entries.len().div_ceil(workers).max(1);
    let (ftx, frx) = crossbeam::channel::unbounded();
    std::thread::scope(|s| {
        for (w, slice) in entries.chunks(fchunk).enumerate() {
            let ftx = ftx.clone();
            s.spawn(move || {
                let fps: Vec<Fp128> = slice.iter().map(|(_, d)| fingerprint_docs(d)).collect();
                let _ = ftx.send((w, fps));
            });
        }
    });
    drop(ftx);
    let mut fps: Vec<(usize, Vec<Fp128>)> = frx.iter().collect();
    fps.sort_by_key(|(w, _)| *w);
    let fps: Vec<Fp128> = fps.into_iter().flat_map(|(_, v)| v).collect();
    let egs: Vec<EquivalenceGroup> = group_by_docset_fp(
        entries
            .into_iter()
            .zip(fps)
            .map(|((avp, docs), fp)| (avp, docs, fp)),
    );

    // Stage 3: the implies scan over disjoint shards of the absorbing side.
    let mut refs: Vec<EgRef> = egs
        .iter()
        .map(|g| EgRef {
            avps: &g.avps,
            docs: &g.docs,
        })
        .collect();
    sort_egs_for_merge(&mut refs);
    let by_doc = DocIndex::build(&refs);
    let n = refs.len();
    let achunk = n.div_ceil(workers).max(1);
    let (atx, arx) = crossbeam::channel::unbounded();
    std::thread::scope(|s| {
        let refs = &refs;
        let by_doc = &by_doc;
        for w in 0..workers {
            let atx = atx.clone();
            s.spawn(move || {
                let lo = w * achunk;
                let hi = ((w + 1) * achunk).min(n);
                let mut partial = vec![NOT_ABSORBED; n];
                for i in lo..hi {
                    let Some(&first_doc) = refs[i].docs.first() else {
                        continue;
                    };
                    for &key in by_doc.groups_of(first_doc) {
                        let j = key as u32 as usize;
                        if j > i && implies_ref(&refs[i], &refs[j]) {
                            partial[j] = partial[j].min(i as u32);
                        }
                    }
                }
                let _ = atx.send(partial);
            });
        }
    });
    drop(atx);
    let mut absorber = vec![NOT_ABSORBED; n];
    for partial in arx.iter() {
        for (a, p) in absorber.iter_mut().zip(partial) {
            *a = (*a).min(p);
        }
    }
    assemble_groups(&refs, &absorber)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_json::AvpId;

    /// Deterministic pseudo-random views (same LCG as the proptests).
    fn gen_views(seed: u64, docs: usize, vocab: u32, max_len: usize) -> Vec<View> {
        let mut state = seed | 1;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        (0..docs)
            .map(|_| {
                let len = 1 + (next() as usize) % max_len;
                let mut view: View = (0..len).map(|_| AvpId((next() as u32) % vocab)).collect();
                view.sort_unstable();
                view.dedup();
                view
            })
            .collect()
    }

    #[test]
    fn sharded_equals_sequential() {
        for seed in [1u64, 7, 42, 1234] {
            let views = gen_views(seed, 300, 40, 6);
            let seq = association_groups(&views);
            for workers in [2, 3, 4, 7] {
                assert_eq!(
                    association_groups_sharded(&views, workers),
                    seq,
                    "seed {seed}, {workers} workers"
                );
            }
        }
    }

    #[test]
    fn parallel_falls_back_below_threshold() {
        let views = gen_views(5, 20, 8, 4);
        assert_eq!(
            association_groups_parallel(&views, 4),
            association_groups(&views)
        );
    }

    #[test]
    fn more_workers_than_views() {
        let views = gen_views(9, 5, 6, 3);
        assert_eq!(
            association_groups_sharded(&views, 16),
            association_groups(&views)
        );
    }

    #[test]
    fn empty_input() {
        assert!(association_groups_sharded(&[], 4).is_empty());
    }
}
