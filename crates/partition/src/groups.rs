//! Equivalence and association groups (§IV, Definitions 1–2, Algorithm 1).
//!
//! * An **equivalence group** is a maximal set of attribute-value pairs that
//!   appear in exactly the same set of documents (Definition 1). They are
//!   found by fingerprinting each pair's document set.
//! * `eg_i` **implies** `eg_j` when every document containing `eg_i` also
//!   contains `eg_j` — i.e. `docs(eg_i) ⊆ docs(eg_j)` — while `eg_j` also
//!   occurs alone (Definition 2; strict subset, since equal document sets
//!   would have merged into one equivalence group already).
//! * **Association groups** are built by Algorithm 1: scan the equivalence
//!   groups in ascending document-count order and fold every implied group
//!   into the implying one, removing it so no attribute-value pair lands in
//!   two association groups.
//!
//! The pairwise `implies` scan of Algorithm 1 is quadratic in the number of
//! equivalence groups; since `docs(eg_i) ⊆ docs(eg_j)` requires `eg_j` to
//! contain `eg_i`'s first document, we only test the groups posted under that
//! document in an inverted index — same output, far fewer subset tests.

use ssj_json::{AvpId, FxHashMap, FxHashSet};

/// A borrowed equivalence group: what the merge pipeline actually needs.
/// The batch path borrows from owned [`EquivalenceGroup`]s; the incremental
/// [`GroupIndex`](crate::incremental::GroupIndex) borrows straight from its
/// persistent slots, so a derive never clones a docset.
#[derive(Clone, Copy)]
pub(crate) struct EgRef<'a> {
    pub(crate) avps: &'a [AvpId],
    pub(crate) docs: &'a [u32],
}

/// A *partitioning view* of one document: the attribute-value pair ids used
/// for partition creation and routing. Normally the document's own pairs;
/// under attribute expansion (§VI-B) some are replaced by synthetic pairs.
pub type View = Vec<AvpId>;

/// An equivalence group: pairs sharing one exact document set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivalenceGroup {
    /// The member attribute-value pairs.
    pub avps: Vec<AvpId>,
    /// Sorted ids of the containing documents: batch indices on the batch
    /// path, monotone live-document ids under a
    /// [`GroupIndex`](crate::incremental::GroupIndex).
    pub docs: Vec<u32>,
}

/// An association group: the unit assigned to partitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssociationGroup {
    /// Member pairs; no pair appears in two association groups.
    pub avps: Vec<AvpId>,
    /// Load `l_i` (Algorithm 1, line 13): number of batch documents
    /// containing at least one member pair.
    pub load: usize,
}

/// Per-pair docsets of a batch: `avp → sorted indices of containing views`.
pub(crate) fn collect_docsets(views: &[View]) -> FxHashMap<AvpId, Vec<u32>> {
    let mut docsets: FxHashMap<AvpId, Vec<u32>> = FxHashMap::default();
    let mut seen: FxHashSet<AvpId> = FxHashSet::default();
    for (i, view) in views.iter().enumerate() {
        seen.clear();
        for &avp in view {
            if seen.insert(avp) {
                docsets.entry(avp).or_default().push(i as u32);
            }
        }
    }
    docsets
}

/// Group pairs with identical docsets (`avInD` of Algorithm 1, line 1).
///
/// Keyed by the docset's 128-bit [fingerprint](crate::fingerprint) rather
/// than the docset vector itself, with a full equality comparison against
/// the bucket's existing groups on fingerprint collision — same output,
/// but lookups hash 16 bytes instead of the whole document set and no
/// docset is ever moved or cloned into a map key.
pub(crate) fn group_by_docset(docsets: FxHashMap<AvpId, Vec<u32>>) -> Vec<EquivalenceGroup> {
    group_by_docset_fp(docsets.into_iter().map(|(avp, docs)| {
        let fp = crate::fingerprint::fingerprint_docs(&docs);
        (avp, docs, fp)
    }))
}

/// [`group_by_docset`] over pre-fingerprinted `(avp, docset, fp)` triples —
/// the parallel build computes the fingerprints on worker threads.
pub(crate) fn group_by_docset_fp(
    triples: impl Iterator<Item = (AvpId, Vec<u32>, crate::fingerprint::Fp128)>,
) -> Vec<EquivalenceGroup> {
    use crate::fingerprint::Fp128;
    // fp → indices into `groups`; collisions resolved by docset equality.
    let mut buckets: FxHashMap<Fp128, Vec<u32>> = FxHashMap::default();
    let mut groups: Vec<EquivalenceGroup> = Vec::new();
    for (avp, docs, fp) in triples {
        let bucket = buckets.entry(fp).or_default();
        match bucket.iter().find(|&&gi| groups[gi as usize].docs == docs) {
            Some(&gi) => groups[gi as usize].avps.push(avp),
            None => {
                bucket.push(groups.len() as u32);
                groups.push(EquivalenceGroup {
                    avps: vec![avp],
                    docs,
                });
            }
        }
    }
    for g in &mut groups {
        g.avps.sort();
    }
    // Deterministic order independent of hash-map iteration.
    groups.sort_by(|a, b| a.docs.cmp(&b.docs).then_with(|| a.avps.cmp(&b.avps)));
    groups
}

/// Compute the equivalence groups of a batch of views (Definition 1).
pub fn equivalence_groups(views: &[View]) -> Vec<EquivalenceGroup> {
    group_by_docset(collect_docsets(views))
}

/// `true` when every document containing `a` also contains `b` (and `b`
/// occurs in strictly more documents): Definition 2 on document sets.
pub fn implies(a: &EquivalenceGroup, b: &EquivalenceGroup) -> bool {
    if a.docs.len() >= b.docs.len() {
        return false;
    }
    is_subset(&a.docs, &b.docs)
}

/// [`implies`] over borrowed groups — the form the merge scan uses.
pub(crate) fn implies_ref(a: &EgRef, b: &EgRef) -> bool {
    a.docs.len() < b.docs.len() && is_subset(a.docs, b.docs)
}

/// Subset test over sorted slices: two-pointer when the sizes are
/// comparable, galloping binary search when `big` dwarfs `small` (popular
/// pairs sit in docsets spanning most of the window; walking them linearly
/// for every candidate dominated the merge scan).
fn is_subset(small: &[u32], big: &[u32]) -> bool {
    if big.len() >= 8 * small.len() {
        let mut rest = big;
        for &x in small {
            match rest.binary_search(&x) {
                Ok(pos) => rest = &rest[pos + 1..],
                Err(_) => return false,
            }
        }
        return true;
    }
    let mut j = 0usize;
    for &x in small {
        loop {
            match big.get(j) {
                None => return false,
                Some(&y) if y == x => {
                    j += 1;
                    break;
                }
                Some(&y) if y > x => return false,
                _ => j += 1,
            }
        }
    }
    true
}

/// Algorithm 1: association groups from a batch of views.
pub fn association_groups(views: &[View]) -> Vec<AssociationGroup> {
    association_groups_from(equivalence_groups(views))
}

/// Algorithm 1's implies-merge scan over already-computed equivalence
/// groups. Shared by the batch path, the incremental
/// [`GroupIndex`](crate::incremental::GroupIndex), and the parallel build,
/// so all three produce identical association groups by construction.
pub fn association_groups_from(egs: Vec<EquivalenceGroup>) -> Vec<AssociationGroup> {
    let mut refs: Vec<EgRef> = egs
        .iter()
        .map(|g| EgRef {
            avps: &g.avps,
            docs: &g.docs,
        })
        .collect();
    merge_refs(&mut refs)
}

/// The merge scan over borrowed groups: sort, index, absorb, assemble.
pub(crate) fn merge_refs(refs: &mut [EgRef]) -> Vec<AssociationGroup> {
    sort_egs_for_merge(refs);
    let by_doc = DocIndex::build(refs);
    let absorber = sequential_absorbers(refs, &by_doc);
    assemble_groups(refs, &absorber)
}

/// Sentinel in an absorber table: the group was not absorbed.
pub(crate) const NOT_ABSORBED: u32 = u32::MAX;

/// Algorithm 1 line 3: ascending by document count (determinism: then by
/// contents). The merge scan requires exactly this order. Sorting the
/// 32-byte refs moves no docset data.
pub(crate) fn sort_egs_for_merge(egs: &mut [EgRef]) {
    egs.sort_by(|a, b| {
        a.docs
            .len()
            .cmp(&b.docs.len())
            .then_with(|| a.docs.cmp(b.docs))
            .then_with(|| a.avps.cmp(b.avps))
    });
}

/// Inverted index: document → equivalence groups containing it. Only groups
/// containing `eg_i`'s first document can be implied supersets of `eg_i`.
/// Stored as one sorted vector of packed `doc << 32 | group` keys — a
/// single allocation and an integer sort, against the hash map of per-doc
/// vectors it replaced.
pub(crate) struct DocIndex {
    keys: Vec<u64>,
}

impl DocIndex {
    pub(crate) fn build(egs: &[EgRef]) -> Self {
        let total: usize = egs.iter().map(|eg| eg.docs.len()).sum();
        let mut keys = Vec::with_capacity(total);
        let (mut min_doc, mut max_doc) = (u32::MAX, 0u32);
        for (gi, eg) in egs.iter().enumerate() {
            for &d in eg.docs {
                keys.push(((d as u64) << 32) | gi as u64);
            }
            // Docsets are sorted, so first/last bound the id range.
            if let (Some(&first), Some(&last)) = (eg.docs.first(), eg.docs.last()) {
                min_doc = min_doc.min(first);
                max_doc = max_doc.max(last);
            }
        }
        // Window document ids are near-contiguous (batch indices, or the
        // monotone ids of a tumbling window): a stable counting sort by
        // document beats the comparison sort handily. Keys were pushed in
        // ascending-group order, which the stable scatter preserves — the
        // same order `sort_unstable` on the packed keys yields. Sparse id
        // ranges fall back to the comparison sort.
        let range = (max_doc as usize).saturating_sub(min_doc as usize) + 1;
        if !keys.is_empty() && range <= keys.len().saturating_mul(4) {
            let mut offsets = vec![0u32; range + 1];
            for &k in &keys {
                offsets[((k >> 32) as usize - min_doc as usize) + 1] += 1;
            }
            for i in 1..offsets.len() {
                offsets[i] += offsets[i - 1];
            }
            let mut sorted = vec![0u64; keys.len()];
            for &k in &keys {
                let slot = &mut offsets[(k >> 32) as usize - min_doc as usize];
                sorted[*slot as usize] = k;
                *slot += 1;
            }
            keys = sorted;
        } else {
            keys.sort_unstable();
        }
        DocIndex { keys }
    }

    /// Packed keys of the groups containing `doc`, in ascending group
    /// order; extract the group index with `key as u32`.
    pub(crate) fn groups_of(&self, doc: u32) -> &[u64] {
        let lo = self.keys.partition_point(|&k| k >> 32 < doc as u64);
        let hi = lo + self.keys[lo..].partition_point(|&k| k >> 32 == doc as u64);
        &self.keys[lo..hi]
    }
}

/// The absorption pass of Algorithm 1 (lines 4–10) over merge-sorted
/// groups: `absorber[j]` is the group `j` was folded into, or
/// [`NOT_ABSORBED`]. Each group is absorbed by its *smallest* implying
/// group; that group is itself never absorbed (its own smallest implier
/// would be a smaller implier of `j`, a contradiction), which is what lets
/// the parallel scan reproduce this table without the sequential
/// `absorbed` bookkeeping.
pub(crate) fn sequential_absorbers(egs: &[EgRef], by_doc: &DocIndex) -> Vec<u32> {
    let mut absorber = vec![NOT_ABSORBED; egs.len()];
    for i in 0..egs.len() {
        if absorber[i] != NOT_ABSORBED {
            continue;
        }
        let Some(&first_doc) = egs[i].docs.first() else {
            continue;
        };
        // Candidates appear after i in ascending order and contain first_doc.
        for &key in by_doc.groups_of(first_doc) {
            let j = key as u32 as usize;
            if j <= i || absorber[j] != NOT_ABSORBED {
                continue;
            }
            if implies_ref(&egs[i], &egs[j]) {
                absorber[j] = i as u32; // line 10: EG = EG \ EG[j]
            }
        }
    }
    absorber
}

/// Fold absorbed groups into their absorbers and emit the association
/// groups in ascending leader order — a pure function of `(egs, absorber)`,
/// shared by the sequential and parallel builds.
pub(crate) fn assemble_groups(egs: &[EgRef], absorber: &[u32]) -> Vec<AssociationGroup> {
    // `(absorber, member)` pairs sorted by absorber: each leader's members
    // form one contiguous run, in the same ascending-j order the old
    // per-leader member lists had.
    let mut absorbed: Vec<(u32, u32)> = absorber
        .iter()
        .enumerate()
        .filter(|&(_, &a)| a != NOT_ABSORBED)
        .map(|(j, &a)| (a, j as u32))
        .collect();
    absorbed.sort_unstable();
    let mut out = Vec::new();
    let mut load_docs: Vec<u32> = Vec::new();
    for i in 0..egs.len() {
        if absorber[i] != NOT_ABSORBED || egs[i].docs.is_empty() {
            continue;
        }
        let mut avps = egs[i].avps.to_vec();
        // Union of member docsets, for the load l_i.
        load_docs.clear();
        load_docs.extend_from_slice(egs[i].docs);
        let start = absorbed.partition_point(|&(a, _)| a < i as u32);
        for &(_, j) in absorbed[start..]
            .iter()
            .take_while(|&&(a, _)| a == i as u32)
        {
            avps.extend_from_slice(egs[j as usize].avps);
            load_docs.extend_from_slice(egs[j as usize].docs);
        }
        avps.sort();
        load_docs.sort_unstable();
        load_docs.dedup();
        out.push(AssociationGroup {
            avps,
            load: load_docs.len(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_json::{Dictionary, Scalar};

    /// Build views from `attr:int` shorthand lists.
    fn views(dict: &Dictionary, specs: &[&[(&str, i64)]]) -> Vec<View> {
        specs
            .iter()
            .map(|doc| {
                doc.iter()
                    .map(|&(a, v)| dict.intern(a, Scalar::Int(v)).avp)
                    .collect()
            })
            .collect()
    }

    /// The paper's Fig. 3 example end to end.
    #[test]
    fn paper_fig3_example() {
        let dict = Dictionary::new();
        let vs = views(
            &dict,
            &[
                &[("A", 2), ("B", 3), ("C", 7)],
                &[("A", 7), ("B", 3), ("C", 4)],
                &[("D", 13)],
                &[("A", 7), ("C", 4)],
            ],
        );
        let egs = equivalence_groups(&vs);
        // eg1={A:2,C:7} (doc 0), eg2={B:3} (docs 0,1), eg3={A:7,C:4}
        // (docs 1,3), eg4={D:13} (doc 2).
        assert_eq!(egs.len(), 4);
        let sizes: Vec<(usize, usize)> = egs.iter().map(|g| (g.avps.len(), g.docs.len())).collect();
        assert!(sizes.contains(&(2, 1))); // {A:2,C:7}
        assert!(sizes.contains(&(1, 2))); // {B:3}
        assert!(sizes.contains(&(2, 2))); // {A:7,C:4}
        assert!(sizes.contains(&(1, 1))); // {D:13}

        let mut ags = association_groups(&vs);
        ags.sort_by(|a, b| a.avps.cmp(&b.avps));
        // ag1={A:2,C:7,B:3}, ag2={A:7,C:4}, ag3={D:13}.
        assert_eq!(ags.len(), 3);
        let a2 = dict.lookup("A", &Scalar::Int(2)).unwrap().avp;
        let b3 = dict.lookup("B", &Scalar::Int(3)).unwrap().avp;
        let c7 = dict.lookup("C", &Scalar::Int(7)).unwrap().avp;
        let merged = ags
            .iter()
            .find(|g| g.avps.contains(&a2))
            .expect("group containing A:2");
        let mut want = vec![a2, b3, c7];
        want.sort();
        assert_eq!(merged.avps, want);
        // Its load: A:2/C:7 appear in doc 0, B:3 in docs 0 and 1 → 2 docs.
        assert_eq!(merged.load, 2);
    }

    #[test]
    fn equivalence_requires_exact_cooccurrence() {
        let dict = Dictionary::new();
        let vs = views(&dict, &[&[("x", 1), ("y", 1)], &[("x", 1)]]);
        let egs = equivalence_groups(&vs);
        // x:1 in docs {0,1}, y:1 in {0} → two separate groups.
        assert_eq!(egs.len(), 2);
        assert!(egs.iter().all(|g| g.avps.len() == 1));
    }

    #[test]
    fn implies_direction() {
        let a = EquivalenceGroup {
            avps: vec![AvpId(0)],
            docs: vec![1, 3],
        };
        let b = EquivalenceGroup {
            avps: vec![AvpId(1)],
            docs: vec![0, 1, 2, 3],
        };
        assert!(implies(&a, &b));
        assert!(!implies(&b, &a));
        let c = EquivalenceGroup {
            avps: vec![AvpId(2)],
            docs: vec![1, 4],
        };
        assert!(!implies(&a, &c));
        assert!(!implies(&a, &a));
    }

    #[test]
    fn association_groups_are_disjoint() {
        let dict = Dictionary::new();
        let vs = views(
            &dict,
            &[
                &[("a", 1), ("b", 1), ("c", 1)],
                &[("b", 1), ("c", 1)],
                &[("c", 1)],
                &[("d", 9)],
                &[("a", 1), ("b", 1), ("c", 1), ("d", 9)],
            ],
        );
        let ags = association_groups(&vs);
        let mut seen: FxHashSet<AvpId> = FxHashSet::default();
        for g in &ags {
            for &avp in &g.avps {
                assert!(seen.insert(avp), "pair {avp} in two association groups");
            }
        }
    }

    #[test]
    fn all_pairs_covered_by_some_group() {
        let dict = Dictionary::new();
        let vs = views(
            &dict,
            &[
                &[("a", 1), ("b", 2)],
                &[("b", 2), ("c", 3)],
                &[("c", 3), ("a", 1)],
            ],
        );
        let ags = association_groups(&vs);
        let covered: FxHashSet<AvpId> = ags.iter().flat_map(|g| g.avps.iter().copied()).collect();
        for v in &vs {
            for avp in v {
                assert!(covered.contains(avp));
            }
        }
    }

    #[test]
    fn chained_implication_absorbed_transitively() {
        let dict = Dictionary::new();
        // z ⊂ y ⊂ x document sets: z in {0}, y in {0,1}, x in {0,1,2}.
        let vs = views(
            &dict,
            &[
                &[("x", 1), ("y", 1), ("z", 1)],
                &[("x", 1), ("y", 1)],
                &[("x", 1)],
            ],
        );
        let ags = association_groups(&vs);
        // z implies y and x; everything folds into a single group.
        assert_eq!(ags.len(), 1);
        assert_eq!(ags[0].avps.len(), 3);
        assert_eq!(ags[0].load, 3);
    }

    #[test]
    fn empty_input() {
        assert!(equivalence_groups(&[]).is_empty());
        assert!(association_groups(&[]).is_empty());
    }

    #[test]
    fn duplicate_avps_in_view_counted_once() {
        let dict = Dictionary::new();
        let p = dict.intern("a", Scalar::Int(1)).avp;
        let vs = vec![vec![p, p, p]];
        let egs = equivalence_groups(&vs);
        assert_eq!(egs.len(), 1);
        assert_eq!(egs[0].docs, vec![0]);
    }
}
