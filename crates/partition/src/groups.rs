//! Equivalence and association groups (§IV, Definitions 1–2, Algorithm 1).
//!
//! * An **equivalence group** is a maximal set of attribute-value pairs that
//!   appear in exactly the same set of documents (Definition 1). They are
//!   found by fingerprinting each pair's document set.
//! * `eg_i` **implies** `eg_j` when every document containing `eg_i` also
//!   contains `eg_j` — i.e. `docs(eg_i) ⊆ docs(eg_j)` — while `eg_j` also
//!   occurs alone (Definition 2; strict subset, since equal document sets
//!   would have merged into one equivalence group already).
//! * **Association groups** are built by Algorithm 1: scan the equivalence
//!   groups in ascending document-count order and fold every implied group
//!   into the implying one, removing it so no attribute-value pair lands in
//!   two association groups.
//!
//! The pairwise `implies` scan of Algorithm 1 is quadratic in the number of
//! equivalence groups; since `docs(eg_i) ⊆ docs(eg_j)` requires `eg_j` to
//! contain `eg_i`'s first document, we only test the groups posted under that
//! document in an inverted index — same output, far fewer subset tests.

use ssj_json::{AvpId, FxHashMap, FxHashSet};

/// A *partitioning view* of one document: the attribute-value pair ids used
/// for partition creation and routing. Normally the document's own pairs;
/// under attribute expansion (§VI-B) some are replaced by synthetic pairs.
pub type View = Vec<AvpId>;

/// An equivalence group: pairs sharing one exact document set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivalenceGroup {
    /// The member attribute-value pairs.
    pub avps: Vec<AvpId>,
    /// Sorted indices (into the batch) of the documents containing them.
    pub docs: Vec<u32>,
}

/// An association group: the unit assigned to partitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssociationGroup {
    /// Member pairs; no pair appears in two association groups.
    pub avps: Vec<AvpId>,
    /// Load `l_i` (Algorithm 1, line 13): number of batch documents
    /// containing at least one member pair.
    pub load: usize,
}

/// Compute the equivalence groups of a batch of views (Definition 1).
pub fn equivalence_groups(views: &[View]) -> Vec<EquivalenceGroup> {
    // docset per pair.
    let mut docsets: FxHashMap<AvpId, Vec<u32>> = FxHashMap::default();
    for (i, view) in views.iter().enumerate() {
        let mut seen: FxHashSet<AvpId> = FxHashSet::default();
        for &avp in view {
            if seen.insert(avp) {
                docsets.entry(avp).or_default().push(i as u32);
            }
        }
    }
    // Group pairs by identical docset (`avInD` of Algorithm 1, line 1, with
    // the map key being the document set).
    let mut by_docs: FxHashMap<Vec<u32>, Vec<AvpId>> = FxHashMap::default();
    for (avp, docs) in docsets {
        by_docs.entry(docs).or_default().push(avp);
    }
    let mut groups: Vec<EquivalenceGroup> = by_docs
        .into_iter()
        .map(|(docs, mut avps)| {
            avps.sort();
            EquivalenceGroup { avps, docs }
        })
        .collect();
    // Deterministic order independent of hash-map iteration.
    groups.sort_by(|a, b| a.docs.cmp(&b.docs).then_with(|| a.avps.cmp(&b.avps)));
    groups
}

/// `true` when every document containing `a` also contains `b` (and `b`
/// occurs in strictly more documents): Definition 2 on document sets.
pub fn implies(a: &EquivalenceGroup, b: &EquivalenceGroup) -> bool {
    if a.docs.len() >= b.docs.len() {
        return false;
    }
    is_subset(&a.docs, &b.docs)
}

/// Two-pointer subset test over sorted slices.
fn is_subset(small: &[u32], big: &[u32]) -> bool {
    let mut j = 0usize;
    for &x in small {
        loop {
            match big.get(j) {
                None => return false,
                Some(&y) if y == x => {
                    j += 1;
                    break;
                }
                Some(&y) if y > x => return false,
                _ => j += 1,
            }
        }
    }
    true
}

/// Algorithm 1: association groups from a batch of views.
pub fn association_groups(views: &[View]) -> Vec<AssociationGroup> {
    let mut egs = equivalence_groups(views);
    // Line 3: ascending by document count (determinism: then by contents).
    egs.sort_by(|a, b| {
        a.docs
            .len()
            .cmp(&b.docs.len())
            .then_with(|| a.docs.cmp(&b.docs))
            .then_with(|| a.avps.cmp(&b.avps))
    });

    // Inverted index: document -> equivalence groups containing it. Only
    // groups containing eg_i's first document can be implied supersets.
    let mut by_doc: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
    for (gi, eg) in egs.iter().enumerate() {
        for &d in &eg.docs {
            by_doc.entry(d).or_default().push(gi as u32);
        }
    }

    let mut absorbed = vec![false; egs.len()];
    let mut out = Vec::new();
    for i in 0..egs.len() {
        if absorbed[i] {
            continue;
        }
        let mut avps = egs[i].avps.clone();
        // Union of member docsets, for the load l_i.
        let mut load_docs: FxHashSet<u32> = egs[i].docs.iter().copied().collect();
        let first_doc = match egs[i].docs.first() {
            Some(&d) => d,
            None => continue,
        };
        // Candidates appear after i in ascending order and contain first_doc.
        if let Some(cands) = by_doc.get(&first_doc) {
            for &cj in cands {
                let j = cj as usize;
                if j <= i || absorbed[j] {
                    continue;
                }
                if implies(&egs[i], &egs[j]) {
                    absorbed[j] = true; // line 10: EG = EG \ EG[j]
                    avps.extend_from_slice(&egs[j].avps);
                    load_docs.extend(egs[j].docs.iter().copied());
                }
            }
        }
        avps.sort();
        out.push(AssociationGroup {
            avps,
            load: load_docs.len(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_json::{Dictionary, Scalar};

    /// Build views from `attr:int` shorthand lists.
    fn views(dict: &Dictionary, specs: &[&[(&str, i64)]]) -> Vec<View> {
        specs
            .iter()
            .map(|doc| {
                doc.iter()
                    .map(|&(a, v)| dict.intern(a, Scalar::Int(v)).avp)
                    .collect()
            })
            .collect()
    }

    /// The paper's Fig. 3 example end to end.
    #[test]
    fn paper_fig3_example() {
        let dict = Dictionary::new();
        let vs = views(
            &dict,
            &[
                &[("A", 2), ("B", 3), ("C", 7)],
                &[("A", 7), ("B", 3), ("C", 4)],
                &[("D", 13)],
                &[("A", 7), ("C", 4)],
            ],
        );
        let egs = equivalence_groups(&vs);
        // eg1={A:2,C:7} (doc 0), eg2={B:3} (docs 0,1), eg3={A:7,C:4}
        // (docs 1,3), eg4={D:13} (doc 2).
        assert_eq!(egs.len(), 4);
        let sizes: Vec<(usize, usize)> = egs.iter().map(|g| (g.avps.len(), g.docs.len())).collect();
        assert!(sizes.contains(&(2, 1))); // {A:2,C:7}
        assert!(sizes.contains(&(1, 2))); // {B:3}
        assert!(sizes.contains(&(2, 2))); // {A:7,C:4}
        assert!(sizes.contains(&(1, 1))); // {D:13}

        let mut ags = association_groups(&vs);
        ags.sort_by(|a, b| a.avps.cmp(&b.avps));
        // ag1={A:2,C:7,B:3}, ag2={A:7,C:4}, ag3={D:13}.
        assert_eq!(ags.len(), 3);
        let a2 = dict.lookup("A", &Scalar::Int(2)).unwrap().avp;
        let b3 = dict.lookup("B", &Scalar::Int(3)).unwrap().avp;
        let c7 = dict.lookup("C", &Scalar::Int(7)).unwrap().avp;
        let merged = ags
            .iter()
            .find(|g| g.avps.contains(&a2))
            .expect("group containing A:2");
        let mut want = vec![a2, b3, c7];
        want.sort();
        assert_eq!(merged.avps, want);
        // Its load: A:2/C:7 appear in doc 0, B:3 in docs 0 and 1 → 2 docs.
        assert_eq!(merged.load, 2);
    }

    #[test]
    fn equivalence_requires_exact_cooccurrence() {
        let dict = Dictionary::new();
        let vs = views(&dict, &[&[("x", 1), ("y", 1)], &[("x", 1)]]);
        let egs = equivalence_groups(&vs);
        // x:1 in docs {0,1}, y:1 in {0} → two separate groups.
        assert_eq!(egs.len(), 2);
        assert!(egs.iter().all(|g| g.avps.len() == 1));
    }

    #[test]
    fn implies_direction() {
        let a = EquivalenceGroup {
            avps: vec![AvpId(0)],
            docs: vec![1, 3],
        };
        let b = EquivalenceGroup {
            avps: vec![AvpId(1)],
            docs: vec![0, 1, 2, 3],
        };
        assert!(implies(&a, &b));
        assert!(!implies(&b, &a));
        let c = EquivalenceGroup {
            avps: vec![AvpId(2)],
            docs: vec![1, 4],
        };
        assert!(!implies(&a, &c));
        assert!(!implies(&a, &a));
    }

    #[test]
    fn association_groups_are_disjoint() {
        let dict = Dictionary::new();
        let vs = views(
            &dict,
            &[
                &[("a", 1), ("b", 1), ("c", 1)],
                &[("b", 1), ("c", 1)],
                &[("c", 1)],
                &[("d", 9)],
                &[("a", 1), ("b", 1), ("c", 1), ("d", 9)],
            ],
        );
        let ags = association_groups(&vs);
        let mut seen: FxHashSet<AvpId> = FxHashSet::default();
        for g in &ags {
            for &avp in &g.avps {
                assert!(seen.insert(avp), "pair {avp} in two association groups");
            }
        }
    }

    #[test]
    fn all_pairs_covered_by_some_group() {
        let dict = Dictionary::new();
        let vs = views(
            &dict,
            &[
                &[("a", 1), ("b", 2)],
                &[("b", 2), ("c", 3)],
                &[("c", 3), ("a", 1)],
            ],
        );
        let ags = association_groups(&vs);
        let covered: FxHashSet<AvpId> = ags.iter().flat_map(|g| g.avps.iter().copied()).collect();
        for v in &vs {
            for avp in v {
                assert!(covered.contains(avp));
            }
        }
    }

    #[test]
    fn chained_implication_absorbed_transitively() {
        let dict = Dictionary::new();
        // z ⊂ y ⊂ x document sets: z in {0}, y in {0,1}, x in {0,1,2}.
        let vs = views(
            &dict,
            &[
                &[("x", 1), ("y", 1), ("z", 1)],
                &[("x", 1), ("y", 1)],
                &[("x", 1)],
            ],
        );
        let ags = association_groups(&vs);
        // z implies y and x; everything folds into a single group.
        assert_eq!(ags.len(), 1);
        assert_eq!(ags[0].avps.len(), 3);
        assert_eq!(ags[0].load, 3);
    }

    #[test]
    fn empty_input() {
        assert!(equivalence_groups(&[]).is_empty());
        assert!(association_groups(&[]).is_empty());
    }

    #[test]
    fn duplicate_avps_in_view_counted_once() {
        let dict = Dictionary::new();
        let p = dict.intern("a", Scalar::Int(1)).avp;
        let vs = vec![vec![p, p, p]];
        let egs = equivalence_groups(&vs);
        assert_eq!(egs.len(), 1);
        assert_eq!(egs[0].docs, vec![0]);
    }
}
