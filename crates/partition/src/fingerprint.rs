//! 128-bit docset fingerprints.
//!
//! Equivalence grouping (§IV, Definition 1) buckets attribute-value pairs by
//! their exact document set. Keying a hash map with the docset itself means
//! re-hashing a whole `Vec<u32>` per lookup and moving the vector in as the
//! key; instead both the batch path and the incremental [`GroupIndex`] key
//! groups by a 128-bit fingerprint of the docset and fall back to a full
//! equality comparison only when two distinct docsets collide on the same
//! fingerprint (the fallback keeps the partitioning *exact* rather than
//! probabilistic).
//!
//! The docset fingerprint is **commutative**: the sum of a strong per-id
//! mix over both lanes. Commutativity costs some mixing strength versus a
//! chained hash — which the equality fallback absorbs — and buys O(1)
//! *incremental* updates: the [`GroupIndex`] adjusts a pair's fingerprint
//! with [`Fp128::add_doc`] / [`Fp128::remove_doc`] as documents arrive and
//! expire, never rescanning the docset (popular pairs sit in docsets
//! spanning most of the window, and re-fingerprinting them on every delta
//! dominated the refresh).
//!
//! [`GroupIndex`]: crate::incremental::GroupIndex

/// A 128-bit docset fingerprint (two independent SplitMix64-style lanes,
/// summed per document id so membership updates are O(1)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Fp128 {
    /// First hash lane.
    pub hi: u64,
    /// Second hash lane (independent seed and multiplier).
    pub lo: u64,
}

// Independent odd multipliers: the Fx constant and a SplitMix64-style one.
const K1: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const K2: u64 = 0x94_d0_49_bb_13_31_11_eb;

#[inline]
fn lane(h: u64, word: u64, k: u64) -> u64 {
    (h.rotate_left(5) ^ word).wrapping_mul(k)
}

/// SplitMix64 finalizer: a bijective avalanche of one id, so the per-lane
/// sums of distinct docsets agree only by 64-bit accident per lane.
#[inline]
fn splitmix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Fp128 {
    /// The fingerprint of the empty docset.
    pub fn empty() -> Fp128 {
        Fp128::default()
    }

    /// Fold document `d` into the set — O(1), order-independent.
    #[inline]
    pub fn add_doc(&mut self, d: u32) {
        self.hi = self.hi.wrapping_add(splitmix(d as u64 ^ K1));
        self.lo = self.lo.wrapping_add(splitmix(d as u64 ^ K2));
    }

    /// Remove document `d` from the set — the exact inverse of
    /// [`add_doc`](Self::add_doc).
    #[inline]
    pub fn remove_doc(&mut self, d: u32) {
        self.hi = self.hi.wrapping_sub(splitmix(d as u64 ^ K1));
        self.lo = self.lo.wrapping_sub(splitmix(d as u64 ^ K2));
    }
}

/// Fingerprint a docset from scratch: the fold of [`Fp128::add_doc`] over
/// its ids, so the batch path and the incrementally maintained fingerprints
/// of the [`GroupIndex`](crate::incremental::GroupIndex) agree exactly.
#[inline]
pub fn fingerprint_docs(docs: &[u32]) -> Fp128 {
    let mut fp = Fp128::empty();
    for &d in docs {
        fp.add_doc(d);
    }
    fp
}

/// Fingerprint a document *view* (its attribute-value pair ids) — the
/// routing cache key. Views need not be sorted; the fingerprint is
/// order-sensitive, which is fine because a document always renders its
/// pairs in the same order.
#[inline]
pub fn fingerprint_view(avps: impl Iterator<Item = ssj_json::AvpId>) -> Fp128 {
    let mut hi = 0x9e37_79b9_7f4a_7c15;
    let mut lo = 0xc2b2_ae3d_27d4_eb4f;
    let mut n = 0u64;
    for avp in avps {
        hi = lane(hi, avp.0 as u64, K1);
        lo = lane(lo, avp.0 as u64, K2);
        n += 1;
    }
    hi = lane(hi, n, K1);
    lo = lane(lo, n, K2);
    Fp128 { hi, lo }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_docsets_distinct_fingerprints() {
        let a = fingerprint_docs(&[1, 2, 3]);
        let b = fingerprint_docs(&[1, 2, 4]);
        let c = fingerprint_docs(&[1, 2]);
        let d = fingerprint_docs(&[]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(c, d);
        assert_eq!(a, fingerprint_docs(&[1, 2, 3]));
    }

    #[test]
    fn lanes_are_independent() {
        // If both lanes used the same constants they would always be equal
        // and the fingerprint would effectively be 64-bit.
        let fp = fingerprint_docs(&[7, 9, 11]);
        assert_ne!(fp.hi, fp.lo);
    }
}
