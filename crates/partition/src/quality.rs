//! Partition-quality metrics and adaptation policies (§VI-A, §VII-C).
//!
//! * **Replication** — average number of machines each document is sent to.
//! * **Load balance** — the Gini coefficient of the per-machine loads
//!   (0 = perfectly equal, → 1 = everything on one machine).
//! * **Maximal processing load** — the largest share of *emitted* documents
//!   any single Joiner receives.
//!
//! [`UnseenTracker`] implements the δ-threshold for partition updates and
//! [`RepartitionPolicy`] the θ-threshold that triggers recomputation.

use crate::partitions::RoutingStats;
use ssj_json::{AvpId, FxHashMap};

/// Gini coefficient of a load distribution. Zero for empty or all-zero
/// input; 0 when perfectly balanced.
pub fn gini(loads: &[usize]) -> f64 {
    let n = loads.len();
    if n == 0 {
        return 0.0;
    }
    let total: usize = loads.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut sorted: Vec<usize> = loads.to_vec();
    sorted.sort_unstable();
    // G = (2·Σ i·x_i) / (n·Σ x) − (n+1)/n, with 1-based i over sorted x.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i + 1) as f64 * x as f64)
        .sum();
    (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
}

/// The §VII-C metrics for one window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowQuality {
    /// Average number of machines per document.
    pub replication: f64,
    /// Gini coefficient of the per-machine loads.
    pub load_balance: f64,
    /// Largest per-machine share of the emitted documents.
    pub max_processing_load: f64,
    /// Fraction of documents that had to be broadcast.
    pub broadcast_fraction: f64,
}

impl WindowQuality {
    /// Derive the metrics from raw routing counts.
    pub fn from_stats(stats: &RoutingStats) -> Self {
        let docs = stats.docs.max(1) as f64;
        WindowQuality {
            replication: stats.total_sends as f64 / docs,
            load_balance: gini(&stats.per_machine),
            // §VII-C: the share of the window's emitted documents assigned
            // to the busiest Joiner — 1.0 when one machine sees everything.
            max_processing_load: stats.per_machine.iter().copied().max().unwrap_or(0) as f64 / docs,
            broadcast_fraction: stats.broadcasts as f64 / docs,
        }
    }

    /// An idle window (no documents).
    pub fn idle() -> Self {
        WindowQuality {
            replication: 0.0,
            load_balance: 0.0,
            max_processing_load: 0.0,
            broadcast_fraction: 0.0,
        }
    }
}

/// δ-threshold tracking of previously unseen attribute-value pairs (§VI-A):
/// a pair becomes an *update candidate* once seen `delta` times.
#[derive(Debug, Clone)]
pub struct UnseenTracker {
    delta: u32,
    counts: FxHashMap<AvpId, u32>,
}

impl UnseenTracker {
    /// Track with threshold `delta` (the paper's default is 3).
    pub fn new(delta: u32) -> Self {
        UnseenTracker {
            delta: delta.max(1),
            counts: FxHashMap::default(),
        }
    }

    /// Record one sighting of an unseen pair; `true` exactly when the count
    /// reaches δ — the moment the Assigner asks the Merger for an update.
    pub fn observe(&mut self, avp: AvpId) -> bool {
        let c = self.counts.entry(avp).or_insert(0);
        *c += 1;
        *c == self.delta
    }

    /// Forget a pair once the Merger has incorporated it.
    pub fn clear(&mut self, avp: AvpId) {
        self.counts.remove(&avp);
    }

    /// Drop all state (used at repartition boundaries).
    pub fn reset(&mut self) {
        self.counts.clear();
    }

    /// Number of pairs currently below the threshold.
    pub fn pending(&self) -> usize {
        self.counts.len()
    }
}

/// θ-threshold repartitioning (§VI-A): recompute partitions when replication
/// or the processing-load imbalance has degraded by more than `theta`
/// relative to the values measured right after the partitions were created.
#[derive(Debug, Clone, Copy)]
pub struct RepartitionPolicy {
    /// The relative degradation threshold (paper: 0.2 and 0.6).
    pub theta: f64,
}

impl RepartitionPolicy {
    /// Create a policy with threshold `theta`.
    pub fn new(theta: f64) -> Self {
        RepartitionPolicy { theta }
    }

    /// `true` when `current` degraded more than θ past `baseline`.
    pub fn should_repartition(&self, baseline: &WindowQuality, current: &WindowQuality) -> bool {
        let repl_worse = relative_increase(baseline.replication, current.replication);
        let load_worse =
            relative_increase(baseline.max_processing_load, current.max_processing_load);
        repl_worse > self.theta || load_worse > self.theta
    }
}

fn relative_increase(base: f64, now: f64) -> f64 {
    if base <= 0.0 {
        if now > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    } else {
        (now - base) / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gini_of_equal_loads_is_zero() {
        assert!(gini(&[5, 5, 5, 5]).abs() < 1e-9);
        assert!(gini(&[]).abs() < 1e-9);
        assert!(gini(&[0, 0]).abs() < 1e-9);
    }

    #[test]
    fn gini_of_concentrated_load_is_high() {
        let g = gini(&[100, 0, 0, 0]);
        assert!(g > 0.7, "g = {g}");
        assert!(g <= 1.0);
    }

    #[test]
    fn gini_is_scale_invariant() {
        let a = gini(&[1, 2, 3, 4]);
        let b = gini(&[10, 20, 30, 40]);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn gini_monotone_in_imbalance() {
        assert!(gini(&[10, 10, 10, 10]) < gini(&[5, 5, 10, 20]));
        assert!(gini(&[5, 5, 10, 20]) < gini(&[0, 0, 0, 40]));
    }

    #[test]
    fn quality_from_stats() {
        let stats = RoutingStats {
            per_machine: vec![3, 1],
            total_sends: 4,
            broadcasts: 1,
            docs: 3,
        };
        let q = WindowQuality::from_stats(&stats);
        assert!((q.replication - 4.0 / 3.0).abs() < 1e-9);
        assert!((q.max_processing_load - 1.0).abs() < 1e-9);
        assert!((q.broadcast_fraction - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn unseen_tracker_fires_at_delta() {
        let mut t = UnseenTracker::new(3);
        let avp = AvpId(7);
        assert!(!t.observe(avp));
        assert!(!t.observe(avp));
        assert!(t.observe(avp)); // third sighting
        assert!(!t.observe(avp)); // fires exactly once
        assert_eq!(t.pending(), 1);
        t.clear(avp);
        assert_eq!(t.pending(), 0);
    }

    #[test]
    fn unseen_tracker_delta_one() {
        let mut t = UnseenTracker::new(1);
        assert!(t.observe(AvpId(1)));
        assert!(!t.observe(AvpId(1)));
    }

    #[test]
    fn repartition_triggers_on_replication_growth() {
        let policy = RepartitionPolicy::new(0.2);
        let base = WindowQuality {
            replication: 2.0,
            load_balance: 0.1,
            max_processing_load: 0.3,
            broadcast_fraction: 0.0,
        };
        let mut cur = base;
        cur.replication = 2.3; // +15% — below θ
        assert!(!policy.should_repartition(&base, &cur));
        cur.replication = 2.5; // +25% — above θ
        assert!(policy.should_repartition(&base, &cur));
    }

    #[test]
    fn repartition_triggers_on_load_growth() {
        let policy = RepartitionPolicy::new(0.2);
        let base = WindowQuality {
            replication: 2.0,
            load_balance: 0.1,
            max_processing_load: 0.3,
            broadcast_fraction: 0.0,
        };
        let mut cur = base;
        cur.max_processing_load = 0.45; // +50%
        assert!(policy.should_repartition(&base, &cur));
    }

    #[test]
    fn higher_theta_tolerates_more() {
        let base = WindowQuality {
            replication: 2.0,
            load_balance: 0.1,
            max_processing_load: 0.3,
            broadcast_fraction: 0.0,
        };
        let mut cur = base;
        cur.replication = 2.8; // +40%
        assert!(RepartitionPolicy::new(0.2).should_repartition(&base, &cur));
        assert!(!RepartitionPolicy::new(0.6).should_repartition(&base, &cur));
    }
}
