//! A small hand-rolled argument parser: `--key value` pairs, `--flag`
//! booleans, and one positional subcommand.

use std::collections::HashMap;

/// Parsed command line: the subcommand plus its options.
#[derive(Debug, Default)]
pub struct Args {
    /// The first positional argument (subcommand).
    pub command: Option<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
    /// Extra positionals after the subcommand.
    pub positionals: Vec<String>,
}

/// Option keys that take a value; anything else starting with `--` is a flag.
const VALUED: &[&str] = &[
    "dataset",
    "count",
    "seed",
    "out",
    "input",
    "algo",
    "m",
    "window",
    "windows",
    "partitioner",
    "theta",
    "delta",
    "creators",
    "assigners",
    "batch",
    "window-by",
    "save",
    "load",
];

impl Args {
    /// Parse from an iterator of arguments (without the program name).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Args, String> {
        let mut out = Args::default();
        let mut it = args.into_iter().peekable();
        while let Some(arg) = it.next() {
            if let Some(key) = arg.strip_prefix("--") {
                if VALUED.contains(&key) {
                    let value = it
                        .next()
                        .ok_or_else(|| format!("--{key} requires a value"))?;
                    out.options.insert(key.to_owned(), value);
                } else {
                    out.flags.push(key.to_owned());
                }
            } else if out.command.is_none() {
                out.command = Some(arg);
            } else {
                out.positionals.push(arg);
            }
        }
        Ok(out)
    }

    /// Raw string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Typed option with default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.options.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|e| format!("invalid value for --{key}: {e}")),
        }
    }

    /// Boolean flag presence.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Reject unknown flags (typo guard).
    pub fn check_flags(&self, allowed: &[&str]) -> Result<(), String> {
        for f in &self.flags {
            if !allowed.contains(&f.as_str()) {
                return Err(format!("unknown flag --{f}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Args {
        Args::parse(parts.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn subcommand_options_and_flags() {
        let a = parse(&[
            "pipeline",
            "--m",
            "8",
            "--no-expansion",
            "--dataset",
            "rwdata",
        ]);
        assert_eq!(a.command.as_deref(), Some("pipeline"));
        assert_eq!(a.get("m"), Some("8"));
        assert_eq!(a.get("dataset"), Some("rwdata"));
        assert!(a.flag("no-expansion"));
        assert!(!a.flag("dot"));
    }

    #[test]
    fn typed_defaults() {
        let a = parse(&["generate", "--count", "100"]);
        assert_eq!(a.get_or("count", 10usize).unwrap(), 100);
        assert_eq!(a.get_or("seed", 42u64).unwrap(), 42);
        assert!(a.get_or::<usize>("count", 0).is_ok());
    }

    #[test]
    fn invalid_typed_value_rejected() {
        let a = parse(&["generate", "--count", "xyz"]);
        assert!(a.get_or("count", 1usize).is_err());
    }

    #[test]
    fn missing_value_rejected() {
        let err = Args::parse(["generate".to_string(), "--count".to_string()]).unwrap_err();
        assert!(err.contains("--count"));
    }

    #[test]
    fn unknown_flag_detected() {
        let a = parse(&["join", "--frobnicate"]);
        assert!(a.check_flags(&["emit"]).is_err());
        assert!(a.check_flags(&["frobnicate"]).is_ok());
    }
}
