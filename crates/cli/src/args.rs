//! Declarative command-line parsing.
//!
//! Every subcommand declares its flag table — name, whether it takes a
//! value, the displayed default, and a help line — and both the parser and
//! the `--help`/usage text are generated from that one table. Adding a flag
//! is one [`FlagSpec`] entry; unknown options are rejected at parse time.

use std::collections::HashMap;

/// One command-line option of a subcommand.
pub struct FlagSpec {
    /// Name without the leading `--`.
    pub name: &'static str,
    /// Whether the option consumes the following argument as its value.
    pub takes_value: bool,
    /// Default shown in the generated help (`None` for optional/boolean).
    pub default: Option<&'static str>,
    /// One help line.
    pub help: &'static str,
}

/// A valued option.
const fn opt(name: &'static str, default: Option<&'static str>, help: &'static str) -> FlagSpec {
    FlagSpec {
        name,
        takes_value: true,
        default,
        help,
    }
}

/// A boolean flag.
const fn flag(name: &'static str, help: &'static str) -> FlagSpec {
    FlagSpec {
        name,
        takes_value: false,
        default: None,
        help,
    }
}

/// One subcommand and its flag table.
pub struct CommandSpec {
    /// Subcommand name.
    pub name: &'static str,
    /// One-line summary for the usage text.
    pub summary: &'static str,
    /// Accepted options, in help order.
    pub flags: &'static [FlagSpec],
}

const DATASET: FlagSpec = opt(
    "dataset",
    Some("rwdata"),
    "rwdata|nbdata|tweets (aliases: rw, nb)",
);
const INPUT: FlagSpec = opt("input", None, "read documents from a JSON Lines file");
const COUNT: FlagSpec = opt("count", Some("10000"), "documents to generate");
const SEED: FlagSpec = opt("seed", Some("42"), "generator seed");
const M: FlagSpec = opt("m", Some("8"), "partitions = Joiner instances");
const WINDOW: FlagSpec = opt("window", Some("1500"), "documents per tumbling window");
const PANE: FlagSpec = opt(
    "pane",
    None,
    "documents per pane — sliding windows (use with --slide)",
);
const SLIDE: FlagSpec = opt(
    "slide",
    Some("1"),
    "panes per window; >1 makes the window slide by one pane",
);
const WINDOWS: FlagSpec = opt("windows", None, "truncate the stream to K windows");
const PARTITIONER: FlagSpec = opt("partitioner", Some("ag"), "ag|sc|ds|hash");
const THETA: FlagSpec = opt("theta", Some("0.2"), "repartitioning threshold");
const DELTA: FlagSpec = opt("delta", Some("3"), "unseen-pair update threshold");
const CREATORS: FlagSpec = opt("creators", Some("2"), "PartitionCreator parallelism");
const ASSIGNERS: FlagSpec = opt("assigners", Some("6"), "Assigner parallelism");
const BUILD_WORKERS: FlagSpec = opt(
    "build-workers",
    Some("2"),
    "group-build worker threads per PartitionCreator",
);
const BATCH: FlagSpec = opt("batch", Some("64"), "transport micro-batch size (1 = off)");
const ALGO: FlagSpec = opt("algo", Some("fpj"), "local join algorithm: fpj|nlj|hbj");
const NO_EXPANSION: FlagSpec = flag("no-expansion", "disable attribute-value expansion");
const METRICS_OUT: FlagSpec = opt(
    "metrics-out",
    None,
    "write per-window metrics + trace as JSON lines to FILE",
);
const NO_METRICS: FlagSpec = flag("no-metrics", "disable histogram/trace collection");
const RETRIES: FlagSpec = opt(
    "retries",
    Some("0"),
    "supervised-recovery retry budget per task (0 = off)",
);
const BACKOFF_MS: FlagSpec = opt("backoff-ms", Some("20"), "base recovery backoff in ms");
const DEGRADED: FlagSpec = flag(
    "degraded",
    "fence retry-exhausted tasks and route around them",
);
const SCHEDULER: FlagSpec = opt(
    "scheduler",
    Some("pooled"),
    "task scheduler: pooled|legacy (legacy = thread-per-task, deprecated)",
);
const POOL_WORKERS: FlagSpec = opt(
    "pool-workers",
    Some("0"),
    "pooled-scheduler worker threads (0 = one per core)",
);
const PIN_CORES: FlagSpec = flag(
    "pin-cores",
    "pin pooled workers to CPU cores (Linux; needs --scheduler pooled)",
);
const REPLICATE_HOT: FlagSpec = flag(
    "replicate-hot",
    "replicate hot association groups across joiners (needs --no-expansion)",
);
const HOT_FACTOR: FlagSpec = opt(
    "hot-factor",
    Some("4.0"),
    "hot when group load > FACTOR x window docs / m (with --replicate-hot)",
);
const SHED_BUDGET: FlagSpec = opt(
    "shed-budget",
    Some("0"),
    "shed probe-only joiner input above this queue depth (0 = never shed)",
);
const MEM_BUDGET: FlagSpec = opt(
    "mem-budget",
    Some("0"),
    "spill sealed window state to disk above this many bytes (0 = resident)",
);
const SPILL_DIR: FlagSpec = opt(
    "spill-dir",
    None,
    "directory for spilled segment files (with --mem-budget; default: tmp)",
);
const WORKERS: FlagSpec = opt(
    "workers",
    Some("1"),
    "shared-nothing process-group size: shard the topology over N processes",
);
const JOINS_OUT: FlagSpec = opt(
    "joins-out",
    None,
    "write per-window join pairs to FILE (one `w: a-b ...` line per window)",
);
const WORKER_ID: FlagSpec = opt(
    "worker-id",
    None,
    "internal: worker index of this process in a group run",
);
const SOCKET_DIR: FlagSpec = opt(
    "socket-dir",
    None,
    "internal: directory holding the group's Unix sockets",
);
const ATTEMPT: FlagSpec = opt("attempt", None, "internal: group relaunch attempt number");

/// Every subcommand of the `ssj` binary.
pub const COMMANDS: &[CommandSpec] = &[
    CommandSpec {
        name: "generate",
        summary: "produce a synthetic document stream as JSON Lines",
        flags: &[
            DATASET,
            COUNT,
            SEED,
            opt("out", None, "write to FILE instead of stdout"),
        ],
    },
    CommandSpec {
        name: "join",
        summary: "join one batch of documents locally",
        flags: &[
            ALGO,
            INPUT,
            DATASET,
            COUNT,
            SEED,
            flag("emit", "print the joined documents"),
            flag("stats", "print FP-tree statistics"),
        ],
    },
    CommandSpec {
        name: "pipeline",
        summary: "run the deterministic window pipeline, print per-window metrics",
        flags: &[
            DATASET,
            INPUT,
            COUNT,
            SEED,
            M,
            WINDOW,
            WINDOWS,
            PARTITIONER,
            THETA,
            DELTA,
            CREATORS,
            ASSIGNERS,
            BUILD_WORKERS,
            BATCH,
            ALGO,
            opt(
                "window-by",
                None,
                "ATTR:WIDTH — event-time windows instead of counts",
            ),
            NO_EXPANSION,
            flag("no-joins", "route only, skip join computation"),
            flag("csv", "emit per-window rows as CSV"),
            flag("jsonl", "emit per-window rows as JSON lines"),
        ],
    },
    CommandSpec {
        name: "partition",
        summary: "create partitions from one window and dump them",
        flags: &[
            DATASET,
            INPUT,
            COUNT,
            SEED,
            M,
            PARTITIONER,
            NO_EXPANSION,
            opt("save", None, "save the partition snapshot to FILE"),
        ],
    },
    CommandSpec {
        name: "route",
        summary: "route documents with a saved partition snapshot",
        flags: &[
            opt("load", None, "partition snapshot to route with (required)"),
            INPUT,
            DATASET,
            COUNT,
            SEED,
        ],
    },
    CommandSpec {
        name: "stats",
        summary: "attribute statistics of a document batch",
        flags: &[DATASET, INPUT, COUNT, SEED],
    },
    CommandSpec {
        name: "topology",
        summary: "run the threaded Fig. 2 topology",
        flags: &[
            DATASET,
            INPUT,
            COUNT,
            SEED,
            M,
            WINDOW,
            PANE,
            SLIDE,
            PARTITIONER,
            THETA,
            DELTA,
            CREATORS,
            ASSIGNERS,
            BUILD_WORKERS,
            BATCH,
            ALGO,
            NO_EXPANSION,
            REPLICATE_HOT,
            HOT_FACTOR,
            SHED_BUDGET,
            RETRIES,
            BACKOFF_MS,
            DEGRADED,
            SCHEDULER,
            POOL_WORKERS,
            PIN_CORES,
            MEM_BUDGET,
            SPILL_DIR,
            flag("dot", "print the topology as Graphviz DOT and exit"),
        ],
    },
    CommandSpec {
        name: "run",
        summary: "run the threaded topology with full observability",
        flags: &[
            DATASET,
            INPUT,
            COUNT,
            SEED,
            M,
            WINDOW,
            PANE,
            SLIDE,
            PARTITIONER,
            THETA,
            DELTA,
            CREATORS,
            ASSIGNERS,
            BUILD_WORKERS,
            BATCH,
            ALGO,
            NO_EXPANSION,
            REPLICATE_HOT,
            HOT_FACTOR,
            SHED_BUDGET,
            RETRIES,
            BACKOFF_MS,
            DEGRADED,
            SCHEDULER,
            POOL_WORKERS,
            PIN_CORES,
            MEM_BUDGET,
            SPILL_DIR,
            WORKERS,
            METRICS_OUT,
            NO_METRICS,
            JOINS_OUT,
            WORKER_ID,
            SOCKET_DIR,
            ATTEMPT,
        ],
    },
    CommandSpec {
        name: "help",
        summary: "show this text",
        flags: &[],
    },
];

/// The usage text, generated from [`COMMANDS`].
pub fn usage() -> String {
    let mut s = String::from(
        "ssj — scale-out natural joins over schema-free JSON streams\n\n\
         USAGE: ssj <command> [options]\n\nCOMMANDS\n",
    );
    for c in COMMANDS {
        s.push_str(&format!("  {:<10} {}\n", c.name, c.summary));
        for f in c.flags {
            let left = if f.takes_value {
                format!("--{} <V>", f.name)
            } else {
                format!("--{}", f.name)
            };
            let default = match f.default {
                Some(d) => format!(" [default: {d}]"),
                None => String::new(),
            };
            s.push_str(&format!("             {left:<18} {}{default}\n", f.help));
        }
    }
    s
}

/// Parsed command line: the subcommand plus its options.
#[derive(Debug, Default)]
pub struct Args {
    /// The first positional argument (subcommand).
    pub command: Option<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
    /// Extra positionals after the subcommand.
    pub positionals: Vec<String>,
}

impl Args {
    /// Parse from an iterator of arguments (without the program name).
    /// Options are validated against the subcommand's [`CommandSpec`]:
    /// unknown options and missing values are rejected here.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Args, String> {
        let mut out = Args::default();
        let mut spec: Option<&CommandSpec> = None;
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let cmd = out.command.as_deref().unwrap_or("<none>");
                let Some(f) = spec.and_then(|s| s.flags.iter().find(|f| f.name == key)) else {
                    return Err(format!("unknown option --{key} for '{cmd}'"));
                };
                if f.takes_value {
                    let value = it
                        .next()
                        .ok_or_else(|| format!("--{key} requires a value"))?;
                    out.options.insert(key.to_owned(), value);
                } else {
                    out.flags.push(key.to_owned());
                }
            } else if out.command.is_none() {
                spec = COMMANDS.iter().find(|c| c.name == arg);
                if spec.is_none() {
                    return Err(format!("unknown command '{arg}'"));
                }
                out.command = Some(arg);
            } else {
                out.positionals.push(arg);
            }
        }
        Ok(out)
    }

    /// Raw string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Typed option with default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.options.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|e| format!("invalid value for --{key}: {e}")),
        }
    }

    /// Boolean flag presence.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Args {
        Args::parse(parts.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn subcommand_options_and_flags() {
        let a = parse(&[
            "pipeline",
            "--m",
            "8",
            "--no-expansion",
            "--dataset",
            "rwdata",
        ]);
        assert_eq!(a.command.as_deref(), Some("pipeline"));
        assert_eq!(a.get("m"), Some("8"));
        assert_eq!(a.get("dataset"), Some("rwdata"));
        assert!(a.flag("no-expansion"));
        assert!(!a.flag("csv"));
    }

    #[test]
    fn typed_defaults() {
        let a = parse(&["generate", "--count", "100"]);
        assert_eq!(a.get_or("count", 10usize).unwrap(), 100);
        assert_eq!(a.get_or("seed", 42u64).unwrap(), 42);
        assert!(a.get_or::<usize>("count", 0).is_ok());
    }

    #[test]
    fn invalid_typed_value_rejected() {
        let a = parse(&["generate", "--count", "xyz"]);
        assert!(a.get_or("count", 1usize).is_err());
    }

    #[test]
    fn missing_value_rejected() {
        let err = Args::parse(["generate".to_string(), "--count".to_string()]).unwrap_err();
        assert!(err.contains("--count"));
    }

    #[test]
    fn unknown_option_rejected_at_parse() {
        let err = Args::parse(["join".to_string(), "--frobnicate".to_string()]).unwrap_err();
        assert!(err.contains("frobnicate"), "{err}");
        // The same option is fine on a command that declares it.
        assert!(parse(&["run", "--no-metrics"]).flag("no-metrics"));
    }

    #[test]
    fn unknown_option_rejected_on_every_subcommand() {
        for c in COMMANDS {
            let err = Args::parse([c.name.to_string(), "--frobnicate".to_string()]).unwrap_err();
            assert!(
                err.contains("frobnicate") && err.contains(c.name),
                "{}: {err}",
                c.name
            );
        }
    }

    #[test]
    fn skew_flags_parse_on_topology_and_run() {
        let a = parse(&["run", "--replicate-hot", "--hot-factor", "1.5"]);
        assert!(a.flag("replicate-hot"));
        assert_eq!(a.get_or("hot-factor", 4.0).unwrap(), 1.5);
        let t = parse(&["topology", "--shed-budget", "128"]);
        assert_eq!(t.get_or("shed-budget", 0usize).unwrap(), 128);
        // Shedding and replication are runtime policies: the batch
        // pipeline has no queues to shed from and no replica routing.
        assert!(Args::parse(["pipeline".into(), "--replicate-hot".into()]).is_err());
        assert!(Args::parse(["pipeline".into(), "--shed-budget".into(), "8".into()]).is_err());
        for f in ["--replicate-hot", "--hot-factor", "--shed-budget"] {
            assert!(usage().contains(f), "usage misses {f}");
        }
    }

    #[test]
    fn unknown_command_rejected() {
        let err = Args::parse(["frobnicate".to_string()]).unwrap_err();
        assert!(err.contains("unknown command"), "{err}");
    }

    #[test]
    fn usage_is_generated_from_the_spec() {
        let text = usage();
        for c in COMMANDS {
            assert!(text.contains(c.name), "usage misses {}", c.name);
        }
        assert!(text.contains("--metrics-out"));
        assert!(text.contains("[default: 1500]"));
        assert!(text.contains("--scheduler"));
        assert!(text.contains("--pool-workers"));
        assert!(text.contains("--pin-cores"));
    }

    #[test]
    fn group_run_flags_parse() {
        let a = parse(&["run", "--workers", "3", "--joins-out", "/tmp/j.txt"]);
        assert_eq!(a.get_or("workers", 1usize).unwrap(), 3);
        assert_eq!(a.get("joins-out"), Some("/tmp/j.txt"));
        let child = parse(&[
            "run",
            "--workers",
            "2",
            "--worker-id",
            "1",
            "--socket-dir",
            "/tmp/g",
            "--attempt",
            "0",
        ]);
        assert_eq!(child.get("worker-id"), Some("1"));
        assert_eq!(child.get("socket-dir"), Some("/tmp/g"));
        assert_eq!(child.get_or("attempt", 0u32).unwrap(), 0);
        // Internal flags exist only on `run`.
        assert!(Args::parse(["topology".into(), "--worker-id".into(), "1".into()]).is_err());
    }

    #[test]
    fn spill_flags_parse_on_topology_and_run() {
        let a = parse(&["run", "--mem-budget", "67108864", "--spill-dir", "/tmp/s"]);
        assert_eq!(a.get_or("mem-budget", 0u64).unwrap(), 67_108_864);
        assert_eq!(a.get("spill-dir"), Some("/tmp/s"));
        let t = parse(&["topology", "--mem-budget", "1024"]);
        assert_eq!(t.get_or("mem-budget", 0u64).unwrap(), 1024);
        // The batch pipeline keeps every window resident: no spill knobs.
        assert!(Args::parse(["pipeline".into(), "--mem-budget".into(), "1".into()]).is_err());
        for f in ["--mem-budget", "--spill-dir"] {
            assert!(usage().contains(f), "usage misses {f}");
        }
    }

    #[test]
    fn sliding_flags_parse_on_topology_and_run() {
        let a = parse(&["run", "--pane", "250", "--slide", "4"]);
        assert_eq!(a.get("pane"), Some("250"));
        assert_eq!(a.get_or("slide", 1usize).unwrap(), 4);
        let t = parse(&["topology", "--window", "1000", "--slide", "4"]);
        assert_eq!(t.get_or("slide", 1usize).unwrap(), 4);
        // The batch pipeline is tumbling-only: no sliding flags there.
        assert!(Args::parse(["pipeline".into(), "--pane".into(), "10".into()]).is_err());
        assert!(usage().contains("--pane"));
        assert!(usage().contains("--slide"));
    }

    #[test]
    fn scheduler_flags_parse_on_topology_and_run() {
        let a = parse(&[
            "run",
            "--scheduler",
            "legacy",
            "--pool-workers",
            "4",
            "--pin-cores",
        ]);
        assert_eq!(a.get("scheduler"), Some("legacy"));
        assert_eq!(a.get_or("pool-workers", 0usize).unwrap(), 4);
        assert!(a.flag("pin-cores"));
        assert_eq!(
            parse(&["topology", "--scheduler", "pooled"]).get("scheduler"),
            Some("pooled")
        );
    }
}
