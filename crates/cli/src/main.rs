//! `ssj` — the schema-free stream-join command line.
//!
//! ```text
//! ssj generate --dataset rwdata --count 10000 --out docs.jsonl
//! ssj join     --algo fpj --input docs.jsonl [--emit]
//! ssj pipeline --dataset nbdata --m 8 --window 1500 --windows 6 --partitioner ag
//! ssj topology --dataset rwdata --count 6000 --m 4 --window 1500 [--dot]
//! ```

mod args;

use args::Args;
use ssj_core::{
    run_topology, run_topology_distributed, CsvSink, DistRuntime, HumanSummarySink, JsonlSink,
    Pipeline, ReportSink, SchedulerKind, StreamJoinConfig, TopologyRunReport,
};
use ssj_data::{NoBenchConfig, NoBenchGen, ServerLogConfig, ServerLogGen, TweetConfig, TweetGen};
use ssj_join::JoinAlgo;
use ssj_json::{write_documents_jsonl, Dictionary, DocId, Document, DocumentReader};
use ssj_partition::PartitionerKind;
use ssj_runtime::RunError;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Write};
use std::time::Instant;

fn main() {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", args::usage());
            std::process::exit(2);
        }
    };
    let result = match args.command.as_deref() {
        Some("generate") => cmd_generate(&args),
        Some("join") => cmd_join(&args),
        Some("pipeline") => cmd_pipeline(&args),
        Some("partition") => cmd_partition(&args),
        Some("route") => cmd_route(&args),
        Some("stats") => cmd_stats(&args),
        Some("topology") => cmd_topology(&args),
        Some("run") => cmd_run(&args),
        Some("help") | None => {
            print!("{}", args::usage());
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'\n\n{}", args::usage())),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn generate_docs(args: &Args, dict: &Dictionary) -> Result<Vec<Document>, String> {
    let count: usize = args.get_or("count", 10_000)?;
    let seed: u64 = args.get_or("seed", 42)?;
    match args.get("dataset").unwrap_or("rwdata") {
        "rwdata" | "rw" => Ok(ServerLogGen::new(
            ServerLogConfig {
                seed,
                ..Default::default()
            },
            dict.clone(),
        )
        .take_docs(count)),
        "nbdata" | "nb" => Ok(NoBenchGen::new(
            NoBenchConfig {
                seed,
                ..Default::default()
            },
            dict.clone(),
        )
        .take_docs(count)),
        "tweets" => Ok(TweetGen::new(
            TweetConfig {
                seed,
                ..Default::default()
            },
            dict.clone(),
        )
        .take_docs(count)),
        other => Err(format!(
            "unknown dataset '{other}' (rwdata|nbdata|tweets, aliases rw|nb)"
        )),
    }
}

fn load_docs(args: &Args, dict: &Dictionary) -> Result<Vec<Document>, String> {
    match args.get("input") {
        Some(path) => {
            let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
            let reader = DocumentReader::new(BufReader::new(file), dict.clone(), 0);
            reader
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| format!("{path}: {e}"))
        }
        None => generate_docs(args, dict),
    }
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let dict = Dictionary::new();
    let docs = generate_docs(args, &dict)?;
    let write = |w: &mut dyn Write| -> io::Result<usize> {
        let mut buf = BufWriter::new(w);
        write_documents_jsonl(&mut buf, &docs, &dict)
    };
    let n = match args.get("out") {
        Some(path) => {
            let mut file = File::create(path).map_err(|e| format!("create {path}: {e}"))?;
            write(&mut file).map_err(|e| e.to_string())?
        }
        None => write(&mut io::stdout().lock()).map_err(|e| e.to_string())?,
    };
    eprintln!("wrote {n} documents");
    Ok(())
}

fn cmd_join(args: &Args) -> Result<(), String> {
    let algo: JoinAlgo = args.get("algo").unwrap_or("fpj").parse()?;
    let dict = Dictionary::new();
    let docs = load_docs(args, &dict)?;
    let t0 = Instant::now();
    let pairs = ssj_join::join_batch(algo, &docs);
    let elapsed = t0.elapsed();
    if args.flag("stats") {
        let tree = ssj_join::FpTree::build(&docs);
        eprintln!("FP-tree: {}", ssj_join::TreeStats::of(&tree).summary());
    }
    eprintln!(
        "{}: {} documents -> {} join pairs in {:.3}s",
        algo.name(),
        docs.len(),
        pairs.len(),
        elapsed.as_secs_f64()
    );
    if args.flag("emit") {
        let by_id: ssj_json::FxHashMap<u64, &Document> =
            docs.iter().map(|d| (d.id().0, d)).collect();
        let stdout = io::stdout();
        let mut out = BufWriter::new(stdout.lock());
        for (i, (a, b)) in pairs.iter().enumerate() {
            let joined = by_id[&a.0].merge(by_id[&b.0], DocId(i as u64));
            writeln!(out, "{}", joined.to_json(&dict)).map_err(|e| e.to_string())?;
        }
        out.flush().map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Build the window shape from `--window` / `--pane` / `--slide`.
///
/// `--pane N --slide P` selects a sliding window of `P` chained panes of
/// `N` documents; `--slide` alone refines `--window` into `P` equal panes.
/// Plain `--window` keeps the classic tumbling window.
fn window_spec(args: &Args) -> Result<ssj_core::WindowSpec, String> {
    let slide: usize = args.get_or("slide", 1)?;
    let spec = match (args.get("pane"), slide) {
        (Some(raw), p) => {
            let pane: usize = raw
                .parse()
                .map_err(|e| format!("invalid value for --pane: {e}"))?;
            ssj_core::WindowSpec::sliding(pane, p)
        }
        (None, 1) => ssj_core::WindowSpec::tumbling(args.get_or("window", 1_500)?),
        (None, p) => {
            let window: usize = args.get_or("window", 1_500)?;
            if !window.is_multiple_of(p) {
                return Err(format!(
                    "--slide {p} must divide --window {window} evenly (or give --pane directly)"
                ));
            }
            ssj_core::WindowSpec::sliding(window / p, p)
        }
    };
    spec.validate().map_err(|e| e.to_string())?;
    Ok(spec)
}

fn pipeline_config(args: &Args, metrics: bool) -> Result<StreamJoinConfig, String> {
    let window = window_spec(args)?;
    let cfg = StreamJoinConfig::default()
        .with_m(args.get_or("m", 8)?)
        .with_window_spec(window)
        .with_theta(args.get_or("theta", 0.2)?)
        .with_partitioner(
            args.get("partitioner")
                .unwrap_or("ag")
                .parse::<PartitionerKind>()?,
        )
        .with_join(args.get("algo").unwrap_or("fpj").parse()?)
        // Sliding windows expire pane-by-pane, which is incompatible with
        // whole-window attribute expansion — expansion is forced off there
        // (`ConfigError::SlidingWithExpansion` would reject it anyway).
        .with_expansion(!args.flag("no-expansion") && !window.is_sliding())
        .with_delta(args.get_or("delta", 3)?)
        .with_partition_creators(args.get_or("creators", 2)?)
        .with_assigners(args.get_or("assigners", 6)?)
        .with_build_workers(args.get_or("build-workers", 2)?)
        .with_batch_size(args.get_or("batch", 64)?)
        .with_metrics(metrics)
        .with_replicate_hot(args.flag("replicate-hot"))
        .with_hot_factor(args.get_or("hot-factor", 4.0)?)
        .with_shed_budget(args.get_or("shed-budget", 0)?)
        .with_retries(args.get_or("retries", 0)?)
        .with_backoff_ms(args.get_or("backoff-ms", 20)?)
        .with_degraded(args.flag("degraded"))
        .with_scheduler(args.get_or("scheduler", SchedulerKind::Pooled)?)
        .with_pool_workers(args.get_or("pool-workers", 0)?)
        .with_pin_cores(args.flag("pin-cores"))
        .with_workers(args.get_or("workers", 1)?)
        .with_mem_budget(args.get_or("mem-budget", 0)?);
    let cfg = match args.get("spill-dir") {
        Some(dir) => cfg.with_spill_dir(dir),
        None => cfg,
    }
    .build()?;
    Ok(cfg)
}

fn cmd_pipeline(args: &Args) -> Result<(), String> {
    let cfg = pipeline_config(args, false)?;
    let dict = Dictionary::new();
    let mut docs = load_docs(args, &dict)?;
    if let Some(w) = args
        .get("windows")
        .map(|v| v.parse::<usize>().map_err(|e| e.to_string()))
        .transpose()?
    {
        docs.truncate(w * cfg.window_docs());
    }
    // Segment by count, or by an integer event-time attribute.
    let spec = match args.get("window-by") {
        Some(raw) => {
            let (attr, width) = raw
                .split_once(':')
                .ok_or("--window-by expects ATTR:WIDTH")?;
            ssj_core::SegmentSpec::ByAttribute {
                attr: attr.to_owned(),
                width: width
                    .parse()
                    .map_err(|e| format!("invalid width in --window-by: {e}"))?,
            }
        }
        None => ssj_core::SegmentSpec::Count(cfg.window_docs()),
    };
    let windows = ssj_core::windows(docs, spec, &dict);
    let mut pipeline = Pipeline::new(cfg, dict);
    pipeline.compute_joins = !args.flag("no-joins");
    // One ReportSink consumes every window as it is produced (streaming),
    // then the whole-run aggregates.
    let stdout = io::stdout();
    let out = BufWriter::new(stdout.lock());
    let mut sink: Box<dyn ReportSink> = if args.flag("csv") {
        Box::new(CsvSink::new(out))
    } else if args.flag("jsonl") {
        Box::new(JsonlSink::new(out))
    } else {
        Box::new(HumanSummarySink::new(out))
    };
    let mut reports = Vec::new();
    for window in &windows {
        let r = pipeline.process_window(window);
        sink.window(&r).map_err(|e| e.to_string())?;
        reports.push(r);
    }
    let report = ssj_core::PipelineReport { windows: reports };
    sink.finish(&report).map_err(|e| e.to_string())?;
    Ok(())
}

fn cmd_partition(args: &Args) -> Result<(), String> {
    let m: usize = args.get_or("m", 8)?;
    let kind: PartitionerKind = args.get("partitioner").unwrap_or("ag").parse()?;
    let dict = Dictionary::new();
    let docs = load_docs(args, &dict)?;
    let expansion = if args.flag("no-expansion") {
        None
    } else {
        ssj_partition::Expansion::detect(&docs, &dict, m)
    };
    if let Some(e) = &expansion {
        let chain: Vec<String> = e.chain.iter().map(|&a| dict.attr_name(a)).collect();
        println!(
            "expansion: {} -> '{}' (pna {:.3})",
            chain.join(" + "),
            dict.attr_name(e.synth_attr),
            e.pna
        );
    }
    let views: Vec<ssj_partition::View> =
        ssj_partition::batch_views(&docs, expansion.as_ref(), &dict)
            .into_iter()
            .flatten()
            .collect();
    let table = kind.create(&views, m);
    print!("{}", table.describe(&dict, 8));
    let stats = ssj_partition::route_batch(&table, &views);
    let quality = ssj_partition::WindowQuality::from_stats(&stats);
    println!(
        "
{} on {} documents: replication {:.3}, gini {:.3}, max load {:.3}",
        kind.name(),
        docs.len(),
        quality.replication,
        quality.load_balance,
        quality.max_processing_load
    );
    if let Some(path) = args.get("save") {
        let mut snapshot = ssj_json::Value::object();
        snapshot.insert("dictionary", dict.export());
        snapshot.insert("table", table.export());
        std::fs::write(path, snapshot.to_json()).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("snapshot saved to {path}");
    }
    Ok(())
}

/// Route documents with a previously saved partition snapshot: one line per
/// document listing the machines it is sent to.
fn cmd_route(args: &Args) -> Result<(), String> {
    let path = args.get("load").ok_or("route requires --load FILE")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let snapshot = ssj_json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let dict = Dictionary::import(
        snapshot
            .get("dictionary")
            .ok_or("snapshot missing 'dictionary'")?,
    )?;
    let table = ssj_partition::PartitionTable::import(
        snapshot.get("table").ok_or("snapshot missing 'table'")?,
    )?;
    let docs = load_docs(args, &dict)?;
    let m = table.m();
    let mut broadcasts = 0usize;
    let stdout = io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    for d in &docs {
        let view: Vec<ssj_json::AvpId> = d.avps().collect();
        let route = table.route(&view);
        if route.is_broadcast() {
            broadcasts += 1;
            writeln!(out, "{} -> broadcast", d.id()).map_err(|e| e.to_string())?;
        } else {
            writeln!(out, "{} -> {:?}", d.id(), route.targets(m)).map_err(|e| e.to_string())?;
        }
    }
    out.flush().map_err(|e| e.to_string())?;
    eprintln!(
        "routed {} documents over {} machines ({} broadcast)",
        docs.len(),
        m,
        broadcasts
    );
    Ok(())
}

/// Attribute statistics of one batch: per attribute the document frequency,
/// the number of distinct values, and whether it is ubiquitous — the inputs
/// to the FP-tree ordering (§V-A) and the §VI-B expansion chain.
fn cmd_stats(args: &Args) -> Result<(), String> {
    let dict = Dictionary::new();
    let docs = load_docs(args, &dict)?;
    let n = docs.len();
    let mut freq: ssj_json::FxHashMap<ssj_json::AttrId, usize> = Default::default();
    for d in &docs {
        for p in d.pairs() {
            *freq.entry(p.attr).or_insert(0) += 1;
        }
    }
    let mut rows: Vec<(String, usize, usize)> = freq
        .into_iter()
        .map(|(attr, f)| (dict.attr_name(attr), f, dict.attr_distinct_values(attr)))
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    println!(
        "{n} documents, {} attributes, {} pairs interned
",
        rows.len(),
        dict.avp_count()
    );
    println!(
        "{:<24} {:>10} {:>10} {:>10}",
        "attribute", "docs", "freq %", "distinct"
    );
    for (name, f, distinct) in rows.iter().take(30) {
        let marker = if *f == n { " *" } else { "" };
        println!(
            "{:<24} {:>10} {:>9.1}% {:>10}{marker}",
            name,
            f,
            100.0 * *f as f64 / n.max(1) as f64,
            distinct
        );
    }
    if rows.len() > 30 {
        println!("… and {} more attributes", rows.len() - 30);
    }
    println!(
        "
(* = ubiquitous: candidate for the §V-B fast path / §VI-B expansion)"
    );
    Ok(())
}

fn cmd_topology(args: &Args) -> Result<(), String> {
    let cfg = pipeline_config(args, false)?;
    let dict = Dictionary::new();
    let docs = load_docs(args, &dict)?;
    if args.flag("dot") {
        // Print the topology graph without running it.
        println!("{}", ssj_core::topology_dot(cfg));
        return Ok(());
    }
    let t0 = Instant::now();
    let report = run_topology(cfg, &dict, docs).map_err(|e| e.to_string())?;
    let elapsed = t0.elapsed();
    println!(
        "{:<7} {:>12} {:>20}",
        "window", "join pairs", "docs per joiner"
    );
    for (w, pairs) in report.joins_per_window.iter().enumerate() {
        println!(
            "{:<7} {:>12} {:>20}",
            w,
            pairs.len(),
            format!("{:?}", report.docs_per_joiner.get(w).unwrap_or(&vec![]))
        );
    }
    println!(
        "\ncompleted in {:.3}s; component counters:",
        elapsed.as_secs_f64()
    );
    for component in ["reader", "creator", "merger", "assigner", "joiner"] {
        println!(
            "  {component:<10} received {:>9}  emitted {:>9}",
            report.runtime.received(component),
            report.runtime.emitted(component)
        );
    }
    Ok(())
}

/// Run the threaded topology with the full observability layer: per-window
/// registry snapshots, latency histograms, and the window-lifecycle trace.
/// `--metrics-out FILE` dumps everything as JSON lines; stdout gets the
/// per-component summary table.
fn cmd_run(args: &Args) -> Result<(), String> {
    let metrics_on = !args.flag("no-metrics");
    let cfg = pipeline_config(args, metrics_on)?;
    let dict = Dictionary::new();
    let docs = load_docs(args, &dict)?;
    let n = docs.len();

    // Worker-process path: this process was spawned by a group leader with
    // the internal flags. Run the local shard and exit quietly — the leader
    // owns all reporting; the shared seed/input makes our dictionary (and
    // thus the wire dictionary epoch) identical to every peer's.
    if let Some(wid) = args.get("worker-id") {
        let wid: usize = wid
            .parse()
            .map_err(|e| format!("invalid --worker-id: {e}"))?;
        let dir = args
            .get("socket-dir")
            .ok_or("--worker-id requires --socket-dir")?;
        let dr = DistRuntime {
            workers: cfg.workers,
            my_worker: wid,
            socket_dir: std::path::PathBuf::from(dir),
            attempt: args.get_or("attempt", 0u32)?,
        };
        run_topology_distributed(cfg, &dict, docs, &dr).map_err(|e| e.to_string())?;
        return Ok(());
    }

    let t0 = Instant::now();
    let report = if cfg.workers > 1 {
        run_group_leader(cfg, &dict, docs)?
    } else {
        run_topology(cfg, &dict, docs).map_err(|e| e.to_string())?
    };
    let elapsed = t0.elapsed();
    if let Some(path) = args.get("metrics-out") {
        let file = File::create(path).map_err(|e| format!("create {path}: {e}"))?;
        let mut out = BufWriter::new(file);
        report
            .runtime
            .write_jsonl(&mut out)
            .and_then(|()| out.flush())
            .map_err(|e| format!("write {path}: {e}"))?;
        eprintln!(
            "wrote {} window snapshots, {} task records, {} trace events to {path}",
            report.runtime.windows.len(),
            report.runtime.tasks.len(),
            report.runtime.trace.len()
        );
    }
    print!("{}", report.runtime.summary_table());
    let faults = report.runtime.total_faults();
    if faults > 0 {
        println!(
            "faults: {} ({} crashes, {} recoveries attempted, {} succeeded, {} tasks fenced)",
            faults,
            report.runtime.counter_total("faults_crashes"),
            report.runtime.counter_total("recoveries_attempted"),
            report.runtime.counter_total("recoveries_succeeded"),
            report.runtime.counter_total("faults_fenced"),
        );
    }
    let joins: usize = report.joins_per_window.iter().map(|w| w.len()).sum();
    println!(
        "{} documents, {} windows, {} join pairs in {:.3}s ({:.0} docs/s)",
        n,
        report.joins_per_window.len(),
        joins,
        elapsed.as_secs_f64(),
        n as f64 / elapsed.as_secs_f64().max(1e-9)
    );
    if let Some(path) = args.get("joins-out") {
        write_joins(path, &report)?;
    }
    Ok(())
}

/// Write canonical per-window join output: one `w: a-b a-b ...` line per
/// window, pairs flipped to `(min, max)`, sorted, deduplicated — the same
/// canonical form `ssj_bench::testutil::RunWindows` uses, so two files are
/// byte-comparable.
fn write_joins(path: &str, report: &TopologyRunReport) -> Result<(), String> {
    let file = File::create(path).map_err(|e| format!("create {path}: {e}"))?;
    let mut out = BufWriter::new(file);
    let io = |e: io::Error| format!("write {path}: {e}");
    for (w, pairs) in report.joins_per_window.iter().enumerate() {
        let mut pairs: Vec<(u64, u64)> = pairs.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect();
        pairs.sort_unstable();
        pairs.dedup();
        write!(out, "{w}:").map_err(io)?;
        for (a, b) in pairs {
            write!(out, " {a}-{b}").map_err(io)?;
        }
        writeln!(out).map_err(io)?;
    }
    out.flush().map_err(io)
}

/// How many times the leader relaunches the whole group after a transport
/// failure (a peer process dying mid-run) before giving up.
const GROUP_ATTEMPTS: u32 = 3;

/// Leader (worker 0) of a multi-process `--workers N` run: spawn workers
/// `1..N` as child processes of this same binary with the internal flags
/// appended, run the local shard over the Unix-socket mesh, and — mirroring
/// the task supervisor one level up — relaunch the whole group with a fresh
/// attempt number when a peer dies mid-run (`RunError::Transport`). Window
/// state is rebuilt from the replayed stream, so a relaunched run's output
/// is identical to an undisturbed one.
fn run_group_leader(
    cfg: StreamJoinConfig,
    dict: &Dictionary,
    docs: Vec<Document>,
) -> Result<TopologyRunReport, String> {
    let exe = std::env::current_exe().map_err(|e| format!("resolve own executable: {e}"))?;
    let base: Vec<String> = std::env::args().skip(1).collect();
    let dir = std::env::temp_dir().join(format!("ssj-group-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let mut last = String::new();
    for attempt in 0..GROUP_ATTEMPTS {
        let mut children = Vec::new();
        for w in 1..cfg.workers {
            match std::process::Command::new(&exe)
                .args(&base)
                .arg("--worker-id")
                .arg(w.to_string())
                .arg("--socket-dir")
                .arg(&dir)
                .arg("--attempt")
                .arg(attempt.to_string())
                .stdout(std::process::Stdio::null())
                .spawn()
            {
                Ok(child) => children.push(child),
                Err(e) => {
                    for mut c in children {
                        let _ = c.kill();
                        let _ = c.wait();
                    }
                    let _ = std::fs::remove_dir_all(&dir);
                    return Err(format!("spawn worker {w}: {e}"));
                }
            }
        }
        let dr = DistRuntime {
            workers: cfg.workers,
            my_worker: 0,
            socket_dir: dir.clone(),
            attempt,
        };
        match run_topology_distributed(cfg.clone(), dict, docs.clone(), &dr) {
            Ok(report) => {
                for (w, mut c) in (1..).zip(children) {
                    match c.wait() {
                        Ok(status) if !status.success() => {
                            eprintln!("warning: worker {w} exited with {status}")
                        }
                        Ok(_) => {}
                        Err(e) => eprintln!("warning: wait for worker {w}: {e}"),
                    }
                }
                let _ = std::fs::remove_dir_all(&dir);
                return Ok(report);
            }
            // A peer died (or its link broke): kill the survivors and
            // relaunch the group under the next attempt's socket names.
            Err(RunError::Transport(errs)) => {
                for mut c in children {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                last = errs.join("; ");
                eprintln!("group attempt {attempt} failed: {last}; relaunching");
            }
            Err(e) => {
                for mut c in children {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                let _ = std::fs::remove_dir_all(&dir);
                return Err(e.to_string());
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    Err(format!(
        "group run failed after {GROUP_ATTEMPTS} attempts: {last}"
    ))
}

#[cfg(test)]
mod config_tests {
    use super::*;

    fn args(parts: &[&str]) -> Args {
        Args::parse(parts.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn window_flags_build_the_right_spec() {
        let tumbling = window_spec(&args(&["run", "--window", "600"])).unwrap();
        assert_eq!(tumbling, ssj_core::WindowSpec::tumbling(600));

        let paned = window_spec(&args(&["run", "--pane", "250", "--slide", "4"])).unwrap();
        assert_eq!(paned, ssj_core::WindowSpec::sliding(250, 4));

        // --slide splits --window into equal panes…
        let split = window_spec(&args(&["run", "--window", "1000", "--slide", "4"])).unwrap();
        assert_eq!(split, ssj_core::WindowSpec::sliding(250, 4));
        // …and rejects a non-divisible split.
        assert!(window_spec(&args(&["run", "--window", "1000", "--slide", "3"])).is_err());
        assert!(window_spec(&args(&["run", "--pane", "0"])).is_err());
    }

    #[test]
    fn sliding_config_disables_expansion() {
        let cfg = pipeline_config(&args(&["run", "--pane", "100", "--slide", "4"]), false).unwrap();
        assert!(cfg.is_sliding());
        assert_eq!(cfg.pane_docs(), 100);
        assert_eq!(cfg.panes_per_window(), 4);
        assert!(!cfg.expansion);
    }
}
