//! `ssj` — the schema-free stream-join command line.
//!
//! ```text
//! ssj generate --dataset rwdata --count 10000 --out docs.jsonl
//! ssj join     --algo fpj --input docs.jsonl [--emit]
//! ssj pipeline --dataset nbdata --m 8 --window 1500 --windows 6 --partitioner ag
//! ssj topology --dataset rwdata --count 6000 --m 4 --window 1500 [--dot]
//! ```

mod args;

use args::Args;
use ssj_core::{run_topology, Pipeline, StreamJoinConfig};
use ssj_data::{NoBenchConfig, NoBenchGen, ServerLogConfig, ServerLogGen, TweetConfig, TweetGen};
use ssj_join::JoinAlgo;
use ssj_json::{write_documents_jsonl, Dictionary, DocId, Document, DocumentReader};
use ssj_partition::PartitionerKind;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Write};
use std::time::Instant;

const USAGE: &str = "\
ssj — scale-out natural joins over schema-free JSON streams

USAGE: ssj <command> [options]

COMMANDS
  generate   produce a synthetic document stream as JSON Lines
             --dataset rwdata|nbdata|tweets  --count N  [--seed S] [--out FILE]
  join       join one batch of documents locally
             --algo fpj|nlj|hbj  [--input FILE]  [--emit]  [--stats]
  pipeline   run the deterministic window pipeline, print per-window metrics
             --dataset ...|--input FILE  --m M --window W [--windows K]
             [--partitioner ag|sc|ds|hash] [--theta T] [--delta D]
             [--no-expansion] [--count N] [--seed S] [--csv]
             [--window-by ATTR:WIDTH]   event-time windows instead of counts
  partition  create partitions from one window and dump them
             --dataset ...|--input FILE  --m M [--partitioner ag|sc|ds|hash]
             [--no-expansion] [--count N] [--seed S] [--save FILE]
  route      route documents with a saved partition snapshot
             --load FILE  [--input FILE | --dataset ... --count N]
  stats      attribute statistics of a document batch (frequency, distinct
             values, ubiquity) --dataset ...|--input FILE [--count N]
  topology   run the threaded Fig. 2 topology
             same data options; [--creators N] [--assigners N] [--dot]
             [--batch N]  transport micro-batch size (default 64, 1 = off)
  help       show this text
";

fn main() {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let result = match args.command.as_deref() {
        Some("generate") => cmd_generate(&args),
        Some("join") => cmd_join(&args),
        Some("pipeline") => cmd_pipeline(&args),
        Some("partition") => cmd_partition(&args),
        Some("route") => cmd_route(&args),
        Some("stats") => cmd_stats(&args),
        Some("topology") => cmd_topology(&args),
        Some("help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn generate_docs(args: &Args, dict: &Dictionary) -> Result<Vec<Document>, String> {
    let count: usize = args.get_or("count", 10_000)?;
    let seed: u64 = args.get_or("seed", 42)?;
    match args.get("dataset").unwrap_or("rwdata") {
        "rwdata" => Ok(ServerLogGen::new(
            ServerLogConfig {
                seed,
                ..Default::default()
            },
            dict.clone(),
        )
        .take_docs(count)),
        "nbdata" => Ok(NoBenchGen::new(
            NoBenchConfig {
                seed,
                ..Default::default()
            },
            dict.clone(),
        )
        .take_docs(count)),
        "tweets" => Ok(TweetGen::new(
            TweetConfig {
                seed,
                ..Default::default()
            },
            dict.clone(),
        )
        .take_docs(count)),
        other => Err(format!("unknown dataset '{other}' (rwdata|nbdata|tweets)")),
    }
}

fn load_docs(args: &Args, dict: &Dictionary) -> Result<Vec<Document>, String> {
    match args.get("input") {
        Some(path) => {
            let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
            let reader = DocumentReader::new(BufReader::new(file), dict.clone(), 0);
            reader
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| format!("{path}: {e}"))
        }
        None => generate_docs(args, dict),
    }
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    args.check_flags(&[])?;
    let dict = Dictionary::new();
    let docs = generate_docs(args, &dict)?;
    let write = |w: &mut dyn Write| -> io::Result<usize> {
        let mut buf = BufWriter::new(w);
        write_documents_jsonl(&mut buf, &docs, &dict)
    };
    let n = match args.get("out") {
        Some(path) => {
            let mut file = File::create(path).map_err(|e| format!("create {path}: {e}"))?;
            write(&mut file).map_err(|e| e.to_string())?
        }
        None => write(&mut io::stdout().lock()).map_err(|e| e.to_string())?,
    };
    eprintln!("wrote {n} documents");
    Ok(())
}

fn cmd_join(args: &Args) -> Result<(), String> {
    args.check_flags(&["emit", "stats"])?;
    let algo: JoinAlgo = args.get("algo").unwrap_or("fpj").parse()?;
    let dict = Dictionary::new();
    let docs = load_docs(args, &dict)?;
    let t0 = Instant::now();
    let pairs = ssj_join::join_batch(algo, &docs);
    let elapsed = t0.elapsed();
    if args.flag("stats") {
        let tree = ssj_join::FpTree::build(&docs);
        eprintln!("FP-tree: {}", ssj_join::TreeStats::of(&tree).summary());
    }
    eprintln!(
        "{}: {} documents -> {} join pairs in {:.3}s",
        algo.name(),
        docs.len(),
        pairs.len(),
        elapsed.as_secs_f64()
    );
    if args.flag("emit") {
        let by_id: ssj_json::FxHashMap<u64, &Document> =
            docs.iter().map(|d| (d.id().0, d)).collect();
        let stdout = io::stdout();
        let mut out = BufWriter::new(stdout.lock());
        for (i, (a, b)) in pairs.iter().enumerate() {
            let joined = by_id[&a.0].merge(by_id[&b.0], DocId(i as u64));
            writeln!(out, "{}", joined.to_json(&dict)).map_err(|e| e.to_string())?;
        }
        out.flush().map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn pipeline_config(args: &Args) -> Result<StreamJoinConfig, String> {
    let mut cfg = StreamJoinConfig::default()
        .with_m(args.get_or("m", 8)?)
        .with_window(args.get_or("window", 1_500)?)
        .with_theta(args.get_or("theta", 0.2)?)
        .with_partitioner(
            args.get("partitioner")
                .unwrap_or("ag")
                .parse::<PartitionerKind>()?,
        )
        .with_join(args.get("algo").unwrap_or("fpj").parse()?)
        .with_expansion(!args.flag("no-expansion"));
    cfg.delta = args.get_or("delta", 3)?;
    cfg.partition_creators = args.get_or("creators", 2)?;
    cfg.assigners = args.get_or("assigners", 6)?;
    cfg.batch_size = args.get_or("batch", cfg.batch_size)?;
    cfg.validate()?;
    Ok(cfg)
}

fn cmd_pipeline(args: &Args) -> Result<(), String> {
    args.check_flags(&["no-expansion", "no-joins", "csv"])?;
    let cfg = pipeline_config(args)?;
    let dict = Dictionary::new();
    let mut docs = load_docs(args, &dict)?;
    if let Some(w) = args
        .get("windows")
        .map(|v| v.parse::<usize>().map_err(|e| e.to_string()))
        .transpose()?
    {
        docs.truncate(w * cfg.window_docs);
    }
    // Segment by count, or by an integer event-time attribute.
    let spec = match args.get("window-by") {
        Some(raw) => {
            let (attr, width) = raw
                .split_once(':')
                .ok_or("--window-by expects ATTR:WIDTH")?;
            ssj_core::WindowSpec::ByAttribute {
                attr: attr.to_owned(),
                width: width
                    .parse()
                    .map_err(|e| format!("invalid width in --window-by: {e}"))?,
            }
        }
        None => ssj_core::WindowSpec::Count(cfg.window_docs),
    };
    let windows = ssj_core::windows(docs, spec, &dict);
    let mut pipeline = Pipeline::new(cfg, dict);
    pipeline.compute_joins = !args.flag("no-joins");
    let csv = args.flag("csv");
    if csv {
        println!("{}", ssj_core::stats::CSV_HEADER);
    } else {
        println!(
            "{:<7} {:>12} {:>8} {:>10} {:>8} {:>8} {:>10}",
            "window", "replication", "gini", "max load", "repart", "updates", "join pairs"
        );
    }
    let mut reports = Vec::new();
    for window in &windows {
        let r = pipeline.process_window(window);
        if csv {
            println!("{}", ssj_core::stats::window_csv_row(&r));
        } else {
            println!(
                "{:<7} {:>12.3} {:>8.3} {:>10.3} {:>8} {:>8} {:>10}",
                r.window,
                r.quality.replication,
                r.quality.load_balance,
                r.quality.max_processing_load,
                if r.repartitioned { "yes" } else { "-" },
                r.updates,
                r.unique_join_pairs
            );
        }
        reports.push(r);
    }
    if !csv {
        let report = ssj_core::PipelineReport { windows: reports };
        eprintln!("{}", ssj_core::summary_line(&report));
    }
    Ok(())
}

fn cmd_partition(args: &Args) -> Result<(), String> {
    args.check_flags(&["no-expansion"])?;
    let m: usize = args.get_or("m", 8)?;
    let kind: PartitionerKind = args.get("partitioner").unwrap_or("ag").parse()?;
    let dict = Dictionary::new();
    let docs = load_docs(args, &dict)?;
    let expansion = if args.flag("no-expansion") {
        None
    } else {
        ssj_partition::Expansion::detect(&docs, &dict, m)
    };
    if let Some(e) = &expansion {
        let chain: Vec<String> = e.chain.iter().map(|&a| dict.attr_name(a)).collect();
        println!(
            "expansion: {} -> '{}' (pna {:.3})",
            chain.join(" + "),
            dict.attr_name(e.synth_attr),
            e.pna
        );
    }
    let views: Vec<ssj_partition::View> =
        ssj_partition::batch_views(&docs, expansion.as_ref(), &dict)
            .into_iter()
            .flatten()
            .collect();
    let table = kind.create(&views, m);
    print!("{}", table.describe(&dict, 8));
    let stats = ssj_partition::route_batch(&table, &views);
    let quality = ssj_partition::WindowQuality::from_stats(&stats);
    println!(
        "
{} on {} documents: replication {:.3}, gini {:.3}, max load {:.3}",
        kind.name(),
        docs.len(),
        quality.replication,
        quality.load_balance,
        quality.max_processing_load
    );
    if let Some(path) = args.get("save") {
        let mut snapshot = ssj_json::Value::object();
        snapshot.insert("dictionary", dict.export());
        snapshot.insert("table", table.export());
        std::fs::write(path, snapshot.to_json()).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("snapshot saved to {path}");
    }
    Ok(())
}

/// Route documents with a previously saved partition snapshot: one line per
/// document listing the machines it is sent to.
fn cmd_route(args: &Args) -> Result<(), String> {
    args.check_flags(&[])?;
    let path = args.get("load").ok_or("route requires --load FILE")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let snapshot = ssj_json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let dict = Dictionary::import(
        snapshot
            .get("dictionary")
            .ok_or("snapshot missing 'dictionary'")?,
    )?;
    let table = ssj_partition::PartitionTable::import(
        snapshot.get("table").ok_or("snapshot missing 'table'")?,
    )?;
    let docs = load_docs(args, &dict)?;
    let m = table.m();
    let mut broadcasts = 0usize;
    let stdout = io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    for d in &docs {
        let view: Vec<ssj_json::AvpId> = d.avps().collect();
        let route = table.route(&view);
        if route.is_broadcast() {
            broadcasts += 1;
            writeln!(out, "{} -> broadcast", d.id()).map_err(|e| e.to_string())?;
        } else {
            writeln!(out, "{} -> {:?}", d.id(), route.targets(m)).map_err(|e| e.to_string())?;
        }
    }
    out.flush().map_err(|e| e.to_string())?;
    eprintln!(
        "routed {} documents over {} machines ({} broadcast)",
        docs.len(),
        m,
        broadcasts
    );
    Ok(())
}

/// Attribute statistics of one batch: per attribute the document frequency,
/// the number of distinct values, and whether it is ubiquitous — the inputs
/// to the FP-tree ordering (§V-A) and the §VI-B expansion chain.
fn cmd_stats(args: &Args) -> Result<(), String> {
    args.check_flags(&[])?;
    let dict = Dictionary::new();
    let docs = load_docs(args, &dict)?;
    let n = docs.len();
    let mut freq: ssj_json::FxHashMap<ssj_json::AttrId, usize> = Default::default();
    for d in &docs {
        for p in d.pairs() {
            *freq.entry(p.attr).or_insert(0) += 1;
        }
    }
    let mut rows: Vec<(String, usize, usize)> = freq
        .into_iter()
        .map(|(attr, f)| (dict.attr_name(attr), f, dict.attr_distinct_values(attr)))
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    println!(
        "{n} documents, {} attributes, {} pairs interned
",
        rows.len(),
        dict.avp_count()
    );
    println!(
        "{:<24} {:>10} {:>10} {:>10}",
        "attribute", "docs", "freq %", "distinct"
    );
    for (name, f, distinct) in rows.iter().take(30) {
        let marker = if *f == n { " *" } else { "" };
        println!(
            "{:<24} {:>10} {:>9.1}% {:>10}{marker}",
            name,
            f,
            100.0 * *f as f64 / n.max(1) as f64,
            distinct
        );
    }
    if rows.len() > 30 {
        println!("… and {} more attributes", rows.len() - 30);
    }
    println!(
        "
(* = ubiquitous: candidate for the §V-B fast path / §VI-B expansion)"
    );
    Ok(())
}

fn cmd_topology(args: &Args) -> Result<(), String> {
    args.check_flags(&["no-expansion", "dot"])?;
    let cfg = pipeline_config(args)?;
    let dict = Dictionary::new();
    let docs = load_docs(args, &dict)?;
    if args.flag("dot") {
        // Print the topology graph without running it.
        println!("{}", ssj_core::topology_dot(cfg));
        return Ok(());
    }
    let t0 = Instant::now();
    let report = run_topology(cfg, &dict, docs).map_err(|e| e.to_string())?;
    let elapsed = t0.elapsed();
    println!(
        "{:<7} {:>12} {:>20}",
        "window", "join pairs", "docs per joiner"
    );
    for (w, pairs) in report.joins_per_window.iter().enumerate() {
        println!(
            "{:<7} {:>12} {:>20}",
            w,
            pairs.len(),
            format!("{:?}", report.docs_per_joiner.get(w).unwrap_or(&vec![]))
        );
    }
    println!(
        "\ncompleted in {:.3}s; component counters:",
        elapsed.as_secs_f64()
    );
    for component in ["reader", "creator", "merger", "assigner", "joiner"] {
        println!(
            "  {component:<10} received {:>9}  emitted {:>9}",
            report.runtime.received(component),
            report.runtime.emitted(component)
        );
    }
    Ok(())
}
