//! True multi-process scale-out, end to end through the `ssj` binary: a
//! `run --workers 2` process group (leader + one spawned worker talking
//! over Unix sockets) must produce per-window join output byte-identical
//! to the plain single-process run — including when one worker process is
//! killed mid-run and the leader relaunches the group.

use proptest::prelude::*;
use ssj_bench::testutil::{assert_runs_equal, RunWindows};
use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_ssj")
}

/// Parse a `--joins-out` file (`w: a-b a-b ...` per window) back into the
/// canonical per-window form.
fn read_joins(path: &Path) -> RunWindows {
    let text = std::fs::read_to_string(path).expect("read joins file");
    let mut windows: Vec<(usize, Vec<(u64, u64)>)> = Vec::new();
    for line in text.lines() {
        let (w, rest) = line.split_once(':').expect("malformed joins line");
        let pairs = rest
            .split_whitespace()
            .map(|p| {
                let (a, b) = p.split_once('-').expect("malformed pair");
                (a.parse().unwrap(), b.parse().unwrap())
            })
            .collect();
        windows.push((w.parse().unwrap(), pairs));
    }
    windows.sort_by_key(|(w, _)| *w);
    assert!(
        windows.iter().enumerate().all(|(i, (w, _))| i == *w),
        "joins file has missing or duplicate windows"
    );
    RunWindows::from_pairs(windows.into_iter().map(|(_, pairs)| pairs))
}

fn out_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ssj-cli-dist-{}-{tag}.txt", std::process::id()))
}

/// Run `ssj run` with the given stream/topology parameters and return the
/// canonicalized join output.
fn run_ssj(seed: u64, m: usize, workers: usize, kill: Option<&str>, tag: &str) -> RunWindows {
    let path = out_path(tag);
    let mut cmd = Command::new(bin());
    cmd.args(["run", "--dataset", "rwdata", "--count", "600"])
        .args(["--seed", &seed.to_string()])
        .args(["--m", &m.to_string()])
        .args(["--window", "200", "--creators", "2", "--assigners", "2"])
        .args(["--batch", "16", "--no-metrics"])
        .args(["--workers", &workers.to_string()])
        .args(["--joins-out", path.to_str().unwrap()])
        .stdout(std::process::Stdio::null());
    match kill {
        // Scoped to this run only: the spec names one (worker, attempt).
        Some(spec) => cmd.env("SSJ_KILL_WORKER", spec),
        None => cmd.env_remove("SSJ_KILL_WORKER"),
    };
    let status = cmd.status().expect("launch ssj");
    assert!(status.success(), "ssj run failed: {status}");
    let joins = read_joins(&path);
    let _ = std::fs::remove_file(&path);
    joins
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The §4f acceptance property, through real processes: a 2-process
    /// Unix-socket group run equals the single-process pooled run.
    #[test]
    fn two_process_run_matches_single_process(seed in 0u64..1 << 32, m in 2usize..5) {
        let solo = run_ssj(seed, m, 1, None, &format!("solo-{seed}-{m}"));
        let group = run_ssj(seed, m, 2, None, &format!("group-{seed}-{m}"));
        assert_runs_equal(&solo, &group);
    }
}

/// Killing worker 1 on the group's first attempt forces the leader through
/// the peer-disconnect path and a full group relaunch; the recovered run's
/// output must still be byte-identical to the single-process run.
#[test]
fn killed_worker_recovers_with_identical_output() {
    let solo = run_ssj(99, 3, 1, None, "solo-kill");
    let recovered = run_ssj(99, 3, 2, Some("1:0"), "group-kill");
    assert_runs_equal(&solo, &recovered);
}
