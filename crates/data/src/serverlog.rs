//! The real-world dataset substitute (§VII-B "rwData").
//!
//! The paper's real dataset — 46 M JSON server-log documents (user logins
//! and file accesses) from a mid-size company — is proprietary. This
//! generator reproduces the three characteristics the paper identifies as
//! driving the experiments:
//!
//! 1. **Skewed value frequencies** — users and IPs follow a power law, a few
//!    locations/severities dominate;
//! 2. **Stable co-occurrence structure** — message ids determine severities
//!    (equivalence / implication groups for the AG algorithm to find), event
//!    kinds fix which attributes appear together, and a shared `Severity`
//!    attribute interconnects most documents (the property that makes HBJ
//!    posting lists degenerate, Fig. 11c);
//! 3. **Per-window novelty** — a configurable fraction of each window's
//!    documents carries previously unseen attribute-value pairs (new users,
//!    new IPs, new file paths), which the paper observes "surprisingly" also
//!    holds for the real data.
//!
//! Deterministic under a fixed seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssj_json::{Dictionary, DocId, Document, Pair, Scalar};

/// Tunables of the server-log stream.
#[derive(Debug, Clone, Copy)]
pub struct ServerLogConfig {
    /// RNG seed (fixed → reproducible stream).
    pub seed: u64,
    /// Size of the initial user population.
    pub base_users: usize,
    /// Size of the initial IP pool.
    pub base_ips: usize,
    /// Number of locations (small domain).
    pub locations: usize,
    /// Number of distinct message ids; each implies one severity.
    pub msg_ids: usize,
    /// Fraction of documents carrying previously unseen values (novelty).
    pub novelty: f64,
    /// Power-law skew exponent for user/IP popularity (1.0 ≈ Zipf).
    pub skew: f64,
    /// Documents per simulated day. Every document carries an `Hour`
    /// attribute (48 half-hour slots cycling with the stream position):
    /// natural-join partners must agree on it, exactly like timestamped log
    /// records — this bounds the join result instead of letting it grow
    /// quadratically in the window.
    pub docs_per_day: u64,
}

impl Default for ServerLogConfig {
    fn default() -> Self {
        ServerLogConfig {
            seed: 42,
            base_users: 300,
            base_ips: 150,
            locations: 5,
            msg_ids: 40,
            novelty: 0.15,
            skew: 1.1,
            docs_per_day: 2_400,
        }
    }
}

const SEVERITIES: [&str; 4] = ["Info", "Warning", "Error", "Critical"];
const ACTIONS: [&str; 3] = ["read", "write", "delete"];
const STATUSES: [&str; 3] = ["ok", "denied", "failed"];

/// Streaming generator of server-log documents.
pub struct ServerLogGen {
    cfg: ServerLogConfig,
    rng: StdRng,
    dict: Dictionary,
    next_id: u64,
    /// Grows over time to model the paper's per-window novelty.
    fresh_users: u64,
    fresh_ips: u64,
    fresh_files: u64,
}

impl ServerLogGen {
    /// A generator writing pairs into `dict`.
    pub fn new(cfg: ServerLogConfig, dict: Dictionary) -> Self {
        ServerLogGen {
            rng: StdRng::seed_from_u64(cfg.seed),
            dict,
            next_id: 0,
            fresh_users: 0,
            fresh_ips: 0,
            fresh_files: 0,
            cfg,
        }
    }

    /// The shared dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// Power-law index in `[0, n)`: small indices are much more likely.
    fn skewed_index(&mut self, n: usize) -> usize {
        let u: f64 = self.rng.gen_range(0.0f64..1.0);
        // Inverse-CDF of a bounded Pareto-like distribution.
        let exp = 1.0 / (self.cfg.skew + 1.0);
        let idx = (n as f64) * u.powf(1.0 / exp).powf(exp * exp + 1.0);
        (idx as usize).min(n - 1)
    }

    fn user(&mut self) -> String {
        if self.rng.gen_bool(self.cfg.novelty) {
            self.fresh_users += 1;
            format!("user{}", self.cfg.base_users as u64 + self.fresh_users)
        } else {
            format!("user{}", self.skewed_index(self.cfg.base_users))
        }
    }

    fn ip(&mut self) -> String {
        if self.rng.gen_bool(self.cfg.novelty) {
            self.fresh_ips += 1;
            let v = self.cfg.base_ips as u64 + self.fresh_ips;
            format!("10.9.{}.{}", (v / 250) % 250, v % 250)
        } else {
            let v = self.skewed_index(self.cfg.base_ips) as u64;
            format!("10.2.{}.{}", (v / 250) % 250, v % 250)
        }
    }

    fn file(&mut self) -> String {
        if self.rng.gen_bool(self.cfg.novelty / 2.0) {
            self.fresh_files += 1;
            format!("/srv/new/doc{}.dat", self.fresh_files)
        } else {
            format!("/srv/share/f{}.txt", self.skewed_index(200))
        }
    }

    /// Generate the next document.
    pub fn next_doc(&mut self) -> Document {
        let id = DocId(self.next_id);
        self.next_id += 1;
        let mut pairs: Vec<Pair> = Vec::with_capacity(6);
        let put = |dict: &Dictionary, pairs: &mut Vec<Pair>, a: &str, v: Scalar| {
            pairs.push(dict.intern(a, v));
        };
        let dict = self.dict.clone();

        // MsgId determines Severity: a stable implication for AG to mine.
        let msg_id = self.skewed_index(self.cfg.msg_ids) as i64;
        let severity = SEVERITIES[(msg_id as usize) % SEVERITIES.len()];
        let location = format!("dc{}", self.skewed_index(self.cfg.locations));

        // A timestamp attribute present in every record: the half-hour slot
        // of the day, cycling with the stream. It is ubiquitous, so it sits
        // in the FP-tree's first levels (the §V-B fast path) and gates the
        // join — partners must share the time bucket — and with 48 recurring
        // values it is the natural combining attribute for §VI-B expansion.
        let hour = ((id.0 % self.cfg.docs_per_day) * 48 / self.cfg.docs_per_day) as i64;
        put(&dict, &mut pairs, "Hour", Scalar::Int(hour));

        match self.rng.gen_range(0..10) {
            // Login events (40%): User + Location + Severity (+ MsgId).
            0..=3 => {
                let user = self.user();
                put(&dict, &mut pairs, "User", Scalar::Str(user));
                put(&dict, &mut pairs, "Severity", Scalar::Str(severity.into()));
                put(&dict, &mut pairs, "Location", Scalar::Str(location));
                if self.rng.gen_bool(0.6) {
                    put(&dict, &mut pairs, "MsgId", Scalar::Int(msg_id));
                }
            }
            // File accesses (30%): User + File + Action + Status.
            4..=6 => {
                let user = self.user();
                let file = self.file();
                put(&dict, &mut pairs, "User", Scalar::Str(user));
                put(&dict, &mut pairs, "File", Scalar::Str(file));
                put(
                    &dict,
                    &mut pairs,
                    "Action",
                    Scalar::Str(ACTIONS[self.rng.gen_range(0..ACTIONS.len())].into()),
                );
                put(
                    &dict,
                    &mut pairs,
                    "Status",
                    Scalar::Str(STATUSES[self.skewed_index(STATUSES.len())].into()),
                );
                // Severity is present in every event kind (cf. Fig. 1): the
                // ubiquitous small-domain attribute that §VI-B expands.
                put(&dict, &mut pairs, "Severity", Scalar::Str(severity.into()));
            }
            // Network alerts (20%): IP + Severity + MsgId.
            7..=8 => {
                let ip = self.ip();
                put(&dict, &mut pairs, "IP", Scalar::Str(ip));
                put(&dict, &mut pairs, "Severity", Scalar::Str(severity.into()));
                put(&dict, &mut pairs, "MsgId", Scalar::Int(msg_id));
            }
            // System events (10%): Location + Severity + Component.
            _ => {
                put(&dict, &mut pairs, "Location", Scalar::Str(location));
                put(&dict, &mut pairs, "Severity", Scalar::Str(severity.into()));
                put(
                    &dict,
                    &mut pairs,
                    "Component",
                    Scalar::Str(format!("svc{}", self.skewed_index(12))),
                );
            }
        }
        Document::from_pairs(id, pairs)
    }

    /// Generate `n` documents.
    pub fn take_docs(&mut self, n: usize) -> Vec<Document> {
        (0..n).map(|_| self.next_doc()).collect()
    }
}

impl Iterator for ServerLogGen {
    type Item = Document;
    fn next(&mut self) -> Option<Document> {
        Some(self.next_doc())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_json::FxHashSet;

    #[test]
    fn deterministic_under_seed() {
        let d1 = Dictionary::new();
        let d2 = Dictionary::new();
        let a = ServerLogGen::new(ServerLogConfig::default(), d1.clone()).take_docs(100);
        let b = ServerLogGen::new(ServerLogConfig::default(), d2.clone()).take_docs(100);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_json(&d1), y.to_json(&d2));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let dict = Dictionary::new();
        let a = ServerLogGen::new(ServerLogConfig::default(), dict.clone()).take_docs(50);
        let cfg = ServerLogConfig {
            seed: 7,
            ..Default::default()
        };
        let b = ServerLogGen::new(cfg, dict.clone()).take_docs(50);
        let ja: Vec<String> = a.iter().map(|d| d.to_json(&dict)).collect();
        let jb: Vec<String> = b.iter().map(|d| d.to_json(&dict)).collect();
        assert_ne!(ja, jb);
    }

    #[test]
    fn users_are_skewed() {
        let dict = Dictionary::new();
        let mut g = ServerLogGen::new(
            ServerLogConfig {
                novelty: 0.0,
                ..Default::default()
            },
            dict.clone(),
        );
        let user_attr = dict.intern_attr("User");
        let mut counts: std::collections::HashMap<u32, usize> = Default::default();
        for _ in 0..5000 {
            let d = g.next_doc();
            if let Some(p) = d.pair_for_attr(user_attr) {
                *counts.entry(p.avp.0).or_insert(0) += 1;
            }
        }
        let mut freq: Vec<usize> = counts.values().copied().collect();
        freq.sort_unstable_by(|a, b| b.cmp(a));
        // The most popular user must be far above the median.
        let median = freq[freq.len() / 2];
        assert!(
            freq[0] > median * 5,
            "no skew: top={} median={median}",
            freq[0]
        );
    }

    #[test]
    fn novelty_introduces_unseen_values() {
        let dict = Dictionary::new();
        let mut g = ServerLogGen::new(ServerLogConfig::default(), dict.clone());
        let w1 = g.take_docs(2000);
        let w2 = g.take_docs(2000);
        let avps1: FxHashSet<u32> = w1.iter().flat_map(|d| d.avps()).map(|a| a.0).collect();
        let unseen = w2
            .iter()
            .flat_map(|d| d.avps())
            .filter(|a| !avps1.contains(&a.0))
            .count();
        assert!(unseen > 50, "only {unseen} unseen pairs in window 2");
    }

    #[test]
    fn msgid_implies_severity() {
        let dict = Dictionary::new();
        let mut g = ServerLogGen::new(ServerLogConfig::default(), dict.clone());
        let msg_attr = dict.intern_attr("MsgId");
        let sev_attr = dict.intern_attr("Severity");
        let mut seen: std::collections::HashMap<u32, u32> = Default::default();
        for _ in 0..3000 {
            let d = g.next_doc();
            if let (Some(m), Some(s)) = (d.pair_for_attr(msg_attr), d.pair_for_attr(sev_attr)) {
                let prev = seen.insert(m.avp.0, s.avp.0);
                if let Some(prev) = prev {
                    assert_eq!(prev, s.avp.0, "MsgId must determine Severity");
                }
            }
        }
        assert!(!seen.is_empty());
    }

    #[test]
    fn ids_are_unique_and_sequential() {
        let dict = Dictionary::new();
        let docs = ServerLogGen::new(ServerLogConfig::default(), dict).take_docs(10);
        for (i, d) in docs.iter().enumerate() {
            assert_eq!(d.id(), DocId(i as u64));
        }
    }
}
