//! The "ideal execution" dataset of §VII-E-4.
//!
//! The paper derives it from the real-world data by taking one time-window
//! and repeating it, injecting only "a predefined, small number of
//! previously unseen documents" into every repetition. With stable
//! co-occurrence characteristics, the measured replication and load are a
//! direct product of the partitioning algorithm rather than of novelty
//! broadcasts.

use ssj_json::{Dictionary, DocId, Document, Scalar};

/// Configuration for the repeated-window stream.
#[derive(Debug, Clone, Copy)]
pub struct IdealConfig {
    /// How many windows to produce.
    pub windows: usize,
    /// Previously unseen documents injected per repeated window.
    pub novel_per_window: usize,
}

impl Default for IdealConfig {
    fn default() -> Self {
        IdealConfig {
            windows: 8,
            novel_per_window: 10,
        }
    }
}

/// Build the ideal-execution stream: `cfg.windows` copies of `base`, each
/// copy re-identified and carrying `novel_per_window` brand-new documents.
/// Returns the documents window by window.
pub fn ideal_stream(base: &[Document], cfg: IdealConfig, dict: &Dictionary) -> Vec<Vec<Document>> {
    let mut next_id: u64 = base.iter().map(|d| d.id().0).max().map_or(0, |m| m + 1);
    let mut novel_counter: u64 = 0;
    let mut out = Vec::with_capacity(cfg.windows);
    for w in 0..cfg.windows {
        let mut window: Vec<Document> = Vec::with_capacity(base.len() + cfg.novel_per_window);
        for d in base {
            // Same pairs, fresh identity: the repeated window.
            window.push(Document::from_pairs(DocId(next_id), d.pairs().to_vec()));
            next_id += 1;
        }
        for _ in 0..cfg.novel_per_window {
            novel_counter += 1;
            // Entirely new attribute-value pairs: a unique attribute with a
            // unique value plus a unique tag, never joinable with the base.
            let pairs = vec![
                dict.intern(
                    &format!("novel_attr_{}", novel_counter % 17),
                    Scalar::Str(format!("nv{novel_counter}")),
                ),
                dict.intern("novel_tag", Scalar::Int(novel_counter as i64)),
            ];
            window.push(Document::from_pairs(DocId(next_id), pairs));
            next_id += 1;
        }
        let _ = w;
        out.push(window);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serverlog::{ServerLogConfig, ServerLogGen};
    use ssj_json::FxHashSet;

    fn base(dict: &Dictionary, n: usize) -> Vec<Document> {
        ServerLogGen::new(ServerLogConfig::default(), dict.clone()).take_docs(n)
    }

    #[test]
    fn window_sizes_and_count() {
        let dict = Dictionary::new();
        let b = base(&dict, 100);
        let cfg = IdealConfig {
            windows: 5,
            novel_per_window: 7,
        };
        let ws = ideal_stream(&b, cfg, &dict);
        assert_eq!(ws.len(), 5);
        for w in &ws {
            assert_eq!(w.len(), 107);
        }
    }

    #[test]
    fn repeated_documents_have_same_pairs_fresh_ids() {
        let dict = Dictionary::new();
        let b = base(&dict, 20);
        let ws = ideal_stream(&b, IdealConfig::default(), &dict);
        let mut ids: FxHashSet<u64> = b.iter().map(|d| d.id().0).collect();
        for w in &ws {
            for d in w {
                assert!(ids.insert(d.id().0), "duplicate document id {}", d.id());
            }
        }
        // First copy of the first window has the base's pair sets.
        for (orig, copy) in b.iter().zip(&ws[0]) {
            assert_eq!(orig.pairs(), copy.pairs());
        }
    }

    #[test]
    fn novel_documents_use_unseen_pairs() {
        let dict = Dictionary::new();
        let b = base(&dict, 50);
        let base_avps: FxHashSet<u32> = b.iter().flat_map(|d| d.avps()).map(|a| a.0).collect();
        let ws = ideal_stream(
            &b,
            IdealConfig {
                windows: 2,
                novel_per_window: 5,
            },
            &dict,
        );
        let novel = &ws[0][50..];
        for d in novel {
            assert!(
                d.avps().all(|a| !base_avps.contains(&a.0)),
                "novel doc shares pairs with the base window"
            );
        }
    }

    #[test]
    fn zero_novelty_repeats_exactly() {
        let dict = Dictionary::new();
        let b = base(&dict, 30);
        let ws = ideal_stream(
            &b,
            IdealConfig {
                windows: 3,
                novel_per_window: 0,
            },
            &dict,
        );
        for w in &ws {
            assert_eq!(w.len(), 30);
            for (orig, copy) in b.iter().zip(w) {
                assert_eq!(orig.pairs(), copy.pairs());
            }
        }
    }
}
