//! NoBench-style synthetic JSON generator (§VII-B "nbData", after Chasseur
//! et al. \[35\]).
//!
//! Reproduces the structural properties of the NoBench object shape the
//! paper relies on:
//!
//! * `str1` / `str2` — strings from pools of different sizes;
//! * `num` — **removed**, exactly as the paper does (it is unique per object
//!   and would make documents unjoinable);
//! * `bool` — a ubiquitous Boolean: the disabling attribute that forces the
//!   attribute-value expansion of §VI-B;
//! * `dyn1` / `dyn2` — dynamically typed attributes (int or string);
//! * `nested_obj.str` / `nested_obj.num` — a nested object, flattened to
//!   dotted paths;
//! * `nested_arr[i]` — a nested array of strings;
//! * `sparse_XXX` — each object carries a run of 10 out of 1000 sparse
//!   attributes, giving the "largely diverse elements" that make every
//!   window introduce many previously unseen pairs (the behaviour behind
//!   the 50 % repartition rate of Fig. 9b).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssj_json::{Dictionary, DocId, Document, Pair, Scalar};

/// Tunables of the NoBench stream.
#[derive(Debug, Clone, Copy)]
pub struct NoBenchConfig {
    /// RNG seed.
    pub seed: u64,
    /// Pool size for `str1` (large domain).
    pub str1_pool: usize,
    /// Pool size for `str2` (small domain).
    pub str2_pool: usize,
    /// Number of sparse attribute clusters (NoBench uses 100 clusters of 10
    /// over 1000 sparse attributes).
    pub sparse_clusters: usize,
    /// Fraction of sparse values drawn fresh (never seen before).
    pub novelty: f64,
}

impl Default for NoBenchConfig {
    fn default() -> Self {
        NoBenchConfig {
            seed: 7,
            str1_pool: 800,
            str2_pool: 60,
            sparse_clusters: 100,
            novelty: 0.25,
        }
    }
}

/// Streaming generator of NoBench-like documents.
pub struct NoBenchGen {
    cfg: NoBenchConfig,
    rng: StdRng,
    dict: Dictionary,
    next_id: u64,
    fresh_counter: u64,
}

impl NoBenchGen {
    /// A generator writing pairs into `dict`.
    pub fn new(cfg: NoBenchConfig, dict: Dictionary) -> Self {
        NoBenchGen {
            rng: StdRng::seed_from_u64(cfg.seed),
            dict,
            next_id: 0,
            fresh_counter: 0,
            cfg,
        }
    }

    /// The shared dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    fn sparse_value(&mut self) -> String {
        if self.rng.gen_bool(self.cfg.novelty) {
            self.fresh_counter += 1;
            format!("fresh{}", self.fresh_counter)
        } else {
            format!("sv{}", self.rng.gen_range(0..500))
        }
    }

    /// Generate the next document.
    pub fn next_doc(&mut self) -> Document {
        let id = DocId(self.next_id);
        self.next_id += 1;
        let dict = self.dict.clone();
        let mut pairs: Vec<Pair> = Vec::with_capacity(12);

        // Real NoBench objects carry every core attribute (only `num` is
        // removed, as the paper does). Joins over nbData are therefore
        // rare — partners must agree on every one of these — which is why
        // the paper's FPJ stays in seconds on half a million documents.
        pairs.push(dict.intern("bool", Scalar::Bool(self.rng.gen_bool(0.5))));

        // str1 / str2: strings from pools of different sizes.
        let s1 = self.rng.gen_range(0..self.cfg.str1_pool);
        pairs.push(dict.intern("str1", Scalar::Str(format!("a{s1}"))));
        let s2 = self.rng.gen_range(0..self.cfg.str2_pool);
        pairs.push(dict.intern("str2", Scalar::Str(format!("b{s2}"))));

        // dyn1 / dyn2: dynamically typed.
        if self.rng.gen_bool(0.5) {
            pairs.push(dict.intern("dyn1", Scalar::Int(self.rng.gen_range(0..100))));
        } else {
            pairs.push(dict.intern(
                "dyn1",
                Scalar::Str(format!("d{}", self.rng.gen_range(0..100))),
            ));
        }
        if self.rng.gen_bool(0.5) {
            pairs.push(dict.intern("dyn2", Scalar::Int(self.rng.gen_range(0..40))));
        } else {
            pairs.push(dict.intern(
                "dyn2",
                Scalar::Str(format!("e{}", self.rng.gen_range(0..40))),
            ));
        }

        // nested_obj: flattened to dotted paths.
        pairs.push(dict.intern(
            "nested_obj.str",
            Scalar::Str(format!("n{}", self.rng.gen_range(0..200))),
        ));
        pairs.push(dict.intern("nested_obj.num", Scalar::Int(self.rng.gen_range(0..50))));

        // nested_arr: 0..4 string elements, indexed paths.
        let arr_len = self.rng.gen_range(0..4);
        for i in 0..arr_len {
            let v = self.rng.gen_range(0..150);
            pairs.push(dict.intern(&format!("nested_arr[{i}]"), Scalar::Str(format!("t{v}"))));
        }

        // sparse cluster: 10 consecutive sparse attributes.
        let cluster = self.rng.gen_range(0..self.cfg.sparse_clusters);
        for j in 0..10 {
            let attr = format!("sparse_{:03}", cluster * 10 + j);
            let v = self.sparse_value();
            pairs.push(dict.intern(&attr, Scalar::Str(v)));
        }

        Document::from_pairs(id, pairs)
    }

    /// Generate `n` documents.
    pub fn take_docs(&mut self, n: usize) -> Vec<Document> {
        (0..n).map(|_| self.next_doc()).collect()
    }
}

impl Iterator for NoBenchGen {
    type Item = Document;
    fn next(&mut self) -> Option<Document> {
        Some(self.next_doc())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_json::FxHashSet;

    #[test]
    fn bool_is_ubiquitous_with_two_values() {
        let dict = Dictionary::new();
        let mut g = NoBenchGen::new(NoBenchConfig::default(), dict.clone());
        let docs = g.take_docs(500);
        let battr = dict.intern_attr("bool");
        for d in &docs {
            assert!(d.has_attr(battr), "bool missing from {}", d.id());
        }
        assert_eq!(dict.attr_distinct_values(battr), 2);
    }

    #[test]
    fn num_attribute_is_absent() {
        let dict = Dictionary::new();
        let mut g = NoBenchGen::new(NoBenchConfig::default(), dict.clone());
        g.take_docs(200);
        assert!(
            dict.lookup("num", &Scalar::Int(0)).is_none(),
            "top-level num must be removed per the paper"
        );
    }

    #[test]
    fn sparse_attributes_cluster_in_runs_of_ten() {
        let dict = Dictionary::new();
        let mut g = NoBenchGen::new(NoBenchConfig::default(), dict.clone());
        let d = g.next_doc();
        let sparse: Vec<String> = d
            .pairs()
            .iter()
            .map(|p| dict.attr_name(p.attr))
            .filter(|n| n.starts_with("sparse_"))
            .collect();
        assert_eq!(sparse.len(), 10);
        let mut nums: Vec<usize> = sparse
            .iter()
            .map(|n| n["sparse_".len()..].parse().unwrap())
            .collect();
        nums.sort();
        for w in nums.windows(2) {
            assert_eq!(w[1], w[0] + 1, "cluster must be consecutive: {nums:?}");
        }
        assert_eq!(nums[0] % 10, 0);
    }

    #[test]
    fn windows_keep_introducing_unseen_pairs() {
        let dict = Dictionary::new();
        let mut g = NoBenchGen::new(NoBenchConfig::default(), dict.clone());
        let w1 = g.take_docs(1000);
        let w2 = g.take_docs(1000);
        let seen: FxHashSet<u32> = w1.iter().flat_map(|d| d.avps()).map(|a| a.0).collect();
        let unseen = w2
            .iter()
            .filter(|d| d.avps().any(|a| !seen.contains(&a.0)))
            .count();
        // The paper: "in every subsequent window [a] large number of the
        // documents consist of previously unseen attribute-value pairs".
        assert!(unseen > 500, "only {unseen}/1000 docs carry unseen pairs");
    }

    #[test]
    fn deterministic_under_seed() {
        let d1 = Dictionary::new();
        let d2 = Dictionary::new();
        let a = NoBenchGen::new(NoBenchConfig::default(), d1.clone()).take_docs(50);
        let b = NoBenchGen::new(NoBenchConfig::default(), d2.clone()).take_docs(50);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_json(&d1), y.to_json(&d2));
        }
    }

    #[test]
    fn core_attributes_always_present() {
        // Real NoBench objects carry every core attribute; joins over
        // nbData are correspondingly rare (partners must agree on all of
        // them), which the evaluation relies on.
        let dict = Dictionary::new();
        let mut g = NoBenchGen::new(NoBenchConfig::default(), dict.clone());
        let docs = g.take_docs(200);
        for name in ["bool", "str1", "str2", "dyn1", "dyn2", "nested_obj.str"] {
            let attr = dict.intern_attr(name);
            for d in &docs {
                assert!(d.has_attr(attr), "{name} missing from {}", d.id());
            }
        }
    }

    #[test]
    fn identical_core_documents_join() {
        // Sanity: the join definition still admits results on nbData when
        // all shared attributes agree.
        let dict = Dictionary::new();
        let mut g = NoBenchGen::new(NoBenchConfig::default(), dict.clone());
        let docs = g.take_docs(2);
        let clone_pairs = docs[0].pairs().to_vec();
        let twin = ssj_json::Document::from_pairs(ssj_json::DocId(999), clone_pairs);
        assert!(docs[0].joins_with(&twin));
    }
}
