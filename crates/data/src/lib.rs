//! # ssj-data — workload generators for the evaluation (§VII-B)
//!
//! * [`serverlog`] — the substitute for the paper's proprietary real-world
//!   server-log dataset ("rwData"): skewed users/IPs, stable implication
//!   structure (MsgId → Severity), per-window novelty;
//! * [`nobench`] — a NoBench-style synthetic generator ("nbData") with the
//!   unique `num` attribute removed, a ubiquitous Boolean (forcing §VI-B
//!   expansion), and highly diverse sparse attributes;
//! * [`ideal`] — the repeated-window stream of the ideal-execution
//!   experiment (§VII-E-4);
//! * [`tweets`] — a tweet-like stream (the paper's introductory motivation),
//!   beyond the evaluated datasets: nested users, hashtag arrays, trending
//!   drift.
//!
//! All generators are deterministic under a fixed seed and intern through a
//! shared [`ssj_json::Dictionary`].

#![warn(missing_docs)]

pub mod ideal;
pub mod nobench;
pub mod serverlog;
pub mod tweets;

pub use ideal::{ideal_stream, IdealConfig};
pub use nobench::{NoBenchConfig, NoBenchGen};
pub use serverlog::{ServerLogConfig, ServerLogGen};
pub use tweets::{TweetConfig, TweetGen};
