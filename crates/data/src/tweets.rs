//! A tweet-like JSON stream — the paper's introductory motivation (Twitter
//! delivers public tweets as schema-free JSON). Not part of the paper's
//! evaluation; included as a third workload with different characteristics:
//! nested user objects, hashtag arrays (flattened to indexed paths), a
//! ubiquitous small-domain `lang` attribute, and a *trending* hashtag pool
//! that drifts over time, creating both heavy hitters and novelty.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssj_json::{Dictionary, DocId, Document, Pair, Scalar};

/// Tunables of the tweet stream.
#[derive(Debug, Clone, Copy)]
pub struct TweetConfig {
    /// RNG seed.
    pub seed: u64,
    /// Size of the user population.
    pub users: usize,
    /// Size of the *current* trending-hashtag pool.
    pub trending: usize,
    /// Every `drift_every` tweets, one trending hashtag is replaced by a
    /// brand-new one (stream drift).
    pub drift_every: u64,
}

impl Default for TweetConfig {
    fn default() -> Self {
        TweetConfig {
            seed: 11,
            users: 500,
            trending: 40,
            drift_every: 200,
        }
    }
}

const LANGS: [&str; 8] = ["en", "de", "ja", "es", "pt", "fr", "tr", "ko"];
const SOURCES: [&str; 4] = ["web", "android", "ios", "bot"];

/// Streaming generator of tweet-like documents.
pub struct TweetGen {
    cfg: TweetConfig,
    rng: StdRng,
    dict: Dictionary,
    next_id: u64,
    /// Current trending pool (hashtag ids); drifts over time.
    trending: Vec<u64>,
    next_tag: u64,
}

impl TweetGen {
    /// A generator writing pairs into `dict`.
    pub fn new(cfg: TweetConfig, dict: Dictionary) -> Self {
        let trending: Vec<u64> = (0..cfg.trending as u64).collect();
        TweetGen {
            rng: StdRng::seed_from_u64(cfg.seed),
            dict,
            next_id: 0,
            next_tag: cfg.trending as u64,
            trending,
            cfg,
        }
    }

    /// The shared dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    fn skewed(&mut self, n: usize) -> usize {
        let u: f64 = self.rng.gen_range(0.0f64..1.0);
        ((n as f64) * u * u) as usize % n
    }

    /// Generate the next document.
    pub fn next_doc(&mut self) -> Document {
        let id = DocId(self.next_id);
        self.next_id += 1;

        // Trend drift: rotate one hashtag out of the pool periodically.
        if self.cfg.drift_every > 0 && id.0 % self.cfg.drift_every == self.cfg.drift_every - 1 {
            let slot = self.rng.gen_range(0..self.trending.len());
            self.trending[slot] = self.next_tag;
            self.next_tag += 1;
        }

        let dict = self.dict.clone();
        let mut pairs: Vec<Pair> = Vec::with_capacity(8);

        // lang: ubiquitous, small domain (the §VI-B candidate).
        let lang = LANGS[self.skewed(LANGS.len())];
        pairs.push(dict.intern("lang", Scalar::Str(lang.into())));

        // user.*: nested object, flattened.
        let user = self.skewed(self.cfg.users);
        pairs.push(dict.intern("user.name", Scalar::Str(format!("@u{user}"))));
        pairs.push(dict.intern(
            "user.verified",
            Scalar::Bool(user.is_multiple_of(10)), // verified iff a heavy hitter
        ));

        // hashtags: 0..4 trending tags, indexed array paths.
        let n_tags = self.skewed(5);
        for i in 0..n_tags {
            let slot = self.skewed(self.trending.len());
            let tag = self.trending[slot];
            pairs.push(dict.intern(&format!("hashtags[{i}]"), Scalar::Str(format!("#t{tag}"))));
        }

        // Optional place and source.
        if self.rng.gen_bool(0.3) {
            let country = self.skewed(20);
            pairs.push(dict.intern("place.country", Scalar::Str(format!("C{country}"))));
        }
        if self.rng.gen_bool(0.8) {
            pairs.push(dict.intern(
                "source",
                Scalar::Str(SOURCES[self.skewed(SOURCES.len())].into()),
            ));
        }
        // Retweets reference another user: a cross-document link attribute.
        if self.rng.gen_bool(0.25) {
            let of = self.skewed(self.cfg.users);
            pairs.push(dict.intern("retweet_of", Scalar::Str(format!("@u{of}"))));
        }

        Document::from_pairs(id, pairs)
    }

    /// Generate `n` documents.
    pub fn take_docs(&mut self, n: usize) -> Vec<Document> {
        (0..n).map(|_| self.next_doc()).collect()
    }
}

impl Iterator for TweetGen {
    type Item = Document;
    fn next(&mut self) -> Option<Document> {
        Some(self.next_doc())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_json::FxHashSet;

    #[test]
    fn lang_is_ubiquitous_and_small_domain() {
        let dict = Dictionary::new();
        let docs = TweetGen::new(TweetConfig::default(), dict.clone()).take_docs(500);
        let lang = dict.intern_attr("lang");
        for d in &docs {
            assert!(d.has_attr(lang));
        }
        assert!(dict.attr_distinct_values(lang) <= 8);
    }

    #[test]
    fn hashtags_flatten_to_indexed_paths() {
        let dict = Dictionary::new();
        let docs = TweetGen::new(TweetConfig::default(), dict.clone()).take_docs(300);
        let tagged = docs.iter().any(|d| {
            d.pairs()
                .iter()
                .any(|p| dict.attr_name(p.attr).starts_with("hashtags["))
        });
        assert!(tagged, "no document carried hashtags");
    }

    #[test]
    fn trending_pool_drifts() {
        let dict = Dictionary::new();
        let cfg = TweetConfig {
            drift_every: 50,
            ..Default::default()
        };
        let mut g = TweetGen::new(cfg, dict.clone());
        let w1 = g.take_docs(1000);
        let w2 = g.take_docs(1000);
        let tags = |docs: &[Document]| -> FxHashSet<u32> {
            docs.iter()
                .flat_map(|d| d.pairs().iter())
                .filter(|p| dict.attr_name(p.attr).starts_with("hashtags["))
                .map(|p| p.avp.0)
                .collect()
        };
        let t1 = tags(&w1);
        let t2 = tags(&w2);
        let fresh = t2.difference(&t1).count();
        assert!(
            fresh > 3,
            "trending pool never drifted ({fresh} fresh tags)"
        );
    }

    #[test]
    fn deterministic_and_joinable() {
        let d1 = Dictionary::new();
        let d2 = Dictionary::new();
        let a = TweetGen::new(TweetConfig::default(), d1.clone()).take_docs(100);
        let b = TweetGen::new(TweetConfig::default(), d2.clone()).take_docs(100);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_json(&d1), y.to_json(&d2));
        }
        let mut joins = 0usize;
        for (i, x) in a.iter().enumerate() {
            for y in &a[i + 1..] {
                joins += x.joins_with(y) as usize;
            }
        }
        assert!(joins > 0, "tweet stream produced no joinable documents");
    }
}
