//! Robustness properties of the JSON layer: the parser must never panic on
//! arbitrary input, and valid values must round-trip through text and
//! through flattening.

use proptest::collection::vec;
use proptest::prelude::*;
use ssj_json::{flatten_value, parse, unflatten, Dictionary, DocId, Document, Value};

/// True when the tree contains an empty object/array anywhere below an
/// object or array (those cannot survive flatten → unflatten).
fn has_empty_container(v: &Value) -> bool {
    match v {
        Value::Array(items) => items.is_empty() || items.iter().any(has_empty_container),
        Value::Object(fields) => {
            fields.is_empty() || fields.iter().any(|(_, v)| has_empty_container(v))
        }
        _ => false,
    }
}

fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        (-1e12f64..1e12f64).prop_map(Value::Float),
        any::<String>().prop_map(Value::Str),
    ];
    leaf.prop_recursive(4, 32, 5, |inner| {
        prop_oneof![
            vec(inner.clone(), 0..5).prop_map(Value::Array),
            vec(("[a-zA-Z_][a-zA-Z0-9_]{0,8}", inner), 0..5).prop_map(|fields| {
                let mut obj = Value::object();
                for (k, v) in fields {
                    obj.insert(k, v);
                }
                obj
            }),
        ]
    })
}

proptest! {
    /// Arbitrary UTF-8 never panics the parser (it may of course error).
    #[test]
    fn parser_never_panics_on_arbitrary_text(input in any::<String>()) {
        let _ = parse(&input);
    }

    /// Arbitrary ASCII soup with JSON-ish characters never panics either.
    #[test]
    fn parser_never_panics_on_jsonish_soup(
        input in "[\\[\\]{}\",:0-9a-z\\\\ \n.\\-+eE]{0,200}"
    ) {
        let _ = parse(&input);
    }

    /// Every value the serializer emits is accepted back and equal.
    #[test]
    fn serializer_output_reparses(v in value_strategy()) {
        let text = v.to_json();
        let back = parse(&text).expect("must reparse");
        prop_assert_eq!(back, v);
    }

    /// Flatten → unflatten reconstructs any object whose field names avoid
    /// the path metacharacters ('.', '[') and that contains no empty
    /// containers (those carry no pairs and cannot survive the round trip —
    /// see the `flatten` module docs).
    #[test]
    fn flatten_unflatten_roundtrip(v in value_strategy()) {
        if !v.is_object() || has_empty_container(&v) {
            return Ok(());
        }
        let Some(pairs) = flatten_value(&v) else {
            return Ok(());
        };
        // Documents with no leaves flatten to nothing: nothing to check.
        if pairs.is_empty() {
            return Ok(());
        }
        let rebuilt = unflatten(pairs.iter().map(|(p, s)| (p.as_str(), s)));
        // Empty containers are dropped by flattening, so compare the
        // flattened forms rather than the trees.
        let pairs2 = flatten_value(&rebuilt).expect("rebuilt is an object");
        let mut a = pairs.clone();
        let mut b = pairs2;
        a.sort_by(|x, y| x.0.cmp(&y.0));
        b.sort_by(|x, y| x.0.cmp(&y.0));
        prop_assert_eq!(a, b);
    }

    /// Documents built from arbitrary objects always keep sorted, unique
    /// attributes, and `to_json` output reparses to an equivalent document.
    /// (Empty containers are excluded: they cannot survive flattening.)
    #[test]
    fn document_roundtrip(v in value_strategy()) {
        if has_empty_container(&v) {
            return Ok(());
        }
        let dict = Dictionary::new();
        let Some(doc) = Document::from_value(DocId(1), &v, &dict) else {
            return Ok(());
        };
        let attrs: Vec<_> = doc.pairs().iter().map(|p| p.attr).collect();
        let mut sorted = attrs.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(&attrs, &sorted);

        let text = doc.to_json(&dict);
        let reparsed = Document::from_json(DocId(2), &text, &dict).expect("reparse");
        prop_assert_eq!(doc.pairs(), reparsed.pairs());
    }
}
