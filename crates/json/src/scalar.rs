//! Leaf scalar values — the "value" half of an attribute-value pair.
//!
//! After flattening, every attribute maps to exactly one scalar. Scalars must
//! be hashable and totally equatable so they can be interned; floats are
//! compared and hashed by their bit pattern (with `-0.0` normalized to `0.0`
//! and all NaNs collapsed to one canonical NaN).

use std::fmt;
use std::hash::{Hash, Hasher};

/// A scalar JSON leaf value.
#[derive(Debug, Clone)]
pub enum Scalar {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integral number.
    Int(i64),
    /// Non-integral number, normalized for hashing (see module docs).
    Float(f64),
    /// String.
    Str(String),
}

impl Scalar {
    /// Canonical bit pattern used for float equality/hashing.
    fn float_bits(f: f64) -> u64 {
        if f.is_nan() {
            f64::NAN.to_bits()
        } else if f == 0.0 {
            0 // normalize -0.0 to +0.0
        } else {
            f.to_bits()
        }
    }

    /// Render the scalar the way it appears in JSON text (strings unquoted).
    pub fn render(&self) -> String {
        match self {
            Scalar::Null => "null".to_owned(),
            Scalar::Bool(b) => b.to_string(),
            Scalar::Int(i) => i.to_string(),
            Scalar::Float(f) => format!("{f:?}"),
            Scalar::Str(s) => s.clone(),
        }
    }

    /// Convert back to a [`crate::Value`] leaf.
    pub fn to_value(&self) -> crate::Value {
        match self {
            Scalar::Null => crate::Value::Null,
            Scalar::Bool(b) => crate::Value::Bool(*b),
            Scalar::Int(i) => crate::Value::Int(*i),
            Scalar::Float(f) => crate::Value::Float(*f),
            Scalar::Str(s) => crate::Value::Str(s.clone()),
        }
    }

    /// Build from a [`crate::Value`] leaf; `None` for arrays and objects.
    pub fn from_value(value: &crate::Value) -> Option<Scalar> {
        match value {
            crate::Value::Null => Some(Scalar::Null),
            crate::Value::Bool(b) => Some(Scalar::Bool(*b)),
            crate::Value::Int(i) => Some(Scalar::Int(*i)),
            crate::Value::Float(f) => Some(Scalar::Float(*f)),
            crate::Value::Str(s) => Some(Scalar::Str(s.clone())),
            _ => None,
        }
    }
}

impl PartialEq for Scalar {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Scalar::Null, Scalar::Null) => true,
            (Scalar::Bool(a), Scalar::Bool(b)) => a == b,
            (Scalar::Int(a), Scalar::Int(b)) => a == b,
            (Scalar::Float(a), Scalar::Float(b)) => Self::float_bits(*a) == Self::float_bits(*b),
            (Scalar::Str(a), Scalar::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Scalar {}

impl Hash for Scalar {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Scalar::Null => state.write_u8(0),
            Scalar::Bool(b) => {
                state.write_u8(1);
                state.write_u8(*b as u8);
            }
            Scalar::Int(i) => {
                state.write_u8(2);
                state.write_u64(*i as u64);
            }
            Scalar::Float(f) => {
                state.write_u8(3);
                state.write_u64(Self::float_bits(*f));
            }
            Scalar::Str(s) => {
                state.write_u8(4);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<bool> for Scalar {
    fn from(b: bool) -> Self {
        Scalar::Bool(b)
    }
}
impl From<i64> for Scalar {
    fn from(i: i64) -> Self {
        Scalar::Int(i)
    }
}
impl From<i32> for Scalar {
    fn from(i: i32) -> Self {
        Scalar::Int(i as i64)
    }
}
impl From<f64> for Scalar {
    fn from(f: f64) -> Self {
        Scalar::Float(f)
    }
}
impl From<&str> for Scalar {
    fn from(s: &str) -> Self {
        Scalar::Str(s.to_owned())
    }
}
impl From<String> for Scalar {
    fn from(s: String) -> Self {
        Scalar::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::FxHashSet;

    #[test]
    fn equality_basics() {
        assert_eq!(Scalar::Int(1), Scalar::Int(1));
        assert_ne!(Scalar::Int(1), Scalar::Int(2));
        assert_ne!(Scalar::Int(1), Scalar::Str("1".into()));
        assert_ne!(Scalar::Bool(true), Scalar::Int(1));
    }

    #[test]
    fn float_normalization() {
        assert_eq!(Scalar::Float(0.0), Scalar::Float(-0.0));
        assert_eq!(Scalar::Float(f64::NAN), Scalar::Float(-f64::NAN));
        assert_ne!(Scalar::Float(1.0), Scalar::Float(1.0000001));
    }

    #[test]
    fn int_and_float_are_distinct_avps() {
        // The paper joins on exact value identity; 1 and 1.0 are different
        // attribute-value pairs (types differ in the JSON document).
        assert_ne!(Scalar::Int(1), Scalar::Float(1.0));
    }

    #[test]
    fn hashable_in_sets() {
        let mut s: FxHashSet<Scalar> = FxHashSet::default();
        s.insert(Scalar::Float(0.0));
        assert!(!s.insert(Scalar::Float(-0.0)));
        s.insert(Scalar::Str("x".into()));
        assert!(s.contains(&Scalar::Str("x".into())));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn render_formats() {
        assert_eq!(Scalar::Null.render(), "null");
        assert_eq!(Scalar::Bool(true).render(), "true");
        assert_eq!(Scalar::Int(-5).render(), "-5");
        assert_eq!(Scalar::Str("abc".into()).render(), "abc");
        assert_eq!(Scalar::Float(1.5).render(), "1.5");
    }

    #[test]
    fn to_value_roundtrip() {
        for s in [
            Scalar::Null,
            Scalar::Bool(false),
            Scalar::Int(9),
            Scalar::Float(2.25),
            Scalar::Str("q".into()),
        ] {
            let v = s.to_value();
            match (&s, &v) {
                (Scalar::Null, crate::Value::Null) => {}
                (Scalar::Bool(a), crate::Value::Bool(b)) => assert_eq!(a, b),
                (Scalar::Int(a), crate::Value::Int(b)) => assert_eq!(a, b),
                (Scalar::Float(a), crate::Value::Float(b)) => assert_eq!(a, b),
                (Scalar::Str(a), crate::Value::Str(b)) => assert_eq!(a, b),
                other => panic!("mismatched roundtrip {other:?}"),
            }
        }
    }
}
