//! Global interning of attributes and attribute-value pairs.
//!
//! Every hot algorithm in this workspace (partitioning, FP-tree construction,
//! joining) operates on dense `u32` ids instead of strings: [`AttrId`] for an
//! attribute (a flattened path) and [`AvpId`] for one attribute-value pair.
//! The [`Dictionary`] is shared across threads behind an `Arc`.
//!
//! Ids are dense and allocation-ordered, so `Vec`-indexed side tables keyed by
//! id are cheap everywhere else.
//!
//! # Concurrency and locking protocol
//!
//! The dictionary is split to keep parser threads from serialising on one
//! big lock:
//!
//! * **Forward maps** (`name → AttrId`, `(AttrId, Scalar) → AvpId`) are
//!   hash-striped over [`SHARDS`] independent `RwLock`ed maps. The common
//!   *hit* takes exactly one shard **read** lock: hash the key, lock its
//!   shard shared, look up, return. A *miss* upgrades by re-locking the same
//!   shard exclusively and re-checking (another thread may have interned the
//!   key between the two locks) before allocating.
//! * **Reverse store** (`id → name / attr / scalar`, plus per-attribute
//!   distinct-value counts) is one append-only table behind its own
//!   `RwLock`. New ids are allocated by appending under the store's write
//!   lock *while holding the shard write lock*, and published to the shard
//!   map only afterwards — so any id observed through a forward map is
//!   already resolvable through the store.
//! * **Lock order** is always shard → store; no path takes two shard locks
//!   at once, so the scheme cannot deadlock.
//! * **Per-thread hot cache**: each thread keeps a small
//!   `(AttrId, Scalar) → AvpId` map, valid for one dictionary *generation*
//!   (a process-unique id minted per `Dictionary`). Interned pairs are
//!   immutable, so cached mappings never go stale; a repeat `intern_avp`
//!   of a hot pair touches no lock at all.

use crate::hash::{FxHashMap, FxHasher};
use crate::Scalar;
use parking_lot::RwLock;
use std::cell::RefCell;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of independent lock stripes for the forward maps.
pub const SHARDS: usize = 16;

/// Entries kept per thread in the hot pair cache before it is reset.
const HOT_CACHE_CAP: usize = 8192;

/// Dense id of an interned attribute (flattened JSON path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub u32);

/// Dense id of an interned attribute-value pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AvpId(pub u32);

impl AttrId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl AvpId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl fmt::Display for AvpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// One attribute-value pair of a document: the attribute id plus the id of
/// the full pair. Carrying both keeps the hot join paths free of dictionary
/// lookups (conflict tests only compare ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pair {
    /// The attribute this pair belongs to.
    pub attr: AttrId,
    /// The interned (attribute, value) pair id.
    pub avp: AvpId,
}

/// The append-only reverse store: everything indexed by dense id.
#[derive(Default)]
struct Store {
    attr_names: Vec<String>,
    /// Per-attribute count of distinct values seen so far.
    attr_distinct: Vec<u32>,
    avp_attr: Vec<AttrId>,
    avp_scalar: Vec<Scalar>,
}

struct Shared {
    /// Forward map stripes: attribute name → id.
    attr_shards: [RwLock<FxHashMap<String, AttrId>>; SHARDS],
    /// Forward map stripes: (attribute, value) → pair id.
    avp_shards: [RwLock<FxHashMap<(AttrId, Scalar), AvpId>>; SHARDS],
    store: RwLock<Store>,
    /// Process-unique generation — keys the per-thread hot caches.
    generation: u64,
}

impl Default for Shared {
    fn default() -> Self {
        static NEXT_GENERATION: AtomicU64 = AtomicU64::new(1);
        Shared {
            attr_shards: std::array::from_fn(|_| RwLock::new(FxHashMap::default())),
            avp_shards: std::array::from_fn(|_| RwLock::new(FxHashMap::default())),
            store: RwLock::new(Store::default()),
            generation: NEXT_GENERATION.fetch_add(1, Ordering::Relaxed),
        }
    }
}

/// Per-thread pair cache: the generation of the dictionary it belongs to
/// plus its hot `(AttrId, Scalar) → AvpId` mappings.
type HotPairCache = (u64, FxHashMap<(AttrId, Scalar), AvpId>);

thread_local! {
    /// Hot `(AttrId, Scalar) → AvpId` mappings of the dictionary generation
    /// this thread touched last. Read-mostly: a hit costs no lock.
    static HOT_PAIRS: RefCell<HotPairCache> = RefCell::new((0, FxHashMap::default()));
}

#[inline]
fn shard_of<K: Hash + ?Sized>(key: &K) -> usize {
    let mut h = FxHasher::default();
    key.hash(&mut h);
    // Low bits of Fx output correlate with the map's bucket choice; mix in
    // the high bits so stripe choice and bucket choice stay independent.
    (h.finish() >> 7) as usize & (SHARDS - 1)
}

/// The shared attribute / attribute-value-pair dictionary.
///
/// Cloning is cheap (an `Arc` clone); all clones observe the same ids.
#[derive(Clone, Default)]
pub struct Dictionary {
    inner: Arc<Shared>,
}

impl Dictionary {
    /// Create an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern an attribute name, returning its stable id.
    pub fn intern_attr(&self, name: &str) -> AttrId {
        let shard = &self.inner.attr_shards[shard_of(name)];
        // Hit path: exactly one shard read lock.
        if let Some(&id) = shard.read().get(name) {
            return id;
        }
        let mut map = shard.write();
        // Re-check: the key may have been interned between the two locks.
        if let Some(&id) = map.get(name) {
            return id;
        }
        let id = {
            let mut store = self.inner.store.write();
            let id = AttrId(store.attr_names.len() as u32);
            store.attr_names.push(name.to_owned());
            store.attr_distinct.push(0);
            id
        };
        map.insert(name.to_owned(), id);
        id
    }

    /// Intern an attribute-value pair, returning a [`Pair`].
    pub fn intern_avp(&self, attr: AttrId, value: Scalar) -> Pair {
        let generation = self.inner.generation;
        let key = (attr, value);
        // Lock-free hit on this thread's hot cache.
        let cached = HOT_PAIRS.with(|c| {
            let c = c.borrow();
            (c.0 == generation)
                .then(|| c.1.get(&key).copied())
                .flatten()
        });
        if let Some(avp) = cached {
            return Pair { attr, avp };
        }
        let shard = &self.inner.avp_shards[shard_of(&key)];
        // NB: bind the read result first — a `match shard.read().get(..)`
        // scrutinee would keep the read guard alive into the write arm.
        let hit = shard.read().get(&key).copied();
        let avp = match hit {
            // Hit path: one shard read lock.
            Some(avp) => avp,
            None => {
                let mut map = shard.write();
                match map.get(&key).copied() {
                    Some(avp) => avp,
                    None => {
                        let avp = {
                            let mut store = self.inner.store.write();
                            let avp = AvpId(store.avp_attr.len() as u32);
                            store.avp_attr.push(attr);
                            store.avp_scalar.push(key.1.clone());
                            store.attr_distinct[attr.index()] += 1;
                            avp
                        };
                        map.insert(key.clone(), avp);
                        avp
                    }
                }
            }
        };
        HOT_PAIRS.with(|c| {
            let mut c = c.borrow_mut();
            if c.0 != generation {
                // The thread switched dictionaries: restart the cache.
                c.0 = generation;
                c.1.clear();
            } else if c.1.len() >= HOT_CACHE_CAP {
                c.1.clear();
            }
            c.1.insert(key, avp);
        });
        Pair { attr, avp }
    }

    /// Intern an `(attribute name, value)` pair in one step.
    pub fn intern(&self, attr_name: &str, value: Scalar) -> Pair {
        let attr = self.intern_attr(attr_name);
        self.intern_avp(attr, value)
    }

    /// Look up a pair without interning; `None` when unseen.
    pub fn lookup(&self, attr_name: &str, value: &Scalar) -> Option<Pair> {
        let attr = self.inner.attr_shards[shard_of(attr_name)]
            .read()
            .get(attr_name)
            .copied()?;
        let key = (attr, value.clone());
        let avp = self.inner.avp_shards[shard_of(&key)]
            .read()
            .get(&key)
            .copied()?;
        Some(Pair { attr, avp })
    }

    /// The attribute name for `id`. Panics on foreign ids.
    pub fn attr_name(&self, id: AttrId) -> String {
        self.inner.store.read().attr_names[id.index()].clone()
    }

    /// The attribute an interned pair belongs to.
    pub fn avp_attr(&self, id: AvpId) -> AttrId {
        self.inner.store.read().avp_attr[id.index()]
    }

    /// The scalar value of an interned pair.
    pub fn avp_scalar(&self, id: AvpId) -> Scalar {
        self.inner.store.read().avp_scalar[id.index()].clone()
    }

    /// Render an interned pair as `attr:value` (diagnostics, examples).
    pub fn render_avp(&self, id: AvpId) -> String {
        let store = self.inner.store.read();
        let attr = store.avp_attr[id.index()];
        format!(
            "{}:{}",
            store.attr_names[attr.index()],
            store.avp_scalar[id.index()]
        )
    }

    /// Number of distinct values interned for `attr` so far.
    pub fn attr_distinct_values(&self, attr: AttrId) -> usize {
        self.inner.store.read().attr_distinct[attr.index()] as usize
    }

    /// Total number of interned attributes.
    pub fn attr_count(&self) -> usize {
        self.inner.store.read().attr_names.len()
    }

    /// Total number of interned attribute-value pairs.
    pub fn avp_count(&self) -> usize {
        self.inner.store.read().avp_attr.len()
    }

    /// Export the whole dictionary as a JSON value:
    /// `{"attrs": [names in id order], "avps": [[attr_id, scalar], …]}`.
    /// Importing the export yields identical ids, so snapshots of id-based
    /// structures (partition tables, FP-trees) stay valid.
    pub fn export(&self) -> crate::Value {
        let store = self.inner.store.read();
        let attrs = crate::Value::Array(
            store
                .attr_names
                .iter()
                .map(|n| crate::Value::Str(n.clone()))
                .collect(),
        );
        let avps = crate::Value::Array(
            store
                .avp_attr
                .iter()
                .zip(&store.avp_scalar)
                .map(|(attr, scalar)| {
                    crate::Value::Array(vec![crate::Value::Int(attr.0 as i64), scalar.to_value()])
                })
                .collect(),
        );
        let mut out = crate::Value::object();
        out.insert("attrs", attrs);
        out.insert("avps", avps);
        out
    }

    /// Rebuild a dictionary from an [`export`](Self::export)ed value.
    /// Ids are reassigned in the original order, so they match the export.
    pub fn import(value: &crate::Value) -> Result<Dictionary, String> {
        let dict = Dictionary::new();
        let attrs = match value.get("attrs") {
            Some(crate::Value::Array(items)) => items,
            _ => return Err("missing 'attrs' array".into()),
        };
        for (i, a) in attrs.iter().enumerate() {
            let name = a.as_str().ok_or(format!("attrs[{i}] is not a string"))?;
            let id = dict.intern_attr(name);
            if id.index() != i {
                return Err(format!("duplicate attribute name '{name}'"));
            }
        }
        let avps = match value.get("avps") {
            Some(crate::Value::Array(items)) => items,
            _ => return Err("missing 'avps' array".into()),
        };
        for (i, entry) in avps.iter().enumerate() {
            let crate::Value::Array(pair) = entry else {
                return Err(format!("avps[{i}] is not an array"));
            };
            let [attr, scalar] = pair.as_slice() else {
                return Err(format!("avps[{i}] is not a 2-element array"));
            };
            let attr_id = attr
                .as_int()
                .filter(|&v| (v as usize) < attrs.len() && v >= 0)
                .ok_or(format!("avps[{i}] has an invalid attribute id"))?;
            let scalar =
                Scalar::from_value(scalar).ok_or(format!("avps[{i}] value is not a scalar"))?;
            let pair = dict.intern_avp(AttrId(attr_id as u32), scalar);
            if pair.avp.index() != i {
                return Err(format!("duplicate pair at avps[{i}]"));
            }
        }
        Ok(dict)
    }
}

impl fmt::Debug for Dictionary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let store = self.inner.store.read();
        f.debug_struct("Dictionary")
            .field("attrs", &store.attr_names.len())
            .field("avps", &store.avp_attr.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let d = Dictionary::new();
        let a1 = d.intern_attr("User");
        let a2 = d.intern_attr("User");
        assert_eq!(a1, a2);
        let p1 = d.intern_avp(a1, Scalar::Str("A".into()));
        let p2 = d.intern_avp(a1, Scalar::Str("A".into()));
        assert_eq!(p1, p2);
        assert_eq!(d.attr_count(), 1);
        assert_eq!(d.avp_count(), 1);
    }

    #[test]
    fn distinct_values_counted_per_attribute() {
        let d = Dictionary::new();
        let user = d.intern_attr("User");
        let sev = d.intern_attr("Severity");
        d.intern_avp(user, Scalar::Str("A".into()));
        d.intern_avp(user, Scalar::Str("B".into()));
        d.intern_avp(user, Scalar::Str("A".into())); // duplicate
        d.intern_avp(sev, Scalar::Str("Warning".into()));
        assert_eq!(d.attr_distinct_values(user), 2);
        assert_eq!(d.attr_distinct_values(sev), 1);
    }

    #[test]
    fn same_value_different_attr_is_different_pair() {
        let d = Dictionary::new();
        let p1 = d.intern("a", Scalar::Int(1));
        let p2 = d.intern("b", Scalar::Int(1));
        assert_ne!(p1.avp, p2.avp);
        assert_ne!(p1.attr, p2.attr);
    }

    #[test]
    fn lookup_does_not_intern() {
        let d = Dictionary::new();
        assert!(d.lookup("x", &Scalar::Int(1)).is_none());
        assert_eq!(d.attr_count(), 0);
        d.intern("x", Scalar::Int(1));
        assert!(d.lookup("x", &Scalar::Int(1)).is_some());
        assert!(d.lookup("x", &Scalar::Int(2)).is_none());
    }

    #[test]
    fn render_and_reverse_lookups() {
        let d = Dictionary::new();
        let p = d.intern("Severity", Scalar::Str("Critical".into()));
        assert_eq!(d.render_avp(p.avp), "Severity:Critical");
        assert_eq!(d.avp_attr(p.avp), p.attr);
        assert_eq!(d.attr_name(p.attr), "Severity");
        assert_eq!(d.avp_scalar(p.avp), Scalar::Str("Critical".into()));
    }

    #[test]
    fn concurrent_interning_converges() {
        let d = Dictionary::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let d = d.clone();
                std::thread::spawn(move || {
                    for i in 0..500i64 {
                        d.intern("k", Scalar::Int(i % 50));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(d.attr_count(), 1);
        assert_eq!(d.avp_count(), 50);
    }

    /// Many attributes and values spread over every stripe, interned from
    /// several racing threads: ids must come out dense and consistent.
    #[test]
    fn concurrent_sharded_interning_is_dense_and_consistent() {
        let d = Dictionary::new();
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let d = d.clone();
                std::thread::spawn(move || {
                    for i in 0..200i64 {
                        // All threads intern the same universe, shifted so
                        // each thread starts on different keys.
                        let k = (i + t * 25) % 200;
                        d.intern(&format!("attr{}", k % 40), Scalar::Int(k));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(d.attr_count(), 40);
        // Each attribute holds the values k with k % 40 == attr index:
        // 200 / 40 = 5 distinct values per attribute.
        assert_eq!(d.avp_count(), 200);
        for a in 0..40u32 {
            assert_eq!(d.attr_distinct_values(AttrId(a)), 5, "attr{a}");
        }
        // Every id in 0..avp_count resolves through the reverse store, and
        // re-interning maps back to the same id (forward/reverse agree).
        for i in 0..200u32 {
            let attr = d.avp_attr(AvpId(i));
            let scalar = d.avp_scalar(AvpId(i));
            let again = d.intern_avp(attr, scalar);
            assert_eq!(again.avp, AvpId(i));
        }
    }

    /// The thread-local hot cache must not leak mappings across distinct
    /// dictionaries used by the same thread.
    #[test]
    fn hot_cache_is_per_dictionary_generation() {
        let d1 = Dictionary::new();
        let d2 = Dictionary::new();
        // Same (attr, value) key in both dictionaries, interleaved on one
        // thread; a stale cache would return d1's id for d2.
        let a1 = d1.intern("k", Scalar::Int(1));
        let b1 = d2.intern("other", Scalar::Str("pad".into()));
        let b2 = d2.intern("k", Scalar::Int(1));
        let a2 = d1.intern("k", Scalar::Int(1));
        assert_eq!(a1, a2);
        assert_ne!(b1.avp, b2.avp);
        assert_eq!(d2.avp_attr(b2.avp), b2.attr);
        assert_eq!(d2.avp_scalar(b2.avp), Scalar::Int(1));
        assert_eq!(d1.avp_count(), 1);
        assert_eq!(d2.avp_count(), 2);
    }
}

#[cfg(test)]
mod persist_tests {
    use super::*;

    #[test]
    fn export_import_preserves_ids() {
        let d = Dictionary::new();
        let p1 = d.intern("User", Scalar::Str("A".into()));
        let p2 = d.intern("MsgId", Scalar::Int(7));
        let p3 = d.intern("User", Scalar::Str("B".into()));
        let p4 = d.intern("pi", Scalar::Float(3.25));
        let p5 = d.intern("flag", Scalar::Bool(true));
        let p6 = d.intern("nil", Scalar::Null);

        let exported = d.export();
        // Round-trip through JSON text, as a snapshot file would.
        let text = exported.to_json();
        let reread = crate::parse(&text).unwrap();
        let d2 = Dictionary::import(&reread).unwrap();

        assert_eq!(d2.attr_count(), d.attr_count());
        assert_eq!(d2.avp_count(), d.avp_count());
        for p in [p1, p2, p3, p4, p5, p6] {
            assert_eq!(d2.avp_attr(p.avp), p.attr);
            assert_eq!(d2.avp_scalar(p.avp), d.avp_scalar(p.avp));
            assert_eq!(d2.render_avp(p.avp), d.render_avp(p.avp));
        }
    }

    #[test]
    fn import_rejects_malformed_snapshots() {
        assert!(Dictionary::import(&crate::parse("{}").unwrap()).is_err());
        assert!(
            Dictionary::import(&crate::parse(r#"{"attrs":["a"],"avps":[[5,1]]}"#).unwrap())
                .is_err()
        );
        assert!(
            Dictionary::import(&crate::parse(r#"{"attrs":["a"],"avps":[[0,[1]]]}"#).unwrap())
                .is_err()
        );
        assert!(
            Dictionary::import(&crate::parse(r#"{"attrs":["a","a"],"avps":[]}"#).unwrap()).is_err()
        );
    }

    #[test]
    fn empty_dictionary_roundtrips() {
        let d = Dictionary::new();
        let d2 = Dictionary::import(&d.export()).unwrap();
        assert_eq!(d2.attr_count(), 0);
        assert_eq!(d2.avp_count(), 0);
    }
}
