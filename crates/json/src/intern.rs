//! Global interning of attributes and attribute-value pairs.
//!
//! Every hot algorithm in this workspace (partitioning, FP-tree construction,
//! joining) operates on dense `u32` ids instead of strings: [`AttrId`] for an
//! attribute (a flattened path) and [`AvpId`] for one attribute-value pair.
//! The [`Dictionary`] is shared across threads behind an `Arc`; interning
//! takes a write lock, lookups a read lock (both `parking_lot`).
//!
//! Ids are dense and allocation-ordered, so `Vec`-indexed side tables keyed by
//! id are cheap everywhere else.

use crate::hash::FxHashMap;
use crate::Scalar;
use parking_lot::RwLock;
use std::fmt;
use std::sync::Arc;

/// Dense id of an interned attribute (flattened JSON path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub u32);

/// Dense id of an interned attribute-value pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AvpId(pub u32);

impl AttrId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl AvpId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl fmt::Display for AvpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// One attribute-value pair of a document: the attribute id plus the id of
/// the full pair. Carrying both keeps the hot join paths free of dictionary
/// lookups (conflict tests only compare ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pair {
    /// The attribute this pair belongs to.
    pub attr: AttrId,
    /// The interned (attribute, value) pair id.
    pub avp: AvpId,
}

#[derive(Default)]
struct Inner {
    attr_names: Vec<String>,
    attr_map: FxHashMap<String, AttrId>,
    /// Per-attribute count of distinct values seen so far.
    attr_distinct: Vec<u32>,
    avp_attr: Vec<AttrId>,
    avp_scalar: Vec<Scalar>,
    avp_map: FxHashMap<(AttrId, Scalar), AvpId>,
}

/// The shared attribute / attribute-value-pair dictionary.
///
/// Cloning is cheap (an `Arc` clone); all clones observe the same ids.
#[derive(Clone, Default)]
pub struct Dictionary {
    inner: Arc<RwLock<Inner>>,
}

impl Dictionary {
    /// Create an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern an attribute name, returning its stable id.
    pub fn intern_attr(&self, name: &str) -> AttrId {
        if let Some(&id) = self.inner.read().attr_map.get(name) {
            return id;
        }
        let mut inner = self.inner.write();
        if let Some(&id) = inner.attr_map.get(name) {
            return id;
        }
        let id = AttrId(inner.attr_names.len() as u32);
        inner.attr_names.push(name.to_owned());
        inner.attr_distinct.push(0);
        inner.attr_map.insert(name.to_owned(), id);
        id
    }

    /// Intern an attribute-value pair, returning a [`Pair`].
    pub fn intern_avp(&self, attr: AttrId, value: Scalar) -> Pair {
        {
            let inner = self.inner.read();
            if let Some(&avp) = inner.avp_map.get(&(attr, value.clone())) {
                return Pair { attr, avp };
            }
        }
        let mut inner = self.inner.write();
        if let Some(&avp) = inner.avp_map.get(&(attr, value.clone())) {
            return Pair { attr, avp };
        }
        let avp = AvpId(inner.avp_attr.len() as u32);
        inner.avp_attr.push(attr);
        inner.avp_scalar.push(value.clone());
        inner.avp_map.insert((attr, value), avp);
        inner.attr_distinct[attr.index()] += 1;
        Pair { attr, avp }
    }

    /// Intern an `(attribute name, value)` pair in one step.
    pub fn intern(&self, attr_name: &str, value: Scalar) -> Pair {
        let attr = self.intern_attr(attr_name);
        self.intern_avp(attr, value)
    }

    /// Look up a pair without interning; `None` when unseen.
    pub fn lookup(&self, attr_name: &str, value: &Scalar) -> Option<Pair> {
        let inner = self.inner.read();
        let &attr = inner.attr_map.get(attr_name)?;
        let &avp = inner.avp_map.get(&(attr, value.clone()))?;
        Some(Pair { attr, avp })
    }

    /// The attribute name for `id`. Panics on foreign ids.
    pub fn attr_name(&self, id: AttrId) -> String {
        self.inner.read().attr_names[id.index()].clone()
    }

    /// The attribute an interned pair belongs to.
    pub fn avp_attr(&self, id: AvpId) -> AttrId {
        self.inner.read().avp_attr[id.index()]
    }

    /// The scalar value of an interned pair.
    pub fn avp_scalar(&self, id: AvpId) -> Scalar {
        self.inner.read().avp_scalar[id.index()].clone()
    }

    /// Render an interned pair as `attr:value` (diagnostics, examples).
    pub fn render_avp(&self, id: AvpId) -> String {
        let inner = self.inner.read();
        let attr = inner.avp_attr[id.index()];
        format!(
            "{}:{}",
            inner.attr_names[attr.index()],
            inner.avp_scalar[id.index()]
        )
    }

    /// Number of distinct values interned for `attr` so far.
    pub fn attr_distinct_values(&self, attr: AttrId) -> usize {
        self.inner.read().attr_distinct[attr.index()] as usize
    }

    /// Total number of interned attributes.
    pub fn attr_count(&self) -> usize {
        self.inner.read().attr_names.len()
    }

    /// Total number of interned attribute-value pairs.
    pub fn avp_count(&self) -> usize {
        self.inner.read().avp_attr.len()
    }

    /// Export the whole dictionary as a JSON value:
    /// `{"attrs": [names in id order], "avps": [[attr_id, scalar], …]}`.
    /// Importing the export yields identical ids, so snapshots of id-based
    /// structures (partition tables, FP-trees) stay valid.
    pub fn export(&self) -> crate::Value {
        let inner = self.inner.read();
        let attrs = crate::Value::Array(
            inner
                .attr_names
                .iter()
                .map(|n| crate::Value::Str(n.clone()))
                .collect(),
        );
        let avps = crate::Value::Array(
            inner
                .avp_attr
                .iter()
                .zip(&inner.avp_scalar)
                .map(|(attr, scalar)| {
                    crate::Value::Array(vec![
                        crate::Value::Int(attr.0 as i64),
                        scalar.to_value(),
                    ])
                })
                .collect(),
        );
        let mut out = crate::Value::object();
        out.insert("attrs", attrs);
        out.insert("avps", avps);
        out
    }

    /// Rebuild a dictionary from an [`export`](Self::export)ed value.
    /// Ids are reassigned in the original order, so they match the export.
    pub fn import(value: &crate::Value) -> Result<Dictionary, String> {
        let dict = Dictionary::new();
        let attrs = match value.get("attrs") {
            Some(crate::Value::Array(items)) => items,
            _ => return Err("missing 'attrs' array".into()),
        };
        for (i, a) in attrs.iter().enumerate() {
            let name = a.as_str().ok_or(format!("attrs[{i}] is not a string"))?;
            let id = dict.intern_attr(name);
            if id.index() != i {
                return Err(format!("duplicate attribute name '{name}'"));
            }
        }
        let avps = match value.get("avps") {
            Some(crate::Value::Array(items)) => items,
            _ => return Err("missing 'avps' array".into()),
        };
        for (i, entry) in avps.iter().enumerate() {
            let crate::Value::Array(pair) = entry else {
                return Err(format!("avps[{i}] is not an array"));
            };
            let [attr, scalar] = pair.as_slice() else {
                return Err(format!("avps[{i}] is not a 2-element array"));
            };
            let attr_id = attr
                .as_int()
                .filter(|&v| (v as usize) < attrs.len() && v >= 0)
                .ok_or(format!("avps[{i}] has an invalid attribute id"))?;
            let scalar = Scalar::from_value(scalar)
                .ok_or(format!("avps[{i}] value is not a scalar"))?;
            let pair = dict.intern_avp(AttrId(attr_id as u32), scalar);
            if pair.avp.index() != i {
                return Err(format!("duplicate pair at avps[{i}]"));
            }
        }
        Ok(dict)
    }
}

impl fmt::Debug for Dictionary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.read();
        f.debug_struct("Dictionary")
            .field("attrs", &inner.attr_names.len())
            .field("avps", &inner.avp_attr.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let d = Dictionary::new();
        let a1 = d.intern_attr("User");
        let a2 = d.intern_attr("User");
        assert_eq!(a1, a2);
        let p1 = d.intern_avp(a1, Scalar::Str("A".into()));
        let p2 = d.intern_avp(a1, Scalar::Str("A".into()));
        assert_eq!(p1, p2);
        assert_eq!(d.attr_count(), 1);
        assert_eq!(d.avp_count(), 1);
    }

    #[test]
    fn distinct_values_counted_per_attribute() {
        let d = Dictionary::new();
        let user = d.intern_attr("User");
        let sev = d.intern_attr("Severity");
        d.intern_avp(user, Scalar::Str("A".into()));
        d.intern_avp(user, Scalar::Str("B".into()));
        d.intern_avp(user, Scalar::Str("A".into())); // duplicate
        d.intern_avp(sev, Scalar::Str("Warning".into()));
        assert_eq!(d.attr_distinct_values(user), 2);
        assert_eq!(d.attr_distinct_values(sev), 1);
    }

    #[test]
    fn same_value_different_attr_is_different_pair() {
        let d = Dictionary::new();
        let p1 = d.intern("a", Scalar::Int(1));
        let p2 = d.intern("b", Scalar::Int(1));
        assert_ne!(p1.avp, p2.avp);
        assert_ne!(p1.attr, p2.attr);
    }

    #[test]
    fn lookup_does_not_intern() {
        let d = Dictionary::new();
        assert!(d.lookup("x", &Scalar::Int(1)).is_none());
        assert_eq!(d.attr_count(), 0);
        d.intern("x", Scalar::Int(1));
        assert!(d.lookup("x", &Scalar::Int(1)).is_some());
        assert!(d.lookup("x", &Scalar::Int(2)).is_none());
    }

    #[test]
    fn render_and_reverse_lookups() {
        let d = Dictionary::new();
        let p = d.intern("Severity", Scalar::Str("Critical".into()));
        assert_eq!(d.render_avp(p.avp), "Severity:Critical");
        assert_eq!(d.avp_attr(p.avp), p.attr);
        assert_eq!(d.attr_name(p.attr), "Severity");
        assert_eq!(d.avp_scalar(p.avp), Scalar::Str("Critical".into()));
    }

    #[test]
    fn concurrent_interning_converges() {
        let d = Dictionary::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let d = d.clone();
                std::thread::spawn(move || {
                    for i in 0..500i64 {
                        d.intern("k", Scalar::Int(i % 50));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(d.attr_count(), 1);
        assert_eq!(d.avp_count(), 50);
    }
}

#[cfg(test)]
mod persist_tests {
    use super::*;

    #[test]
    fn export_import_preserves_ids() {
        let d = Dictionary::new();
        let p1 = d.intern("User", Scalar::Str("A".into()));
        let p2 = d.intern("MsgId", Scalar::Int(7));
        let p3 = d.intern("User", Scalar::Str("B".into()));
        let p4 = d.intern("pi", Scalar::Float(3.25));
        let p5 = d.intern("flag", Scalar::Bool(true));
        let p6 = d.intern("nil", Scalar::Null);

        let exported = d.export();
        // Round-trip through JSON text, as a snapshot file would.
        let text = exported.to_json();
        let reread = crate::parse(&text).unwrap();
        let d2 = Dictionary::import(&reread).unwrap();

        assert_eq!(d2.attr_count(), d.attr_count());
        assert_eq!(d2.avp_count(), d.avp_count());
        for p in [p1, p2, p3, p4, p5, p6] {
            assert_eq!(d2.avp_attr(p.avp), p.attr);
            assert_eq!(d2.avp_scalar(p.avp), d.avp_scalar(p.avp));
            assert_eq!(d2.render_avp(p.avp), d.render_avp(p.avp));
        }
    }

    #[test]
    fn import_rejects_malformed_snapshots() {
        assert!(Dictionary::import(&crate::parse("{}").unwrap()).is_err());
        assert!(Dictionary::import(
            &crate::parse(r#"{"attrs":["a"],"avps":[[5,1]]}"#).unwrap()
        )
        .is_err());
        assert!(Dictionary::import(
            &crate::parse(r#"{"attrs":["a"],"avps":[[0,[1]]]}"#).unwrap()
        )
        .is_err());
        assert!(Dictionary::import(
            &crate::parse(r#"{"attrs":["a","a"],"avps":[]}"#).unwrap()
        )
        .is_err());
    }

    #[test]
    fn empty_dictionary_roundtrips() {
        let d = Dictionary::new();
        let d2 = Dictionary::import(&d.export()).unwrap();
        assert_eq!(d2.attr_count(), 0);
        assert_eq!(d2.avp_count(), 0);
    }
}
