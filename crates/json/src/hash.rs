//! A small, fast, non-cryptographic hasher in the style of `FxHash`.
//!
//! The partitioning and join algorithms hash interned `u32` ids millions of
//! times per window. SipHash (the standard-library default) is a poor fit for
//! such short keys, and HashDoS resistance is irrelevant for ids we assign
//! ourselves, so every hot map in this workspace uses [`FxHashMap`] /
//! [`FxHashSet`]. The algorithm is the multiply-and-rotate scheme used by the
//! Rust compiler's `FxHasher`; it is reimplemented here (~40 lines) to keep
//! the dependency set to the approved list.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant used by the Fx hashing scheme (64-bit variant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast hasher for short keys (interned ids, small tuples).
///
/// Not resistant to adversarial inputs; do not use for untrusted keys.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Mix in the length so "ab" and "ab\0" differ.
            self.add_to_hash(u64::from_le_bytes(buf) ^ (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

/// Hash a single `u64` with the Fx scheme; handy for fields groupings.
#[inline]
pub fn hash_u64(word: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(word);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn distinguishes_nearby_integers() {
        let hashes: Vec<u64> = (0u64..1000).map(|i| hash_of(&i)).collect();
        let unique: FxHashSet<u64> = hashes.iter().copied().collect();
        assert_eq!(unique.len(), hashes.len());
    }

    #[test]
    fn distinguishes_prefix_strings() {
        assert_ne!(hash_of(&"ab"), hash_of(&"ab\0"));
        assert_ne!(hash_of(&"a"), hash_of(&"aa"));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, String> = FxHashMap::default();
        for i in 0..100 {
            m.insert(i, format!("v{i}"));
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&7).map(String::as_str), Some("v7"));
    }

    #[test]
    fn hash_u64_spreads_low_bits() {
        // Sequential ids must not collide modulo small table sizes too badly;
        // check the bottom 6 bits take many distinct values over 64 inputs.
        let distinct: FxHashSet<u64> = (0u64..64).map(|i| hash_u64(i) & 63).collect();
        assert!(
            distinct.len() > 32,
            "only {} distinct buckets",
            distinct.len()
        );
    }
}
