//! The JSON value tree.
//!
//! [`Value`] is the in-memory representation of one parsed JSON document.
//! Objects preserve insertion order (duplicate keys follow the common
//! last-wins rule at parse time). Structural equality treats objects as
//! unordered maps, which matches the paper's view of a document as an
//! *unordered set* of attribute-value pairs.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A number without a fractional part or exponent that fits `i64`.
    Int(i64),
    /// Any other JSON number.
    Float(f64),
    /// A JSON string.
    Str(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object; insertion-ordered, keys unique.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Construct an empty object.
    pub fn object() -> Self {
        Value::Object(Vec::new())
    }

    /// Insert (or overwrite) a field of an object. Panics on non-objects.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> &mut Self {
        match self {
            Value::Object(fields) => {
                let key = key.into();
                if let Some(slot) = fields.iter_mut().find(|(k, _)| *k == key) {
                    slot.1 = value;
                } else {
                    fields.push((key, value));
                }
            }
            other => panic!("Value::insert on non-object {other:?}"),
        }
        self
    }

    /// Look up a field of an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Number of fields (objects), elements (arrays), otherwise 0.
    pub fn len(&self) -> usize {
        match self {
            Value::Object(fields) => fields.len(),
            Value::Array(items) => items.len(),
            _ => 0,
        }
    }

    /// True when `len() == 0`.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True for `Value::Object`.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serialize to compact JSON text.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        self.write_json(&mut out);
        out
    }

    /// Serialize to compact JSON, appending to `out`.
    pub fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Int(i) => {
                out.push_str(itoa_buf(*i).as_str());
            }
            Value::Float(f) => {
                if f.is_finite() {
                    // `{:?}` keeps round-trippable precision for f64.
                    use fmt::Write;
                    let _ = write!(out, "{f:?}");
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Value::Str(s) => write_json_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

fn itoa_buf(i: i64) -> String {
    i.to_string()
}

/// Escape and quote `s` as a JSON string literal.
pub(crate) fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b || (a.is_nan() && b.is_nan()),
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *a as f64 == *b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => {
                // Objects compare as unordered maps.
                a.len() == b.len()
                    && a.iter()
                        .all(|(k, v)| b.iter().any(|(k2, v2)| k == k2 && v == v2))
            }
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

/// Convenience macro for building [`Value`] objects in tests and examples.
///
/// ```
/// use ssj_json::json_obj;
/// let v = json_obj! { "User" => "A", "MsgId" => 2 };
/// assert_eq!(v.get("User").unwrap().as_str(), Some("A"));
/// ```
#[macro_export]
macro_rules! json_obj {
    ( $( $k:expr => $v:expr ),* $(,)? ) => {{
        let mut obj = $crate::Value::object();
        $( obj.insert($k, $crate::Value::from($v)); )*
        obj
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut v = Value::object();
        v.insert("a", Value::Int(1));
        v.insert("b", Value::Str("x".into()));
        assert_eq!(v.get("a"), Some(&Value::Int(1)));
        assert_eq!(v.get("b").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("c"), None);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn insert_overwrites() {
        let mut v = Value::object();
        v.insert("a", Value::Int(1));
        v.insert("a", Value::Int(2));
        assert_eq!(v.len(), 1);
        assert_eq!(v.get("a").and_then(Value::as_int), Some(2));
    }

    #[test]
    fn object_equality_is_order_insensitive() {
        let mut a = Value::object();
        a.insert("x", Value::Int(1));
        a.insert("y", Value::Int(2));
        let mut b = Value::object();
        b.insert("y", Value::Int(2));
        b.insert("x", Value::Int(1));
        assert_eq!(a, b);
    }

    #[test]
    fn int_float_cross_equality() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_ne!(Value::Int(3), Value::Float(3.5));
    }

    #[test]
    fn serialize_simple() {
        let v = json_obj! { "a" => 1, "b" => true, "c" => "x" };
        assert_eq!(v.to_json(), r#"{"a":1,"b":true,"c":"x"}"#);
    }

    #[test]
    fn serialize_escapes() {
        let v = Value::Str("line\n\"quote\"\\\t".into());
        assert_eq!(v.to_json(), r#""line\n\"quote\"\\\t""#);
    }

    #[test]
    fn serialize_control_chars() {
        let v = Value::Str("\u{01}".into());
        assert_eq!(v.to_json(), r#""\u0001""#);
    }

    #[test]
    fn serialize_nested() {
        let mut inner = Value::object();
        inner.insert("k", Value::Int(7));
        let v = Value::Array(vec![Value::Null, inner, Value::Float(1.5)]);
        assert_eq!(v.to_json(), r#"[null,{"k":7},1.5]"#);
    }

    #[test]
    fn nan_serializes_as_null() {
        assert_eq!(Value::Float(f64::NAN).to_json(), "null");
    }

    #[test]
    fn macro_builds_objects() {
        let v = json_obj! { "User" => "A", "Severity" => "Warning", "MsgId" => 2 };
        assert_eq!(v.len(), 3);
        assert_eq!(v.get("MsgId").and_then(Value::as_int), Some(2));
    }
}
