//! A from-scratch recursive-descent JSON parser.
//!
//! Accepts standard RFC 8259 JSON. Duplicate object keys follow the common
//! last-wins rule. Numbers parse to [`Value::Int`] when they are plain
//! integers that fit `i64`, otherwise to [`Value::Float`]. Errors carry the
//! byte offset plus line/column for diagnostics.

use crate::Value;
use std::fmt;

/// Error produced by [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// 1-based line of the error.
    pub line: usize,
    /// 1-based column (in bytes) of the error.
    pub column: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at line {}, column {}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse one complete JSON value from `input`; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser::new(input);
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Parse a stream of whitespace/newline-separated JSON values (e.g. JSON Lines).
pub fn parse_stream(input: &str) -> Result<Vec<Value>, ParseError> {
    let mut p = Parser::new(input);
    let mut out = Vec::new();
    loop {
        p.skip_ws();
        if p.pos >= p.bytes.len() {
            break;
        }
        out.push(p.value()?);
    }
    Ok(out)
}

/// Maximum nesting depth accepted by the parser. Recursive descent uses the
/// call stack; unbounded depth would let `[[[[...` overflow it.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        ParseError {
            message: message.into(),
            offset: self.pos,
            line,
            column: col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("invalid literal, expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.depth += 1;
        let result = self.object_inner();
        self.depth -= 1;
        result
    }

    fn object_inner(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut obj = Value::object();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(obj);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            obj.insert(key, val); // last-wins on duplicate keys
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(obj),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}' in object"));
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.depth += 1;
        let result = self.array_inner();
        self.depth -= 1;
        result
    }

    fn array_inner(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']' in array"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Safe: input was a &str, and we only stopped at ASCII bounds.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 inside string"))?,
                );
            }
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        let ch = if (0xD800..0xDC00).contains(&cp) {
                            // High surrogate: require a following \uXXXX low surrogate.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate in \\u escape"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate in \\u escape"));
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"))?
                        } else if (0xDC00..0xE000).contains(&cp) {
                            return Err(self.err("unpaired low surrogate in \\u escape"));
                        } else {
                            char::from_u32(cp).ok_or_else(|| self.err("invalid \\u escape"))?
                        };
                        out.push(ch);
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => unreachable!("fast path consumed plain bytes"),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a' + 10) as u32,
                b'A'..=b'F' => (b - b'A' + 10) as u32,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            // Integer overflow: fall through to float.
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Int(42));
        assert_eq!(parse("-17").unwrap(), Value::Int(-17));
        assert_eq!(parse("3.5").unwrap(), Value::Float(3.5));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(parse(r#""hi""#).unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_paper_fig1_document() {
        let v = parse(r#"{"User": "A", "Severity": "Warning", "MsgId": 2}"#).unwrap();
        assert_eq!(v.get("User").and_then(Value::as_str), Some("A"));
        assert_eq!(v.get("MsgId").and_then(Value::as_int), Some(2));
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn parses_nested() {
        let v = parse(r#"{"a":{"b":[1,2,{"c":null}]},"d":[]}"#).unwrap();
        let a = v.get("a").unwrap();
        let b = a.get("b").unwrap();
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn whitespace_tolerant() {
        let v = parse(" {\n\t\"a\" :\r 1 , \"b\": [ 1 ,2 ] } ").unwrap();
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(v.get("a").and_then(Value::as_int), Some(2));
    }

    #[test]
    fn escapes_roundtrip() {
        let v = parse(r#""a\n\t\"\\Aé""#).unwrap();
        assert_eq!(v, Value::Str("a\n\t\"\\Aé".into()));
    }

    #[test]
    fn surrogate_pairs() {
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v, Value::Str("😀".into()));
    }

    #[test]
    fn unpaired_surrogate_rejected() {
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\ude00""#).is_err());
    }

    #[test]
    fn big_integer_degrades_to_float() {
        let v = parse("123456789012345678901234567890").unwrap();
        assert!(matches!(v, Value::Float(_)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("01").is_err());
        assert!(parse("1.").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"abc").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn error_positions() {
        let err = parse("{\n  \"a\": tru\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.column > 1);
    }

    #[test]
    fn parse_stream_multiple_values() {
        let vs = parse_stream("{\"a\":1}\n{\"b\":2}\n  {\"c\":3}").unwrap();
        assert_eq!(vs.len(), 3);
        assert_eq!(vs[2].get("c").and_then(Value::as_int), Some(3));
    }

    #[test]
    fn roundtrip_serialize_parse() {
        let src = r#"{"a":1,"b":[true,null,1.25],"c":{"d":"x\ny"}}"#;
        let v = parse(src).unwrap();
        let v2 = parse(&v.to_json()).unwrap();
        assert_eq!(v, v2);
    }
}

#[cfg(test)]
mod depth_tests {
    use super::*;

    #[test]
    fn deep_but_legal_nesting_parses() {
        let depth = 100;
        let src = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
        assert!(parse(&src).is_ok());
    }

    #[test]
    fn pathological_nesting_rejected_not_crashed() {
        let depth = 100_000;
        let src = "[".repeat(depth);
        let err = parse(&src).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
    }

    #[test]
    fn deep_objects_also_bounded() {
        let depth = 100_000;
        let src = "{\"k\":".repeat(depth);
        assert!(parse(&src).is_err());
    }
}
