//! # ssj-json — schema-free JSON document model
//!
//! The foundation of the schema-free stream-join system: a from-scratch JSON
//! parser and serializer, nested-value flattening to attribute-value pairs,
//! global interning of attributes and pairs to dense ids, and the immutable
//! [`Document`] type with the paper's O(n+m) natural-join compatibility test.
//!
//! ```
//! use ssj_json::{Dictionary, DocId, Document};
//!
//! let dict = Dictionary::new();
//! let d1 = Document::from_json(DocId(1), r#"{"User":"A","Severity":"Warning"}"#, &dict).unwrap();
//! let d2 = Document::from_json(DocId(2), r#"{"User":"A","MsgId":2}"#, &dict).unwrap();
//! assert!(d1.joins_with(&d2)); // share User:A, no conflicting attribute
//! let joined = d1.merge(&d2, DocId(3));
//! assert_eq!(joined.len(), 3);
//! ```

#![warn(missing_docs)]

pub mod document;
pub mod flatten;
pub mod hash;
pub mod intern;
pub mod io;
pub mod parser;
pub mod scalar;
mod value;

pub use document::{DocError, DocId, DocRef, Document, JoinCheck};
pub use flatten::{flatten, flatten_value, unflatten};
pub use hash::{FxHashMap, FxHashSet};
pub use intern::{AttrId, AvpId, Dictionary, Pair};
pub use io::{
    documents_from_jsonl, write_documents_jsonl, write_jsonl, DocumentReader, JsonLinesError,
    JsonLinesReader,
};
pub use parser::{parse, parse_stream, ParseError};
pub use scalar::Scalar;
pub use value::Value;
