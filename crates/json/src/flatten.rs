//! Flattening nested JSON values into flat attribute-value pairs.
//!
//! The paper treats a document as an unordered set of attribute-value pairs
//! `d = {a1:v1, a2:v2, ...}`. Real JSON (e.g. NoBench's `nested_obj` /
//! `nested_arr`) nests, so we map nested structure to path-style attributes:
//!
//! * object fields join with `.` — `{"a":{"b":1}}` → `a.b : 1`
//! * array elements get an index — `{"t":[5,7]}` → `t[0] : 5`, `t[1] : 7`
//! * empty objects/arrays contribute no pairs (they carry no joinable value)
//!
//! The inverse, [`unflatten`], rebuilds a nested [`Value`] from flat pairs and
//! is used to render join results back as JSON.
//!
//! Caveat: empty containers carry no pairs, so they do not survive a
//! flatten → unflatten round trip; an array position whose element was an
//! empty container rebuilds as `null` (array gaps need placeholders). Leaf
//! values themselves always round-trip.

use crate::{Scalar, Value};

/// Flatten `value` into `(path, scalar)` pairs, appended to `out`.
///
/// The root must be an object (a JSON *document*); scalars or arrays at the
/// root are rejected by returning `false` without touching `out`.
pub fn flatten(value: &Value, out: &mut Vec<(String, Scalar)>) -> bool {
    if !value.is_object() {
        return false;
    }
    flatten_into(value, String::new(), out);
    true
}

/// Flatten into a fresh vector; `None` when the root is not an object.
pub fn flatten_value(value: &Value) -> Option<Vec<(String, Scalar)>> {
    let mut out = Vec::new();
    if flatten(value, &mut out) {
        Some(out)
    } else {
        None
    }
}

fn flatten_into(value: &Value, prefix: String, out: &mut Vec<(String, Scalar)>) {
    match value {
        Value::Object(fields) => {
            for (k, v) in fields {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten_into(v, path, out);
            }
        }
        Value::Array(items) => {
            for (i, v) in items.iter().enumerate() {
                flatten_into(v, format!("{prefix}[{i}]"), out);
            }
        }
        Value::Null => out.push((prefix, Scalar::Null)),
        Value::Bool(b) => out.push((prefix, Scalar::Bool(*b))),
        Value::Int(i) => out.push((prefix, Scalar::Int(*i))),
        Value::Float(f) => out.push((prefix, Scalar::Float(*f))),
        Value::Str(s) => out.push((prefix, Scalar::Str(s.clone()))),
    }
}

/// Rebuild a nested [`Value`] from flat `(path, scalar)` pairs.
///
/// Paths follow the grammar produced by [`flatten`]. Array indices are placed
/// at their numeric position; gaps become `null`.
pub fn unflatten<'a, I>(pairs: I) -> Value
where
    I: IntoIterator<Item = (&'a str, &'a Scalar)>,
{
    let mut root = Value::object();
    for (path, scalar) in pairs {
        insert_path(&mut root, path, scalar.to_value());
    }
    root
}

fn insert_path(node: &mut Value, path: &str, leaf: Value) {
    // Split off the first segment: `name`, `name[3]`, or `name[3][0]`...
    let (head, rest) = match path.find('.') {
        // A '.' inside brackets cannot occur (indices are numeric).
        Some(dot) => (&path[..dot], Some(&path[dot + 1..])),
        None => (path, None),
    };
    // Peel array indices off the head.
    if let Some(bracket) = head.find('[') {
        let name = &head[..bracket];
        let mut indices = Vec::new();
        let mut rest_idx = &head[bracket..];
        while let Some(open) = rest_idx.find('[') {
            let close = rest_idx.find(']').unwrap_or(rest_idx.len());
            if let Ok(i) = rest_idx[open + 1..close].parse::<usize>() {
                indices.push(i);
            }
            rest_idx = &rest_idx[(close + 1).min(rest_idx.len())..];
        }
        let obj = ensure_object(node);
        let slot = obj_slot(obj, name, Value::Array(Vec::new()));
        let mut cur = slot;
        for (depth, &i) in indices.iter().enumerate() {
            let arr = ensure_array(cur);
            while arr.len() <= i {
                arr.push(Value::Null);
            }
            let last = depth + 1 == indices.len();
            if last && rest.is_none() {
                arr[i] = leaf;
                return;
            }
            if last {
                if !arr[i].is_object() {
                    arr[i] = Value::object();
                }
            } else if !matches!(arr[i], Value::Array(_)) {
                arr[i] = Value::Array(Vec::new());
            }
            cur = &mut arr[i];
        }
        if let Some(rest) = rest {
            insert_path(cur, rest, leaf);
        }
        return;
    }
    match rest {
        None => {
            let obj = ensure_object(node);
            *obj_slot(obj, head, Value::Null) = leaf;
        }
        Some(rest) => {
            let obj = ensure_object(node);
            let slot = obj_slot(obj, head, Value::object());
            if !slot.is_object() && !matches!(slot, Value::Array(_)) {
                *slot = Value::object();
            }
            insert_path(slot, rest, leaf);
        }
    }
}

fn ensure_object(v: &mut Value) -> &mut Vec<(String, Value)> {
    if !v.is_object() {
        *v = Value::object();
    }
    match v {
        Value::Object(fields) => fields,
        _ => unreachable!(),
    }
}

fn ensure_array(v: &mut Value) -> &mut Vec<Value> {
    if !matches!(v, Value::Array(_)) {
        *v = Value::Array(Vec::new());
    }
    match v {
        Value::Array(items) => items,
        _ => unreachable!(),
    }
}

fn obj_slot<'a>(fields: &'a mut Vec<(String, Value)>, key: &str, default: Value) -> &'a mut Value {
    if let Some(pos) = fields.iter().position(|(k, _)| k == key) {
        &mut fields[pos].1
    } else {
        fields.push((key.to_owned(), default));
        &mut fields.last_mut().unwrap().1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn flat(src: &str) -> Vec<(String, String)> {
        let v = parse(src).unwrap();
        let mut pairs = flatten_value(&v).unwrap();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        pairs.into_iter().map(|(p, s)| (p, s.render())).collect()
    }

    #[test]
    fn flat_document_unchanged() {
        let pairs = flat(r#"{"User":"A","MsgId":2}"#);
        assert_eq!(
            pairs,
            vec![
                ("MsgId".to_owned(), "2".to_owned()),
                ("User".to_owned(), "A".to_owned())
            ]
        );
    }

    #[test]
    fn nested_object_uses_dots() {
        let pairs = flat(r#"{"nested_obj":{"str":"x","num":4}}"#);
        assert_eq!(
            pairs,
            vec![
                ("nested_obj.num".to_owned(), "4".to_owned()),
                ("nested_obj.str".to_owned(), "x".to_owned())
            ]
        );
    }

    #[test]
    fn arrays_use_indices() {
        let pairs = flat(r#"{"nested_arr":["a","b"]}"#);
        assert_eq!(
            pairs,
            vec![
                ("nested_arr[0]".to_owned(), "a".to_owned()),
                ("nested_arr[1]".to_owned(), "b".to_owned())
            ]
        );
    }

    #[test]
    fn deep_mixture() {
        let pairs = flat(r#"{"a":[{"b":[1]},2]}"#);
        assert_eq!(
            pairs,
            vec![
                ("a[0].b[0]".to_owned(), "1".to_owned()),
                ("a[1]".to_owned(), "2".to_owned())
            ]
        );
    }

    #[test]
    fn empty_containers_yield_nothing() {
        assert!(flat(r#"{"a":{},"b":[]}"#).is_empty());
    }

    #[test]
    fn non_object_root_rejected() {
        assert!(flatten_value(&Value::Int(3)).is_none());
        assert!(flatten_value(&Value::Array(vec![])).is_none());
    }

    #[test]
    fn null_is_a_value() {
        let pairs = flat(r#"{"a":null}"#);
        assert_eq!(pairs, vec![("a".to_owned(), "null".to_owned())]);
    }

    #[test]
    fn unflatten_roundtrip_simple() {
        let v = parse(r#"{"x":1,"y":{"z":"s"},"w":[true,null,2.5]}"#).unwrap();
        let pairs = flatten_value(&v).unwrap();
        let rebuilt = unflatten(pairs.iter().map(|(p, s)| (p.as_str(), s)));
        assert_eq!(rebuilt, v);
    }

    #[test]
    fn unflatten_roundtrip_deep() {
        let v = parse(r#"{"a":[{"b":[1,{"c":2}]},3],"d":{"e":{"f":[null]}}}"#).unwrap();
        let pairs = flatten_value(&v).unwrap();
        let rebuilt = unflatten(pairs.iter().map(|(p, s)| (p.as_str(), s)));
        assert_eq!(rebuilt, v);
    }
}
