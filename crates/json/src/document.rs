//! The schema-free document: an interned, sorted set of attribute-value pairs.
//!
//! [`Document`] is the unit the whole system operates on. Pairs are sorted by
//! [`AttrId`], attributes are unique within a document (JSON object keys are
//! unique per level, and flattened paths are unique), so the natural-join
//! compatibility test of the paper — *share at least one attribute-value pair
//! and have no conflicting values for shared attributes* — is a single merge
//! scan over two sorted slices, `O(|d1| + |d2|)`.

use crate::flatten::{flatten_value, unflatten};
use crate::intern::{AttrId, AvpId, Dictionary, Pair};
use crate::parser::{parse, ParseError};
use crate::{Scalar, Value};
use std::fmt;
use std::sync::Arc;

/// Stream-wide unique document id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u64);

impl fmt::Display for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// Errors when building a [`Document`] from JSON text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DocError {
    /// The text was not valid JSON.
    Parse(ParseError),
    /// The JSON root was not an object, or flattened to zero pairs.
    NotADocument,
}

impl fmt::Display for DocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DocError::Parse(e) => write!(f, "{e}"),
            DocError::NotADocument => {
                f.write_str("JSON root is not an object with at least one attribute-value pair")
            }
        }
    }
}

impl std::error::Error for DocError {}

/// Outcome of the pairwise natural-join compatibility test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinCheck {
    /// Number of identical attribute-value pairs the documents share.
    pub shared: u32,
    /// Whether any shared attribute carries different values.
    pub conflict: bool,
}

impl JoinCheck {
    /// True when the two documents belong to the natural join result.
    #[inline]
    pub fn joinable(self) -> bool {
        self.shared > 0 && !self.conflict
    }
}

/// An immutable schema-free document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    id: DocId,
    /// Sorted by `attr`; attributes unique.
    pairs: Box<[Pair]>,
}

/// Documents flow through channels constantly; share them, never deep-copy.
pub type DocRef = Arc<Document>;

impl Document {
    /// Build from raw pairs; sorts by attribute and drops duplicate
    /// attributes (first value wins).
    pub fn from_pairs(id: DocId, mut pairs: Vec<Pair>) -> Self {
        pairs.sort_by_key(|p| (p.attr, p.avp));
        pairs.dedup_by_key(|p| p.attr);
        Document {
            id,
            pairs: pairs.into_boxed_slice(),
        }
    }

    /// Flatten a parsed [`Value`] and intern its pairs.
    ///
    /// Returns `None` when the root is not an object or flattens to zero
    /// pairs — the paper excludes attribute-less documents from the join.
    pub fn from_value(id: DocId, value: &Value, dict: &Dictionary) -> Option<Self> {
        let flat = flatten_value(value)?;
        if flat.is_empty() {
            return None;
        }
        let pairs = flat
            .into_iter()
            .map(|(path, scalar)| dict.intern(&path, scalar))
            .collect();
        Some(Self::from_pairs(id, pairs))
    }

    /// Parse JSON text and intern it in one step.
    pub fn from_json(id: DocId, text: &str, dict: &Dictionary) -> Result<Self, DocError> {
        let value = parse(text).map_err(DocError::Parse)?;
        Self::from_value(id, &value, dict).ok_or(DocError::NotADocument)
    }

    /// The document's id.
    #[inline]
    pub fn id(&self) -> DocId {
        self.id
    }

    /// The sorted attribute-value pairs.
    #[inline]
    pub fn pairs(&self) -> &[Pair] {
        &self.pairs
    }

    /// Number of attribute-value pairs.
    #[inline]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when the document has no pairs (not constructible via the public
    /// parsers, but possible via `from_pairs`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterate the pair ids.
    pub fn avps(&self) -> impl Iterator<Item = AvpId> + '_ {
        self.pairs.iter().map(|p| p.avp)
    }

    /// Approximate heap + inline footprint in bytes: the struct itself plus
    /// the boxed pair slice. Used by the out-of-core tiering layer
    /// (DESIGN.md §4i) for budget accounting — an estimate, not an exact
    /// allocator measurement.
    #[inline]
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Document>() + std::mem::size_of_val::<[Pair]>(&self.pairs)
    }

    /// Binary-search for the pair carried for `attr`.
    pub fn pair_for_attr(&self, attr: AttrId) -> Option<Pair> {
        self.pairs
            .binary_search_by_key(&attr, |p| p.attr)
            .ok()
            .map(|i| self.pairs[i])
    }

    /// Whether the document contains `attr` at all.
    #[inline]
    pub fn has_attr(&self, attr: AttrId) -> bool {
        self.pair_for_attr(attr).is_some()
    }

    /// Whether the document contains this exact attribute-value pair.
    pub fn has_avp(&self, pair: Pair) -> bool {
        self.pair_for_attr(pair.attr).map(|p| p.avp) == Some(pair.avp)
    }

    /// The paper's join test (§I-A): shared pairs and conflicts in one merge
    /// scan over the two sorted pair slices.
    pub fn check_join(&self, other: &Document) -> JoinCheck {
        let (a, b) = (&self.pairs, &other.pairs);
        let (mut i, mut j) = (0, 0);
        let mut shared = 0u32;
        while i < a.len() && j < b.len() {
            match a[i].attr.cmp(&b[j].attr) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if a[i].avp == b[j].avp {
                        shared += 1;
                    } else {
                        return JoinCheck {
                            shared,
                            conflict: true,
                        };
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        JoinCheck {
            shared,
            conflict: false,
        }
    }

    /// True when `self ⋈ other` is part of the natural join result.
    #[inline]
    pub fn joins_with(&self, other: &Document) -> bool {
        self.check_join(other).joinable()
    }

    /// Merge two joinable documents into the natural-join output pairs
    /// (the union of both pair sets). `new_id` names the result.
    pub fn merge(&self, other: &Document, new_id: DocId) -> Document {
        let mut out = Vec::with_capacity(self.pairs.len() + other.pairs.len());
        let (a, b) = (&self.pairs, &other.pairs);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].attr.cmp(&b[j].attr) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        Document {
            id: new_id,
            pairs: out.into_boxed_slice(),
        }
    }

    /// Reconstruct a nested [`Value`] through the dictionary.
    pub fn to_value(&self, dict: &Dictionary) -> Value {
        let rendered: Vec<(String, Scalar)> = self
            .pairs
            .iter()
            .map(|p| (dict.attr_name(p.attr), dict.avp_scalar(p.avp)))
            .collect();
        unflatten(rendered.iter().map(|(p, s)| (p.as_str(), s)))
    }

    /// Render as compact JSON text.
    pub fn to_json(&self, dict: &Dictionary) -> String {
        self.to_value(dict).to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(id: u64, json: &str, dict: &Dictionary) -> Document {
        Document::from_json(DocId(id), json, dict).unwrap()
    }

    /// The seven documents of the paper's Fig. 1.
    pub(crate) fn fig1_docs(dict: &Dictionary) -> Vec<Document> {
        vec![
            doc(1, r#"{"User":"A","Severity":"Warning"}"#, dict),
            doc(2, r#"{"User":"A","Severity":"Warning","MsgId":2}"#, dict),
            doc(3, r#"{"User":"A","Severity":"Error"}"#, dict),
            doc(4, r#"{"IP":"10.2.145.212","Severity":"Warning"}"#, dict),
            doc(5, r#"{"User":"B","Severity":"Critical","MsgId":1}"#, dict),
            doc(6, r#"{"User":"B","Severity":"Critical"}"#, dict),
            doc(7, r#"{"User":"B","Severity":"Warning"}"#, dict),
        ]
    }

    #[test]
    fn pairs_sorted_and_unique() {
        let dict = Dictionary::new();
        let d = doc(1, r#"{"z":1,"a":2,"m":3}"#, &dict);
        let attrs: Vec<AttrId> = d.pairs().iter().map(|p| p.attr).collect();
        let mut sorted = attrs.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(attrs, sorted);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn join_requires_shared_pair() {
        let dict = Dictionary::new();
        // Disjoint attributes: excluded from the join result per §I-A.
        let d1 = doc(1, r#"{"a":1}"#, &dict);
        let d2 = doc(2, r#"{"b":1}"#, &dict);
        assert!(!d1.joins_with(&d2));
        let chk = d1.check_join(&d2);
        assert_eq!(chk.shared, 0);
        assert!(!chk.conflict);
    }

    #[test]
    fn join_rejects_conflicts() {
        let dict = Dictionary::new();
        let d1 = doc(1, r#"{"a":1,"b":2}"#, &dict);
        let d2 = doc(2, r#"{"a":1,"b":3}"#, &dict);
        assert!(!d1.joins_with(&d2));
        assert!(d1.check_join(&d2).conflict);
    }

    #[test]
    fn join_accepts_superset() {
        let dict = Dictionary::new();
        let d1 = doc(1, r#"{"a":1,"b":2}"#, &dict);
        let d2 = doc(2, r#"{"a":1,"b":2,"c":3}"#, &dict);
        let chk = d1.check_join(&d2);
        assert!(chk.joinable());
        assert_eq!(chk.shared, 2);
    }

    #[test]
    fn paper_fig1_join_pairs() {
        // Fig. 1 narrative: d1 is joinable with d2 (shares User:A and
        // Severity:Warning), d7 joins documents of both partitions.
        let dict = Dictionary::new();
        let docs = fig1_docs(&dict);
        let (d1, d2, d3, d4, d5, d6, d7) = (
            &docs[0], &docs[1], &docs[2], &docs[3], &docs[4], &docs[5], &docs[6],
        );
        assert!(d1.joins_with(d2));
        assert!(!d1.joins_with(d3)); // Severity conflicts: Warning vs Error
        assert!(d1.joins_with(d4)); // share Severity:Warning, no conflicts
        assert!(!d1.joins_with(d5)); // User and Severity both conflict
        assert!(d5.joins_with(d6)); // share User:B, Severity:Critical
        assert!(d7.joins_with(d4)); // Severity:Warning
        assert!(!d7.joins_with(d6)); // Severity conflicts
                                     // d7's pr1 partner is d4 (Severity:Warning); User:B conflicts with d1/d2.
        assert!(!d7.joins_with(d1));
        assert!(!d7.joins_with(d5)); // shares User:B but Severity conflicts
    }

    #[test]
    fn merge_produces_union() {
        let dict = Dictionary::new();
        let d1 = doc(1, r#"{"a":1,"b":2}"#, &dict);
        let d2 = doc(2, r#"{"b":2,"c":3}"#, &dict);
        let m = d1.merge(&d2, DocId(100));
        assert_eq!(m.len(), 3);
        assert_eq!(m.id(), DocId(100));
        let v = m.to_value(&dict);
        assert_eq!(v.get("a").and_then(Value::as_int), Some(1));
        assert_eq!(v.get("b").and_then(Value::as_int), Some(2));
        assert_eq!(v.get("c").and_then(Value::as_int), Some(3));
    }

    #[test]
    fn attr_lookup() {
        let dict = Dictionary::new();
        let d = doc(1, r#"{"x":1,"y":"s"}"#, &dict);
        let x = dict.intern_attr("x");
        let z = dict.intern_attr("z");
        assert!(d.has_attr(x));
        assert!(!d.has_attr(z));
        let px = dict.intern("x", Scalar::Int(1));
        let px2 = dict.intern("x", Scalar::Int(2));
        assert!(d.has_avp(px));
        assert!(!d.has_avp(px2));
    }

    #[test]
    fn to_json_roundtrip() {
        let dict = Dictionary::new();
        let src = r#"{"User":"A","nested":{"k":[1,2]},"ok":true}"#;
        let d = doc(9, src, &dict);
        let back = crate::parser::parse(&d.to_json(&dict)).unwrap();
        let orig = crate::parser::parse(src).unwrap();
        assert_eq!(back, orig);
    }

    #[test]
    fn rejects_non_documents() {
        let dict = Dictionary::new();
        assert!(matches!(
            Document::from_json(DocId(1), "[1,2]", &dict),
            Err(DocError::NotADocument)
        ));
        assert!(matches!(
            Document::from_json(DocId(1), "{}", &dict),
            Err(DocError::NotADocument)
        ));
        assert!(matches!(
            Document::from_json(DocId(1), "{oops", &dict),
            Err(DocError::Parse(_))
        ));
    }

    #[test]
    fn check_join_is_symmetric() {
        let dict = Dictionary::new();
        let docs = fig1_docs(&dict);
        for a in &docs {
            for b in &docs {
                assert_eq!(a.check_join(b).joinable(), b.check_join(a).joinable());
            }
        }
    }
}
