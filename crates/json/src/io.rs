//! Streaming JSON Lines I/O.
//!
//! Real document streams arrive as newline-delimited JSON (the format
//! Twitter's APIs and most log shippers emit, cf. §I). [`JsonLinesReader`]
//! turns any `BufRead` into an iterator of parsed [`Value`]s without loading
//! the whole input; [`DocumentReader`] goes one step further and interns
//! straight into [`Document`]s. [`write_jsonl`] is the inverse.

use crate::document::{DocError, DocId, Document};
use crate::parser::{parse, ParseError};
use crate::{Dictionary, Value};
use std::io::{self, BufRead, Write};

/// An error while reading a JSON Lines stream.
#[derive(Debug)]
pub enum JsonLinesError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line failed to parse; carries the 1-based line number.
    Parse {
        /// 1-based line number in the input.
        line: u64,
        /// The parse failure.
        error: ParseError,
    },
    /// A line parsed but was not a usable document (non-object / empty).
    NotADocument {
        /// 1-based line number in the input.
        line: u64,
    },
}

impl std::fmt::Display for JsonLinesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonLinesError::Io(e) => write!(f, "I/O error: {e}"),
            JsonLinesError::Parse { line, error } => {
                write!(f, "line {line}: {error}")
            }
            JsonLinesError::NotADocument { line } => {
                write!(f, "line {line}: not a JSON object with attributes")
            }
        }
    }
}

impl std::error::Error for JsonLinesError {}

impl From<io::Error> for JsonLinesError {
    fn from(e: io::Error) -> Self {
        JsonLinesError::Io(e)
    }
}

/// Iterator of parsed values from newline-delimited JSON. Blank lines are
/// skipped; a reused line buffer keeps allocations to a handful per stream.
pub struct JsonLinesReader<R> {
    reader: R,
    buf: String,
    line: u64,
}

impl<R: BufRead> JsonLinesReader<R> {
    /// Wrap a buffered reader.
    pub fn new(reader: R) -> Self {
        JsonLinesReader {
            reader,
            buf: String::new(),
            line: 0,
        }
    }

    /// Current 1-based line number (of the last yielded line).
    pub fn line(&self) -> u64 {
        self.line
    }
}

impl<R: BufRead> Iterator for JsonLinesReader<R> {
    type Item = Result<Value, JsonLinesError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.buf.clear();
            match self.reader.read_line(&mut self.buf) {
                Ok(0) => return None,
                Ok(_) => {
                    self.line += 1;
                    let text = self.buf.trim();
                    if text.is_empty() {
                        continue;
                    }
                    return Some(parse(text).map_err(|error| JsonLinesError::Parse {
                        line: self.line,
                        error,
                    }));
                }
                Err(e) => return Some(Err(e.into())),
            }
        }
    }
}

/// Iterator of interned [`Document`]s from newline-delimited JSON. Ids are
/// assigned sequentially starting at `first_id`.
pub struct DocumentReader<R> {
    inner: JsonLinesReader<R>,
    dict: Dictionary,
    next_id: u64,
    /// Skip lines that are valid JSON but not usable documents (arrays,
    /// scalars, empty objects) instead of erroring. Defaults to `false`.
    pub lenient: bool,
}

impl<R: BufRead> DocumentReader<R> {
    /// Wrap a buffered reader, interning through `dict`.
    pub fn new(reader: R, dict: Dictionary, first_id: u64) -> Self {
        DocumentReader {
            inner: JsonLinesReader::new(reader),
            dict,
            next_id: first_id,
            lenient: false,
        }
    }
}

impl<R: BufRead> Iterator for DocumentReader<R> {
    type Item = Result<Document, JsonLinesError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let value = match self.inner.next()? {
                Ok(v) => v,
                Err(e) => return Some(Err(e)),
            };
            let id = DocId(self.next_id);
            match Document::from_value(id, &value, &self.dict) {
                Some(doc) => {
                    self.next_id += 1;
                    return Some(Ok(doc));
                }
                None if self.lenient => continue,
                None => {
                    return Some(Err(JsonLinesError::NotADocument {
                        line: self.inner.line(),
                    }))
                }
            }
        }
    }
}

/// Write values as newline-delimited JSON.
pub fn write_jsonl<'a, W: Write>(
    out: &mut W,
    values: impl IntoIterator<Item = &'a Value>,
) -> io::Result<usize> {
    let mut n = 0;
    let mut buf = String::with_capacity(256);
    for v in values {
        buf.clear();
        v.write_json(&mut buf);
        buf.push('\n');
        out.write_all(buf.as_bytes())?;
        n += 1;
    }
    out.flush()?;
    Ok(n)
}

/// Write documents as newline-delimited JSON through the dictionary.
pub fn write_documents_jsonl<'a, W: Write>(
    out: &mut W,
    docs: impl IntoIterator<Item = &'a Document>,
    dict: &Dictionary,
) -> io::Result<usize> {
    let mut n = 0;
    for d in docs {
        let line = d.to_json(dict);
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
        n += 1;
    }
    out.flush()?;
    Ok(n)
}

/// Parse a full in-memory JSON Lines string into documents (convenience for
/// tests and small inputs).
pub fn documents_from_jsonl(
    text: &str,
    dict: &Dictionary,
    first_id: u64,
) -> Result<Vec<Document>, DocError> {
    let mut out = Vec::new();
    let mut id = first_id;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        out.push(Document::from_json(DocId(id), line, dict)?);
        id += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn read_values_skipping_blanks() {
        let input = "{\"a\":1}\n\n  \n{\"b\":2}\n";
        let reader = JsonLinesReader::new(Cursor::new(input));
        let values: Result<Vec<Value>, _> = reader.collect();
        let values = values.unwrap();
        assert_eq!(values.len(), 2);
        assert_eq!(values[1].get("b").and_then(Value::as_int), Some(2));
    }

    #[test]
    fn parse_error_carries_line_number() {
        let input = "{\"a\":1}\n{oops\n";
        let mut reader = JsonLinesReader::new(Cursor::new(input));
        assert!(reader.next().unwrap().is_ok());
        match reader.next().unwrap() {
            Err(JsonLinesError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn document_reader_assigns_sequential_ids() {
        let dict = Dictionary::new();
        let input = "{\"a\":1}\n{\"b\":2}\n";
        let docs: Result<Vec<Document>, _> =
            DocumentReader::new(Cursor::new(input), dict, 100).collect();
        let docs = docs.unwrap();
        assert_eq!(docs[0].id(), DocId(100));
        assert_eq!(docs[1].id(), DocId(101));
    }

    #[test]
    fn strict_reader_rejects_non_documents() {
        let dict = Dictionary::new();
        let input = "{\"a\":1}\n[1,2]\n";
        let mut reader = DocumentReader::new(Cursor::new(input), dict, 0);
        assert!(reader.next().unwrap().is_ok());
        match reader.next().unwrap() {
            Err(JsonLinesError::NotADocument { line }) => assert_eq!(line, 2),
            other => panic!("expected NotADocument, got {other:?}"),
        }
    }

    #[test]
    fn lenient_reader_skips_non_documents() {
        let dict = Dictionary::new();
        let input = "[1]\n{\"a\":1}\n{}\n{\"b\":2}\n";
        let mut reader = DocumentReader::new(Cursor::new(input), dict, 0);
        reader.lenient = true;
        let docs: Result<Vec<Document>, _> = reader.collect();
        assert_eq!(docs.unwrap().len(), 2);
    }

    #[test]
    fn write_read_roundtrip() {
        let dict = Dictionary::new();
        let docs = vec![
            Document::from_json(DocId(0), r#"{"x":1,"y":"s"}"#, &dict).unwrap(),
            Document::from_json(DocId(1), r#"{"nested":{"k":[1,2]}}"#, &dict).unwrap(),
        ];
        let mut buf = Vec::new();
        let n = write_documents_jsonl(&mut buf, &docs, &dict).unwrap();
        assert_eq!(n, 2);
        let text = String::from_utf8(buf).unwrap();
        let back = documents_from_jsonl(&text, &dict, 0).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].pairs(), docs[0].pairs());
        assert_eq!(back[1].pairs(), docs[1].pairs());
    }

    #[test]
    fn write_values_roundtrip() {
        let values = vec![
            crate::parse(r#"{"a":1}"#).unwrap(),
            crate::parse(r#"[true,null]"#).unwrap(),
        ];
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &values).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let reader = JsonLinesReader::new(Cursor::new(text));
        let back: Result<Vec<Value>, _> = reader.collect();
        assert_eq!(back.unwrap(), values);
    }
}
