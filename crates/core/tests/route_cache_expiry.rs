//! Regression test: the Assigner's view-fingerprint route cache stores
//! masks that are unions over {current table} ∪ {retained pane tables}.
//! When a retained table falls out of the sliding lookback at a pane
//! boundary — with no new table deploy to trigger the usual invalidation —
//! the cache must be dropped too, or a stale union mask keeps routing to
//! partitions only the evicted pane's table justified.
//!
//! The scenario drives a bare Assigner through a scripted message
//! sequence (tables deployed by hand, punctuation at exact points) and
//! observes the routed targets directly.

use ssj_core::components::Assigner;
use ssj_core::{Msg, StreamJoinConfig, TableMsg, WindowSpec};
use ssj_json::{AvpId, Dictionary, DocId, Document};
use ssj_partition::PartitionTable;
use ssj_runtime::{run, Bolt, Grouping, Outbox, Spout, SpoutEmit, TaskInfo, TopologyBuilder};
use std::sync::{Arc, Mutex};

/// A spout replaying a scripted mix of messages and punctuation tokens.
struct ScriptSpout {
    script: std::vec::IntoIter<SpoutEmit<Msg>>,
}

impl Spout<Msg> for ScriptSpout {
    fn next(&mut self) -> SpoutEmit<Msg> {
        self.script.next().unwrap_or(SpoutEmit::Done)
    }
}

/// Records which sink task each document lands on.
struct RouteSink {
    task: usize,
    log: Arc<Mutex<Vec<(u64, usize)>>>,
}

impl Bolt<Msg> for RouteSink {
    fn prepare(&mut self, info: &TaskInfo) {
        self.task = info.task_index;
    }

    fn execute(&mut self, msg: Msg, _out: &mut Outbox<Msg>) {
        if let Msg::Doc(d) = msg {
            self.log.lock().unwrap().push((d.id().0, self.task));
        }
    }
}

fn table_for(m: usize, window: u64, avp: AvpId, partition: u32) -> Msg {
    let mut table = PartitionTable::empty(m);
    table.add_avp(partition, avp);
    Msg::Table(Arc::new(TableMsg {
        window,
        table,
        expansion: None,
        hot: Vec::new(),
    }))
}

/// Targets of each document, sorted, keyed by document id.
fn targets_of(log: &[(u64, usize)], id: u64) -> Vec<usize> {
    let mut t: Vec<usize> = log
        .iter()
        .filter(|(d, _)| *d == id)
        .map(|(_, task)| *task)
        .collect();
    t.sort_unstable();
    t
}

#[test]
fn pane_expiry_invalidates_cached_route_masks() {
    let m = 2;
    // Two-pane lookback: a retired table expires two punctuations after
    // the deploy that superseded it.
    let config = StreamJoinConfig::default()
        .with_m(m)
        .with_window_spec(WindowSpec::sliding(4, 2))
        .with_assigners(1)
        .with_expansion(false)
        .with_batch_size(1)
        .build()
        .unwrap();

    let dict = Dictionary::new();

    // Pane 0: T1 maps the pair to partition 0; d0 routes there and the
    // view's mask is cached. Pane 1: T2 (pair → partition 1) supersedes
    // T1, which is retained; d1 and d2 route to the union {0, 1}. After
    // punctuation 2, T1's last pane (1) leaves the 2-pane lookback, so d3
    // must route to partition 1 alone — a stale cached union would still
    // include partition 0.
    let script = {
        let dict = dict.clone();
        move || {
            let doc =
                |id: u64| Arc::new(Document::from_json(DocId(id), r#"{"k":"v"}"#, &dict).unwrap());
            let v: AvpId = doc(0).avps().next().unwrap();
            vec![
                SpoutEmit::Message(table_for(m, 0, v, 0)),
                SpoutEmit::Message(Msg::Doc(doc(0))),
                SpoutEmit::Punctuate(0),
                SpoutEmit::Message(table_for(m, 1, v, 1)),
                SpoutEmit::Message(Msg::Doc(doc(1))),
                SpoutEmit::Punctuate(1),
                SpoutEmit::Message(Msg::Doc(doc(2))),
                SpoutEmit::Punctuate(2),
                SpoutEmit::Message(Msg::Doc(doc(3))),
                SpoutEmit::Punctuate(3),
            ]
        }
    };

    let log: Arc<Mutex<Vec<(u64, usize)>>> = Arc::new(Mutex::new(Vec::new()));
    let sink_log = Arc::clone(&log);
    let topology = TopologyBuilder::new()
        .batch_size(1)
        .spout("feed", 1, move |_| {
            Box::new(ScriptSpout {
                script: script().into_iter(),
            })
        })
        .bolt("assigner", 1, move |_| {
            Box::new(Assigner::new(config.clone(), dict.clone()))
        })
        .subscribe("feed", Grouping::Shuffle)
        .done()
        .bolt("sink", m, move |_| {
            Box::new(RouteSink {
                task: 0,
                log: Arc::clone(&sink_log),
            })
        })
        .subscribe("assigner", Grouping::Direct)
        .done()
        .build()
        .unwrap();
    run(topology).unwrap();

    let log = log.lock().unwrap();
    assert_eq!(targets_of(&log, 0), vec![0], "d0: current table T1 only");
    assert_eq!(
        targets_of(&log, 1),
        vec![0, 1],
        "d1: T2 plus retained T1 (pane 1 still in lookback)"
    );
    assert_eq!(
        targets_of(&log, 2),
        vec![0, 1],
        "d2: T1's last pane is still within the 2-pane lookback"
    );
    assert_eq!(
        targets_of(&log, 3),
        vec![1],
        "d3: T1 expired at punctuation 2 — a stale cached mask must not \
         route to partition 0"
    );
}
