//! The pooled work-stealing scheduler must be invisible in the results: the
//! full Fig. 2 topology produces per-window join output byte-identical to
//! the legacy thread-per-task executor, for any worker count and batch size.

use proptest::prelude::*;
use ssj_bench::testutil::{assert_runs_equal, RunWindows};
use ssj_core::{ground_truth_pairs, run_topology, SchedulerKind, StreamJoinConfig};
use ssj_json::{Dictionary, DocId, Document};

/// A joinable stream with per-window churn (fresh attribute pairs) so the
/// repartition feedback loop fires under both schedulers.
fn stream(dict: &Dictionary, windows: usize, per_window: usize, seed: u64) -> Vec<Document> {
    let mut out = Vec::new();
    for w in 0..windows as u64 {
        for i in 0..per_window as u64 {
            let id = w * per_window as u64 + i;
            let x = i.wrapping_mul(seed | 1).wrapping_add(w);
            let json = if i.is_multiple_of(5) {
                format!(r#"{{"w{w}":"fresh{}","grp":{}}}"#, x % 4, x % 3)
            } else {
                format!(
                    r#"{{"user":"u{}","sev":"s{}","grp":{}}}"#,
                    x % 6,
                    x % 4,
                    x % 3
                )
            };
            out.push(Document::from_json(DocId(id), &json, dict).unwrap());
        }
    }
    out
}

fn cfg(per_window: usize, m: usize, batch: usize) -> StreamJoinConfig {
    StreamJoinConfig::default()
        .with_m(m)
        .with_window_spec(ssj_core::WindowSpec::tumbling(per_window))
        .with_assigners(3)
        .with_expansion(false)
        .with_batch_size(batch)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// THE tentpole property: pooled execution (workers ∈ {1, 2, 8} ×
    /// batch ∈ {1, 64}) produces per-window join output byte-identical to
    /// the legacy thread-per-task run over the same stream.
    #[test]
    fn pooled_join_output_matches_thread_per_task(
        seed in 0u64..1 << 40,
        workers_pick in 0usize..3,
        batch_big in any::<bool>(),
        m in 2usize..6,
    ) {
        let workers = [1usize, 2, 8][workers_pick];
        let batch = if batch_big { 64 } else { 1 };
        let (nwin, per_window) = (3, 60);
        let dict = Dictionary::new();
        let docs = stream(&dict, nwin, per_window, seed);

        let legacy_cfg = cfg(per_window, m, batch)
            .with_scheduler(SchedulerKind::ThreadPerTask)
            .build()
            .unwrap();
        let legacy = run_topology(legacy_cfg, &dict, docs.clone()).unwrap();

        let pooled_cfg = cfg(per_window, m, batch)
            .with_scheduler(SchedulerKind::Pooled)
            .with_pool_workers(workers)
            .build()
            .unwrap();
        let pooled = run_topology(pooled_cfg, &dict, docs.clone()).unwrap();

        assert_runs_equal(&legacy, &pooled);

        // Both must also be exact versus brute force, not merely agree.
        let truth = RunWindows::from_pairs((0..nwin).map(|w| {
            ground_truth_pairs(&docs[w * per_window..(w + 1) * per_window])
                .into_iter()
                .collect::<Vec<_>>()
        }));
        assert_runs_equal(&truth, &pooled);
    }
}

/// m ≫ workers: many joiners multiplex onto a single worker and the run
/// still terminates with exact output (the cooperative step/park protocol
/// cannot deadlock on one thread).
#[test]
fn many_joiners_on_one_worker_stay_exact() {
    let (nwin, per_window) = (3, 80);
    let dict = Dictionary::new();
    let docs = stream(&dict, nwin, per_window, 7);
    let pooled = run_topology(
        cfg(per_window, 32, 64)
            .with_pool_workers(1)
            .build()
            .unwrap(),
        &dict,
        docs.clone(),
    )
    .unwrap();
    let truth = RunWindows::from_pairs((0..nwin).map(|w| {
        ground_truth_pairs(&docs[w * per_window..(w + 1) * per_window])
            .into_iter()
            .collect::<Vec<_>>()
    }));
    assert_runs_equal(&truth, &pooled);
}

/// Core pinning is a hint, not a semantics change: a pinned run (on Linux;
/// a silent no-op elsewhere) produces the same output.
#[test]
fn pinned_run_stays_exact() {
    let (nwin, per_window) = (2, 60);
    let dict = Dictionary::new();
    let docs = stream(&dict, nwin, per_window, 11);
    let pinned = run_topology(
        cfg(per_window, 4, 64).with_pin_cores(true).build().unwrap(),
        &dict,
        docs.clone(),
    )
    .unwrap();
    let plain = run_topology(cfg(per_window, 4, 64), &dict, docs).unwrap();
    assert_runs_equal(&plain, &pinned);
}
