//! Hot-group replication must be invisible in the results: for Zipfian
//! streams of any skew, the full Fig. 2 topology with `replicate_hot` on
//! produces per-window join output byte-identical to the unreplicated run
//! and exact versus the brute-force nested-loop oracle — across batch
//! sizes and both schedulers (DESIGN.md §4h).

use proptest::prelude::*;
use ssj_bench::testutil::{assert_runs_equal, RunWindows};
use ssj_bench::traffic::{sessionized_docs, skewed_docs, SkewConfig};
use ssj_bench::DataSet;
use ssj_core::{ground_truth_pairs, run_topology, SchedulerKind, StreamJoinConfig};

fn cfg(per_window: usize, m: usize, batch: usize, scheduler: SchedulerKind) -> StreamJoinConfig {
    StreamJoinConfig::default()
        .with_m(m)
        .with_window_spec(ssj_core::WindowSpec::tumbling(per_window))
        .with_assigners(2)
        .with_expansion(false)
        .with_batch_size(batch)
        .with_scheduler(scheduler)
        .with_pool_workers(2)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tentpole property: replicated ≡ unreplicated ≡ brute force, for
    /// Zipf s ∈ {0, 0.9, 1.2} × batch ∈ {1, 64} × both schedulers.
    #[test]
    fn replicated_join_output_matches_unreplicated(
        seed in 0u64..1 << 40,
        s_pick in 0usize..3,
        batch_big in any::<bool>(),
        pooled in any::<bool>(),
        m in 3usize..7,
        hot_factor_low in any::<bool>(),
        closed_world in any::<bool>(),
    ) {
        let s = [0.0, 0.9, 1.2][s_pick];
        let batch = if batch_big { 64 } else { 1 };
        let scheduler = if pooled {
            SchedulerKind::Pooled
        } else {
            SchedulerKind::ThreadPerTask
        };
        // A low threshold flags many groups hot (stress the replica
        // routing); the default flags only true outliers.
        let hot_factor = if hot_factor_low { 1.2 } else { 4.0 };
        let (nwin, per_window) = (3, 80);
        let skew = SkewConfig { seed, keys: 6, s, attach: 0.8 };
        // The closed-world stream keeps every pair table-known, so the
        // replica cells actually carry traffic; the open dataset adds
        // novelty churn and exercises the exactness broadcast instead.
        let (dict, docs) = if closed_world {
            sessionized_docs(nwin * per_window, skew)
        } else {
            skewed_docs(DataSet::RwData, nwin * per_window, skew)
        };

        let base_cfg = cfg(per_window, m, batch, scheduler);
        let base = run_topology(base_cfg, &dict, docs.clone()).unwrap();

        let rep_cfg = cfg(per_window, m, batch, scheduler)
            .with_replicate_hot(true)
            .with_hot_factor(hot_factor)
            .build()
            .unwrap();
        let rep = run_topology(rep_cfg, &dict, docs.clone()).unwrap();

        assert_runs_equal(&base, &rep);

        // Both must also be exact versus brute force, not merely agree.
        let truth = RunWindows::from_pairs((0..nwin).map(|w| {
            ground_truth_pairs(&docs[w * per_window..(w + 1) * per_window])
        }));
        assert_runs_equal(&truth, &rep);
    }
}

/// The equivalence above is only meaningful if replica routing actually
/// engages: under heavy skew with an aggressive threshold, the assigners
/// must route documents through hot-pair replica cells.
#[test]
fn replication_engages_under_skew() {
    let (dict, docs) = sessionized_docs(
        400,
        SkewConfig {
            seed: 42,
            keys: 4,
            s: 1.2,
            attach: 0.9,
        },
    );
    let cfg = StreamJoinConfig::default()
        .with_m(4)
        .with_window_spec(ssj_core::WindowSpec::tumbling(100))
        .with_assigners(2)
        .with_expansion(false)
        .with_replicate_hot(true)
        .with_hot_factor(1.2)
        .with_metrics(true)
        .build()
        .unwrap();
    let report = run_topology(cfg, &dict, docs.clone()).unwrap();
    let hot_routed: u64 = report
        .runtime
        .tasks
        .iter()
        .filter(|t| t.component == "assigner")
        .map(|t| t.counter("hot_routed"))
        .sum();
    assert!(
        hot_routed > 0,
        "aggressive threshold under heavy skew must trigger replica routing"
    );
    // And the routed results are still exact.
    for (w, found) in report.joins_per_window.iter().enumerate() {
        let truth = ground_truth_pairs(&docs[w * 100..(w + 1) * 100]);
        assert_eq!(found, &truth, "window {w}");
    }
}

/// Replication across pane-chained sliding windows: retired tables carry
/// their own hot lists, so replica routing must stay exact when a document
/// probes both current and retired tables.
#[test]
fn replication_stays_exact_with_sliding_windows() {
    let (dict, docs) = skewed_docs(
        DataSet::RwData,
        360,
        SkewConfig {
            seed: 7,
            keys: 5,
            s: 1.1,
            attach: 0.8,
        },
    );
    let spec = ssj_core::WindowSpec::sliding(60, 2);
    let base = StreamJoinConfig::default()
        .with_m(4)
        .with_window_spec(spec)
        .with_assigners(2)
        .with_expansion(false)
        .build()
        .unwrap();
    let rep = base
        .clone()
        .with_replicate_hot(true)
        .with_hot_factor(1.3)
        .build()
        .unwrap();
    let a = run_topology(base, &dict, docs.clone()).unwrap();
    let b = run_topology(rep, &dict, docs).unwrap();
    assert_runs_equal(&a, &b);
}
