//! Transport batching must not change join results: the full Fig. 2
//! topology produces identical per-window output for any batch size.

use ssj_bench::testutil::{assert_runs_equal, RunWindows};
use ssj_core::{ground_truth_pairs, run_topology, StreamJoinConfig};
use ssj_json::{Dictionary, DocId, Document};

/// A stream with enough shared attribute-value pairs to join densely and
/// enough churn to exercise the repartition feedback loop.
fn stream(dict: &Dictionary, windows: usize, per_window: usize) -> Vec<Document> {
    let mut out = Vec::new();
    for w in 0..windows as u64 {
        for i in 0..per_window as u64 {
            let id = w * per_window as u64 + i;
            // A rotating minority of fresh pairs per window keeps the
            // assigners signalling without overwhelming the join.
            let json = if i.is_multiple_of(7) {
                format!(r#"{{"w{w}":"fresh{}","grp":{}}}"#, i % 4, i % 3)
            } else {
                format!(
                    r#"{{"user":"u{}","sev":"s{}","grp":{}}}"#,
                    i % 6,
                    i % 4,
                    i % 3
                )
            };
            out.push(Document::from_json(DocId(id), &json, dict).unwrap());
        }
    }
    out
}

#[test]
fn join_output_identical_across_batch_sizes() {
    let dict = Dictionary::new();
    let (windows, per_window) = (4, 90);
    let docs = stream(&dict, windows, per_window);
    let base_cfg = StreamJoinConfig::default()
        .with_m(3)
        .with_window_spec(ssj_core::WindowSpec::tumbling(per_window))
        .with_expansion(false);

    let unbatched = run_topology(
        base_cfg.clone().with_batch_size(1).build().unwrap(),
        &dict,
        docs.clone(),
    )
    .unwrap();

    // The unbatched run must itself be exact versus brute force.
    let truth = RunWindows::from_pairs((0..windows).map(|w| {
        ground_truth_pairs(&docs[w * per_window..(w + 1) * per_window])
            .into_iter()
            .collect::<Vec<_>>()
    }));
    assert_runs_equal(&truth, &unbatched);

    for bs in [7usize, 64] {
        let batched = run_topology(
            base_cfg.clone().with_batch_size(bs).build().unwrap(),
            &dict,
            docs.clone(),
        )
        .unwrap();
        assert_runs_equal(&unbatched, &batched);
    }
}
