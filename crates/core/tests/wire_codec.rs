//! Round-trip property tests for the §4f binary wire codec: random
//! documents and frames of every payload kind survive encode → decode
//! bit-exactly, dictionary-epoch mismatches are rejected, and truncated
//! frames are errors, never panics.

use proptest::prelude::*;
use ssj_core::{Msg, MsgCodec, TableMsg};
use ssj_json::{Dictionary, DocId, Document, Scalar};
use ssj_partition::{AssociationGroup, PartitionTable};
use ssj_runtime::wire::{decode_frame, encode_frame, Cursor, Frame, Payload, WireError};
use ssj_runtime::WireCodec;
use std::sync::Arc;

/// Deterministically seed a dictionary: two calls with the same `n` yield
/// identical content, hence identical ids and epochs — the deploy-time
/// contract between group members.
fn seeded_dict(n: usize) -> Dictionary {
    let dict = Dictionary::new();
    for i in 0..n as i64 {
        dict.intern(&format!("attr{}", i % 7), Scalar::Int(i % 11));
        dict.intern(
            &format!("attr{}", i % 7),
            Scalar::Str(format!("v{}", i % 5)),
        );
    }
    dict.intern("f", Scalar::Float(1.5));
    dict.intern("b", Scalar::Bool(true));
    dict.intern("z", Scalar::Null);
    dict
}

/// A random document over the seeded universe, with `fresh` controlling how
/// many pairs are interned *after* the codec snapshot (inline symbols).
fn doc_from(dict: &Dictionary, id: u64, picks: &[(u8, i64)], fresh: &[(u8, i64)]) -> Document {
    let mut pairs = Vec::new();
    for &(a, v) in picks {
        pairs.push(dict.intern(&format!("attr{}", a % 7), Scalar::Int(v % 11)));
    }
    for &(a, v) in fresh {
        pairs.push(dict.intern(&format!("late{a}"), Scalar::Int(v)));
    }
    Document::from_pairs(DocId(id), pairs)
}

fn assert_same_doc(a: &Document, b: &Document, dict: &Dictionary) {
    assert_eq!(a.id(), b.id());
    assert_eq!(a.len(), b.len());
    for (pa, pb) in a.pairs().iter().zip(b.pairs()) {
        assert_eq!(dict.render_avp(pa.avp), dict.render_avp(pb.avp));
    }
}

fn roundtrip(codec: &MsgCodec, frame: &Frame<Msg>) -> Frame<Msg> {
    let mut buf = Vec::new();
    encode_frame(frame, codec, &mut buf);
    // Strip the u32 length prefix: decode_frame takes the frame body.
    decode_frame(&buf[4..], codec).expect("roundtrip decode")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Data frames with random documents — including pairs interned after
    /// the snapshot, which travel inline and are re-interned — round-trip
    /// to semantically identical documents.
    #[test]
    fn document_data_frames_roundtrip(
        id in 0u64..1 << 40,
        picks in proptest::collection::vec((0u8..7, 0i64..11), 1..6),
        fresh in proptest::collection::vec((0u8..20, -50i64..50), 0..4),
    ) {
        let dict = seeded_dict(40);
        let codec = MsgCodec::new(&dict);
        let doc = doc_from(&dict, id, &picks, &fresh);
        let frame = Frame {
            target: 3,
            from: 1,
            feedback: false,
            payload: Payload::Data(Msg::Doc(Arc::new(doc.clone()))),
        };
        let back = roundtrip(&codec, &frame);
        prop_assert_eq!(back.target, 3);
        prop_assert_eq!(back.from, 1);
        let Payload::Data(Msg::Doc(d)) = back.payload else {
            panic!("wrong payload kind");
        };
        assert_same_doc(&doc, &d, &dict);
    }

    /// Batch frames of mixed messages round-trip with order and count
    /// preserved (PR 2 batch boundaries survive the wire).
    #[test]
    fn batch_frames_roundtrip(
        ids in proptest::collection::vec(0u64..1000, 1..8),
        window in 0u64..100,
    ) {
        let dict = seeded_dict(30);
        let codec = MsgCodec::new(&dict);
        let msgs: Vec<Msg> = ids
            .iter()
            .map(|&i| Msg::Doc(Arc::new(doc_from(&dict, i, &[(i as u8 % 7, i as i64)], &[]))))
            .chain([Msg::JoinStats {
                window,
                joiner: 2,
                docs: ids.len(),
                pairs: ids.iter().map(|&i| (DocId(i), DocId(i + 1))).collect(),
            }])
            .collect();
        let frame = Frame {
            target: 9,
            from: 4,
            feedback: true,
            payload: Payload::Batch(msgs.clone()),
        };
        let back = roundtrip(&codec, &frame);
        prop_assert!(back.feedback);
        let Payload::Batch(out) = back.payload else {
            panic!("wrong payload kind");
        };
        prop_assert_eq!(out.len(), msgs.len());
        let Msg::JoinStats { window: w, joiner, docs, pairs } = &out[out.len() - 1] else {
            panic!("tail message kind changed");
        };
        prop_assert_eq!(*w, window);
        prop_assert_eq!(*joiner, 2);
        prop_assert_eq!(*docs, ids.len());
        prop_assert_eq!(pairs.len(), ids.len());
    }

    /// Punctuation and EOS frames (no codec payload) round-trip exactly.
    #[test]
    fn control_frames_roundtrip(p in 0u64..1 << 50, target in 0usize..64, from in 0usize..64) {
        let dict = seeded_dict(5);
        let codec = MsgCodec::new(&dict);
        for payload in [Payload::<Msg>::Punct(p), Payload::Eos] {
            let frame = Frame { target, from, feedback: false, payload };
            let back = roundtrip(&codec, &frame);
            prop_assert_eq!(back.target, target);
            prop_assert_eq!(back.from, from);
            match (&frame.payload, &back.payload) {
                (Payload::Punct(a), Payload::Punct(b)) => prop_assert_eq!(a, b),
                (Payload::Eos, Payload::Eos) => {}
                other => panic!("payload kind changed: {other:?}"),
            }
        }
    }

    /// Every proper prefix of an encoded frame body fails to decode with an
    /// error — never a panic, never a silent partial message.
    #[test]
    fn truncated_frames_are_rejected(
        id in 0u64..1000,
        picks in proptest::collection::vec((0u8..7, 0i64..11), 1..5),
    ) {
        let dict = seeded_dict(30);
        let codec = MsgCodec::new(&dict);
        let doc = doc_from(&dict, id, &picks, &[]);
        let frame = Frame {
            target: 0,
            from: 0,
            feedback: false,
            payload: Payload::Data(Msg::Doc(Arc::new(doc))),
        };
        let mut buf = Vec::new();
        encode_frame(&frame, &codec, &mut buf);
        let body = &buf[4..];
        for cut in 0..body.len() {
            prop_assert!(
                decode_frame(&body[..cut], &codec).is_err(),
                "prefix of {cut}/{} bytes decoded successfully",
                body.len()
            );
        }
    }
}

/// Two dictionaries seeded identically produce codecs with equal epochs;
/// different content produces different epochs, and a Data frame encoded
/// under one epoch is rejected by the other codec as an epoch mismatch.
#[test]
fn epoch_mismatch_is_rejected() {
    let a = seeded_dict(40);
    let b = seeded_dict(40);
    assert_eq!(MsgCodec::new(&a).epoch(), MsgCodec::new(&b).epoch());

    let c = seeded_dict(41); // one extra interning: different universe
    let codec_a = MsgCodec::new(&a);
    let codec_c = MsgCodec::new(&c);
    assert_ne!(codec_a.epoch(), codec_c.epoch());

    let frame = Frame {
        target: 0,
        from: 0,
        feedback: false,
        payload: Payload::Data(Msg::Doc(Arc::new(doc_from(&a, 1, &[(0, 1)], &[])))),
    };
    let mut buf = Vec::new();
    encode_frame(&frame, &codec_a, &mut buf);
    match decode_frame::<Msg>(&buf[4..], &codec_c) {
        Err(WireError::EpochMismatch { expected, got }) => {
            assert_eq!(expected, codec_c.epoch());
            assert_eq!(got, codec_a.epoch());
        }
        other => panic!("expected EpochMismatch, got {other:?}"),
    }
}

/// A bare symbol id at or above the receiver's watermark is data from a
/// different (larger) snapshot — rejected as BadSymbol, not resolved to
/// garbage.
#[test]
fn out_of_watermark_symbols_are_rejected() {
    let dict = seeded_dict(10);
    let codec = MsgCodec::new(&dict);
    let mut body = Vec::new();
    body.push(0); // TAG_DOC
    ssj_runtime::wire::put_varint(&mut body, 1); // doc id
    ssj_runtime::wire::put_varint(&mut body, 1); // one pair
    let bogus = (dict.avp_count() as u64 + 5) << 1; // even: bare symbol
    ssj_runtime::wire::put_varint(&mut body, bogus);
    let mut c = Cursor::new(&body);
    match codec.decode(&mut c) {
        Err(WireError::BadSymbol(id)) => assert_eq!(id, dict.avp_count() as u64 + 5),
        other => panic!("expected BadSymbol, got {other:?}"),
    }
}

/// The control-plane messages (LocalGroups, Table, UpdateRequest,
/// Repartition) round-trip with loads, members, and expansions intact.
#[test]
fn control_plane_messages_roundtrip() {
    let dict = seeded_dict(40);
    let codec = MsgCodec::new(&dict);
    let p0 = dict.intern("attr0", Scalar::Int(0));
    let p1 = dict.intern("attr1", Scalar::Int(1));
    let p2 = dict.intern("attr2", Scalar::Int(2));

    let groups = vec![
        AssociationGroup {
            avps: vec![p0.avp, p1.avp],
            load: 17,
        },
        AssociationGroup {
            avps: vec![p2.avp],
            load: 3,
        },
    ];
    let msg = Msg::LocalGroups {
        window: 7,
        creator: 1,
        groups: groups.clone(),
        expansion: None,
        hot: vec![(p0.avp, 17), (p2.avp, 3)],
    };
    let mut buf = Vec::new();
    codec.encode(&msg, &mut buf);
    let mut c = Cursor::new(&buf);
    let Msg::LocalGroups {
        window,
        creator,
        groups: g2,
        expansion,
        hot,
    } = codec.decode(&mut c).unwrap()
    else {
        panic!("kind changed");
    };
    c.finish().unwrap();
    assert_eq!((window, creator), (7, 1));
    assert!(expansion.is_none());
    assert_eq!(g2.len(), 2);
    assert_eq!(g2[0].avps, groups[0].avps);
    assert_eq!(g2[0].load, 17);
    assert_eq!(g2[1].avps, groups[1].avps);
    assert_eq!(hot, vec![(p0.avp, 17), (p2.avp, 3)]);

    let mut table = PartitionTable::empty(3);
    table.add_avp(0, p0.avp);
    table.add_avp(0, p1.avp);
    table.add_avp(2, p2.avp);
    table.bump_load(0, 12);
    table.bump_load(2, 4);
    let hot_specs = vec![ssj_core::HotSpec {
        avp: p1.avp,
        replicas: 2,
        cells: vec![0, 2, 1],
    }];
    let msg = Msg::Table(Arc::new(TableMsg {
        window: 9,
        table: table.clone(),
        expansion: None,
        hot: hot_specs.clone(),
    }));
    let mut buf = Vec::new();
    codec.encode(&msg, &mut buf);
    let mut c = Cursor::new(&buf);
    let Msg::Table(t2) = codec.decode(&mut c).unwrap() else {
        panic!("kind changed");
    };
    c.finish().unwrap();
    assert_eq!(t2.window, 9);
    assert_eq!(t2.table, table);
    assert_eq!(t2.hot, hot_specs);

    let msg = Msg::UpdateRequest(p1.avp);
    let mut buf = Vec::new();
    codec.encode(&msg, &mut buf);
    let mut c = Cursor::new(&buf);
    let Msg::UpdateRequest(avp) = codec.decode(&mut c).unwrap() else {
        panic!("kind changed");
    };
    assert_eq!(avp, p1.avp);

    let mut buf = Vec::new();
    codec.encode(&Msg::Repartition, &mut buf);
    let mut c = Cursor::new(&buf);
    assert!(matches!(codec.decode(&mut c).unwrap(), Msg::Repartition));
    c.finish().unwrap();
}

/// Steady-state frames carry no strings: a document made entirely of
/// snapshot-covered pairs encodes to bare varints (strictly smaller than
/// its JSON rendering, containing none of the attribute names).
#[test]
fn steady_state_frames_carry_no_strings() {
    let dict = seeded_dict(40);
    let codec = MsgCodec::new(&dict);
    let doc = doc_from(&dict, 42, &[(0, 1), (1, 2), (2, 3)], &[]);
    let mut buf = Vec::new();
    codec.encode(&Msg::Doc(Arc::new(doc.clone())), &mut buf);
    let json = doc.to_json(&dict);
    assert!(
        buf.len() < json.len(),
        "wire {} bytes >= json {} bytes",
        buf.len(),
        json.len()
    );
    for name in ["attr0", "attr1", "attr2"] {
        assert!(
            !buf.windows(name.len()).any(|w| w == name.as_bytes()),
            "attribute name {name:?} leaked into a steady-state frame"
        );
    }
}
