//! In-process shared-nothing equivalence: the same Fig. 2 topology run as a
//! 2- or 3-member socket-linked group (each member on its own thread, each
//! with its *own* dictionary built from the same stream) must produce
//! per-window join output byte-identical to the plain single-process run.
//!
//! Threads stand in for processes here — they share no dictionary, no
//! channels, and talk only through the Unix-socket mesh — which keeps the
//! test fast; true multi-process runs are covered by the CLI's
//! `distributed` test.

use proptest::prelude::*;
use ssj_bench::testutil::{assert_runs_equal, RunWindows};
use ssj_core::{
    ground_truth_pairs, run_topology, run_topology_distributed, DistRuntime, StreamJoinConfig,
};
use ssj_json::{Dictionary, DocId, Document};
use std::path::PathBuf;

fn stream(dict: &Dictionary, n: usize, seed: u64) -> Vec<Document> {
    (0..n as u64)
        .map(|i| {
            let x = i.wrapping_mul(seed | 1);
            let json = if i.is_multiple_of(7) {
                format!(r#"{{"fresh{}":"x{}","grp":{}}}"#, x % 5, x % 4, x % 3)
            } else {
                format!(
                    r#"{{"user":"u{}","sev":"s{}","grp":{}}}"#,
                    x % 6,
                    x % 4,
                    x % 3
                )
            };
            Document::from_json(DocId(i), &json, dict).unwrap()
        })
        .collect()
}

fn cfg(window: usize, m: usize, workers: usize) -> StreamJoinConfig {
    StreamJoinConfig::default()
        .with_m(m)
        .with_window_spec(ssj_core::WindowSpec::tumbling(window))
        .with_partition_creators(2)
        .with_assigners(3)
        .with_expansion(false)
        .with_batch_size(16)
        .with_workers(workers)
        .build()
        .unwrap()
}

fn socket_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ssj-dist-eq-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Run the topology as a `workers`-member socket group, one thread per
/// member, each with an independently built dictionary; returns worker 0's
/// report (the reporter lives there).
fn group_run(
    config: StreamJoinConfig,
    n: usize,
    seed: u64,
    dir: PathBuf,
) -> ssj_core::TopologyRunReport {
    let handles: Vec<_> = (0..config.workers)
        .map(|w| {
            let dir = dir.clone();
            let config = config.clone();
            std::thread::Builder::new()
                .name(format!("ssj-worker-{w}"))
                .spawn(move || {
                    // Each "process" builds its own dictionary and stream,
                    // exactly as real worker processes do at deploy time.
                    let dict = Dictionary::new();
                    let docs = stream(&dict, n, seed);
                    let dr = DistRuntime {
                        workers: config.workers,
                        my_worker: w,
                        socket_dir: dir,
                        attempt: 0,
                    };
                    run_topology_distributed(config, &dict, docs, &dr)
                })
                .unwrap()
        })
        .collect();
    let mut reports: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("worker thread panicked").unwrap())
        .collect();
    let _ = std::fs::remove_dir_all(&dir);
    reports.remove(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// THE §4f tentpole property: a socket-linked group run equals the
    /// single-process pooled run, window for window, pair for pair — and
    /// both are exact versus brute force.
    #[test]
    fn group_run_matches_single_process(
        seed in 0u64..1 << 40,
        workers in 2usize..4,
        m in 2usize..5,
    ) {
        let (nwin, window) = (3, 60);
        let n = nwin * window;
        let config = cfg(window, m, workers);

        let dict = Dictionary::new();
        let docs = stream(&dict, n, seed);
        let solo_cfg = config.clone().with_workers(1).build().unwrap();
        let solo = run_topology(solo_cfg, &dict, docs.clone()).unwrap();

        let grouped = group_run(config, n, seed, socket_dir(&format!("{seed}-{workers}-{m}")));

        assert_runs_equal(&solo, &grouped);

        let truth = RunWindows::from_pairs(
            (0..nwin).map(|w| ground_truth_pairs(&docs[w * window..(w + 1) * window])),
        );
        assert_runs_equal(&truth, &grouped);
    }
}

/// Non-leader workers return empty join output (the reporter is placed on
/// worker 0), and every worker's run terminates cleanly.
#[test]
fn non_leader_reports_are_empty() {
    let config = cfg(50, 3, 2);
    let dir = socket_dir("empty");
    let handles: Vec<_> = (0..2)
        .map(|w| {
            let dir = dir.clone();
            let config = config.clone();
            std::thread::spawn(move || {
                let dict = Dictionary::new();
                let docs = stream(&dict, 100, 12345);
                let dr = DistRuntime {
                    workers: 2,
                    my_worker: w,
                    socket_dir: dir,
                    attempt: 0,
                };
                run_topology_distributed(config, &dict, docs, &dr).unwrap()
            })
        })
        .collect();
    let reports: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(reports[0].joins_per_window.len(), 2);
    assert!(reports[1].joins_per_window.is_empty());
}
