//! Sliding-window exactness: the pane-chained distributed runtime must
//! produce, pane for pane, exactly the pairs of the local [`SlidingJoiner`]
//! oracle — which in turn must agree with brute force (NLJ over the whole
//! stream, filtered to pairs at most `panes_per_window - 1` panes apart).
//!
//! Each pair is attributed to the pane of its *later* document, matching
//! the runtime's JoinStats keying (a cross-pane pair is found when the
//! later document probes the frozen panes).

use proptest::prelude::*;
use ssj_bench::testutil::{assert_runs_equal, RunWindows};
use ssj_core::{
    run_topology, run_topology_distributed, DistRuntime, SchedulerKind, StreamJoinConfig,
    WindowSpec,
};
use ssj_join::SlidingJoiner;
use ssj_json::{Dictionary, DocId, Document};
use std::path::PathBuf;

fn stream(dict: &Dictionary, n: usize, seed: u64) -> Vec<Document> {
    (0..n as u64)
        .map(|i| {
            let x = i.wrapping_mul(seed | 1);
            let json = if i.is_multiple_of(7) {
                format!(r#"{{"fresh{}":"x{}","grp":{}}}"#, x % 5, x % 4, x % 3)
            } else {
                format!(
                    r#"{{"user":"u{}","sev":"s{}","grp":{}}}"#,
                    x % 6,
                    x % 4,
                    x % 3
                )
            };
            Document::from_json(DocId(i), &json, dict).unwrap()
        })
        .collect()
}

fn sliding_cfg(spec: WindowSpec, m: usize) -> StreamJoinConfig {
    StreamJoinConfig::default()
        .with_m(m)
        .with_window_spec(spec)
        .with_partition_creators(2)
        .with_assigners(3)
        .with_expansion(false)
        .with_batch_size(16)
        .build()
        .unwrap()
}

/// Oracle A: the local pane-chained joiner, pairs keyed by the pane of the
/// later (probing) document.
fn oracle_windows(docs: &[Document], spec: WindowSpec) -> RunWindows {
    let mut joiner = SlidingJoiner::new(spec);
    let panes = docs.len() / spec.pane_docs();
    let mut windows: Vec<Vec<(u64, u64)>> = vec![Vec::new(); panes];
    for (i, d) in docs.iter().enumerate() {
        let pane = i / spec.pane_docs();
        for p in joiner.insert_and_probe(d.clone()) {
            windows[pane].push((p.0, d.id().0));
        }
    }
    RunWindows::from_pairs(windows)
}

/// Oracle B: brute force — every joinable pair of the whole stream whose
/// documents are at most `panes_per_window - 1` panes apart.
fn brute_force_windows(docs: &[Document], spec: WindowSpec) -> RunWindows {
    let panes = docs.len() / spec.pane_docs();
    let lookback = (spec.panes_per_window() - 1) as u64;
    let mut windows: Vec<Vec<(u64, u64)>> = vec![Vec::new(); panes];
    for (a, b) in ssj_join::nlj::join_batch(docs) {
        let (lo, hi) = (a.0.min(b.0), a.0.max(b.0));
        let (pane_lo, pane_hi) = (lo / spec.pane_docs() as u64, hi / spec.pane_docs() as u64);
        if pane_hi - pane_lo <= lookback {
            windows[pane_hi as usize].push((lo, hi));
        }
    }
    RunWindows::from_pairs(windows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// THE tentpole property: across batch sizes and schedulers, the
    /// distributed sliding runtime ≡ SlidingJoiner oracle ≡ brute force.
    #[test]
    fn sliding_runtime_matches_oracle_and_brute_force(
        seed in 0u64..1 << 40,
        m in 2usize..5,
        panes in 2usize..5,
    ) {
        let pane = 40;
        let spec = WindowSpec::sliding(pane, panes);
        let n = pane * (panes + 3); // several full windows worth of panes
        let dict = Dictionary::new();
        let docs = stream(&dict, n, seed);

        let oracle = oracle_windows(&docs, spec);
        let brute = brute_force_windows(&docs, spec);
        assert_runs_equal(&oracle, &brute);

        for batch in [1usize, 64] {
            for sched in [SchedulerKind::Pooled, SchedulerKind::ThreadPerTask] {
                let cfg = sliding_cfg(spec, m)
                    .with_batch_size(batch)
                    .with_scheduler(sched)
                    .build()
                    .unwrap();
                let report = run_topology(cfg, &dict, docs.clone()).unwrap();
                assert_runs_equal(&report, &oracle);
            }
        }
    }
}

/// A 2-process (thread-isolated, socket-linked) sliding group run produces
/// the same pane-keyed pairs as the single-process run and the oracle.
#[test]
fn sliding_group_run_matches_single_process() {
    let spec = WindowSpec::sliding(30, 3);
    let n = 30 * 6;
    let seed = 20260808;
    let config = sliding_cfg(spec, 4).with_workers(2).build().unwrap();

    let dict = Dictionary::new();
    let docs = stream(&dict, n, seed);
    let solo_cfg = config.clone().with_workers(1).build().unwrap();
    let solo = run_topology(solo_cfg, &dict, docs.clone()).unwrap();

    let dir: PathBuf = std::env::temp_dir().join(format!("ssj-slide-eq-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let handles: Vec<_> = (0..config.workers)
        .map(|w| {
            let dir = dir.clone();
            let config = config.clone();
            std::thread::Builder::new()
                .name(format!("ssj-worker-{w}"))
                .spawn(move || {
                    let dict = Dictionary::new();
                    let docs = stream(&dict, n, seed);
                    let dr = DistRuntime {
                        workers: config.workers,
                        my_worker: w,
                        socket_dir: dir,
                        attempt: 0,
                    };
                    run_topology_distributed(config, &dict, docs, &dr)
                })
                .unwrap()
        })
        .collect();
    let mut reports: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("worker thread panicked").unwrap())
        .collect();
    let _ = std::fs::remove_dir_all(&dir);
    let grouped = reports.remove(0);

    assert_runs_equal(&solo, &grouped);
    assert_runs_equal(&grouped, &oracle_windows(&docs, spec));
}

/// A 1-pane sliding spec degenerates to tumbling: same pairs, pane = window.
#[test]
fn single_pane_sliding_equals_tumbling() {
    let dict = Dictionary::new();
    let docs = stream(&dict, 200, 7);
    let tumbling = run_topology(
        sliding_cfg(WindowSpec::tumbling(50), 3),
        &dict,
        docs.clone(),
    )
    .unwrap();
    let sliding = run_topology(
        sliding_cfg(WindowSpec::sliding(50, 1), 3),
        &dict,
        docs.clone(),
    )
    .unwrap();
    assert_runs_equal(&tumbling, &sliding);
    assert_runs_equal(&sliding, &oracle_windows(&docs, WindowSpec::sliding(50, 1)));
}
