//! Out-of-core differential (§4i acceptance): a run under a tiny
//! `--mem-budget` — which forces sealed window state out to disk segments
//! and probes it back lazily through the block cache — must produce
//! byte-identical per-window join output to the fully-resident run.
//!
//! The matrix covers tumbling and sliding windows, batch sizes 1 and 64,
//! both schedulers, the creator's batch path (expansion on), and a
//! recovered crash. Every spilled run asserts `spill_bytes > 0` (the tier
//! actually engaged — a trivially-passing test would be one that never
//! spilled), and every resident run asserts `spill_bytes == 0` (budget 0
//! provably installs nothing).

use ssj_bench::testutil::assert_runs_equal;
use ssj_core::{run_topology, run_topology_chaos, SchedulerKind, StreamJoinConfig, WindowSpec};
use ssj_json::{Dictionary, DocId, Document};
use ssj_runtime::FaultPlan;
use std::path::PathBuf;

const PANE: usize = 40;
const N: usize = PANE * 6;

/// Keep the budget small enough that every pane spills several chunks but
/// large enough that a chunk holds a handful of documents (so cross-chunk
/// probes, not just within-chunk joins, are exercised).
const BUDGET: u64 = 2048;

fn stream(dict: &Dictionary, seed: u64) -> Vec<Document> {
    (0..N as u64)
        .map(|i| {
            let x = i.wrapping_mul(seed | 1);
            let json = if i.is_multiple_of(7) {
                format!(r#"{{"fresh{}":"x{}","grp":{}}}"#, x % 5, x % 4, x % 3)
            } else {
                format!(
                    r#"{{"user":"u{}","sev":"s{}","grp":{}}}"#,
                    x % 6,
                    x % 4,
                    x % 3
                )
            };
            Document::from_json(DocId(i), &json, dict).unwrap()
        })
        .collect()
}

fn spill_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ssj-spill-eq-{}-{tag}", std::process::id()))
}

fn cfg(
    spec: WindowSpec,
    batch: usize,
    sched: SchedulerKind,
    expansion: bool,
    budget: u64,
    tag: &str,
) -> StreamJoinConfig {
    let b = StreamJoinConfig::default()
        .with_m(3)
        .with_window_spec(spec)
        .with_partition_creators(2)
        .with_assigners(2)
        .with_batch_size(batch)
        .with_scheduler(sched)
        .with_expansion(expansion);
    let b = if budget > 0 {
        b.with_mem_budget(budget).with_spill_dir(spill_dir(tag))
    } else {
        b
    };
    b.build().unwrap()
}

/// Run the same stream resident and spilled; assert identical join output
/// and that the tier engaged exactly when a budget was set.
fn assert_spilled_matches_resident(
    spec: WindowSpec,
    batch: usize,
    sched: SchedulerKind,
    expansion: bool,
    seed: u64,
    tag: &str,
) {
    let dict = Dictionary::new();
    let docs = stream(&dict, seed);

    let resident_cfg = cfg(spec, batch, sched, expansion, 0, tag);
    let resident = run_topology(resident_cfg, &dict, docs.clone()).unwrap();
    assert_eq!(
        resident.runtime.counter_total("spill_bytes"),
        0,
        "{tag}: budget 0 must never spill"
    );

    let spilled_cfg = cfg(spec, batch, sched, expansion, BUDGET, tag);
    let spilled = run_topology(spilled_cfg, &dict, docs).unwrap();
    assert!(
        spilled.runtime.counter_total("spill_bytes") > 0,
        "{tag}: the tier never engaged — the differential is vacuous"
    );
    assert!(
        spilled.runtime.counter_total("segment_reads") > 0,
        "{tag}: no segment was ever read back"
    );

    assert_runs_equal(&resident, &spilled);
    let _ = std::fs::remove_dir_all(spill_dir(tag));
}

#[test]
fn tumbling_batch1_pooled_expansion_matches() {
    // Expansion on → the creator takes its batch path, so *its* buffered
    // window view spills and is read back wholesale at the boundary.
    assert_spilled_matches_resident(
        WindowSpec::tumbling(PANE),
        1,
        SchedulerKind::Pooled,
        true,
        21,
        "tb1pe",
    );
}

#[test]
fn tumbling_batch64_threaded_matches() {
    assert_spilled_matches_resident(
        WindowSpec::tumbling(PANE),
        64,
        SchedulerKind::ThreadPerTask,
        false,
        22,
        "tb64t",
    );
}

#[test]
fn sliding_batch1_threaded_matches() {
    assert_spilled_matches_resident(
        WindowSpec::sliding(PANE, 3),
        1,
        SchedulerKind::ThreadPerTask,
        false,
        23,
        "sb1t",
    );
}

#[test]
fn sliding_batch64_pooled_matches() {
    assert_spilled_matches_resident(
        WindowSpec::sliding(PANE, 3),
        64,
        SchedulerKind::Pooled,
        false,
        24,
        "sb64p",
    );
}

/// A joiner crashed mid-pane under a spilling budget recovers (segment
/// manifests restored, open-pane chunks rebuilt by replay) to output
/// byte-identical to the fault-free *resident* run.
#[test]
fn spilled_crash_recovery_matches_resident() {
    let dict = Dictionary::new();
    let docs = stream(&dict, 25);

    let resident_cfg = cfg(
        WindowSpec::sliding(PANE, 3),
        8,
        SchedulerKind::Pooled,
        false,
        0,
        "chaos",
    );
    let resident = run_topology(resident_cfg, &dict, docs.clone()).unwrap();

    let spilled_cfg = {
        let b = StreamJoinConfig::default()
            .with_m(3)
            .with_window_spec(WindowSpec::sliding(PANE, 3))
            .with_partition_creators(2)
            .with_assigners(2)
            .with_batch_size(8)
            .with_expansion(false)
            .with_retries(2) // arms supervised window-boundary snapshots
            .with_backoff_ms(1)
            .with_mem_budget(BUDGET)
            .with_spill_dir(spill_dir("chaos"));
        b.build().unwrap()
    };
    let plan = FaultPlan::new().crash("joiner", 1, 3, 5);
    let faulted = run_topology_chaos(spilled_cfg, &dict, docs, plan).unwrap();
    assert!(
        faulted.runtime.total_faults() > 0,
        "the planned crash never fired"
    );
    assert!(
        faulted.runtime.total_recoveries() > 0,
        "the supervisor never recovered the crashed task"
    );
    assert!(
        faulted.runtime.counter_total("spill_bytes") > 0,
        "the tier never engaged under chaos"
    );
    assert_runs_equal(&resident, &faulted);
    let _ = std::fs::remove_dir_all(spill_dir("chaos"));
}
