//! Sliding-window crash recovery: a supervised task crashed mid-pane or at
//! a pane boundary must recover to output byte-identical to the fault-free
//! run. This is the proof that [`ssj_core::components`]' snapshots capture
//! every piece of *cross-pane* state — the Joiner's frozen pane ring, the
//! PartitionCreator's group index + pane ring, and the Assigner's retained
//! pane tables — because post-crash replay rebuilds only the open pane.

use proptest::prelude::*;
use ssj_bench::testutil::assert_runs_equal;
use ssj_core::{run_topology, run_topology_chaos, StreamJoinConfig, WindowSpec};
use ssj_json::{Dictionary, DocId, Document};
use ssj_runtime::FaultPlan;

const PANE: usize = 40;
const PANES: usize = 3;
const N: usize = PANE * 7; // seven panes: crashes land well inside the run

fn stream(dict: &Dictionary, seed: u64) -> Vec<Document> {
    (0..N as u64)
        .map(|i| {
            let x = i.wrapping_mul(seed | 1);
            let json = if i.is_multiple_of(7) {
                format!(r#"{{"fresh{}":"x{}","grp":{}}}"#, x % 5, x % 4, x % 3)
            } else {
                format!(
                    r#"{{"user":"u{}","sev":"s{}","grp":{}}}"#,
                    x % 6,
                    x % 4,
                    x % 3
                )
            };
            Document::from_json(DocId(i), &json, dict).unwrap()
        })
        .collect()
}

fn chaos_cfg() -> StreamJoinConfig {
    StreamJoinConfig::default()
        .with_m(3)
        .with_window_spec(WindowSpec::sliding(PANE, PANES))
        .with_partition_creators(2)
        .with_assigners(2)
        .with_expansion(false)
        .with_batch_size(8)
        .with_retries(2) // arms supervised window-boundary snapshots
        .with_backoff_ms(1)
        .build()
        .unwrap()
}

/// One crash at the given (component, task, window, tuple) coordinate must
/// leave the pane-keyed join output identical to the fault-free run, and
/// the supervisor must actually have recovered something.
fn assert_crash_recovers(seed: u64, comp: &'static str, task: usize, window: u64, tuple: u64) {
    let cfg = chaos_cfg();
    let dict = Dictionary::new();
    let docs = stream(&dict, seed);
    let clean = run_topology(cfg.clone(), &dict, docs.clone()).unwrap();

    let plan = FaultPlan::new().crash(comp, task, window, tuple);
    let faulted = run_topology_chaos(cfg, &dict, docs, plan).unwrap();
    assert!(
        faulted.runtime.total_faults() > 0,
        "{comp}[{task}] crash at w={window},t={tuple} never fired"
    );
    assert_runs_equal(&clean, &faulted);
}

/// The joiner holds the frozen pane ring — the heart of the sliding
/// tentpole. Crash it mid-pane (tuple 5 of pane 3: two panes are frozen
/// and a third is open) and at a pane boundary (tuple 0 of pane 4: the
/// ring just rotated).
#[test]
fn joiner_crash_mid_pane_recovers_pane_ring() {
    assert_crash_recovers(11, "joiner", 1, 3, 5);
}

#[test]
fn joiner_crash_at_pane_boundary_recovers_pane_ring() {
    assert_crash_recovers(12, "joiner", 0, 4, 0);
}

/// The creator's cross-pane state is the incremental group index plus the
/// pane ring of expirable view ids.
#[test]
fn creator_crash_mid_pane_recovers_group_index() {
    assert_crash_recovers(13, "creator", 0, 3, 5);
}

/// The assigner's cross-pane state includes the retained pane tables that
/// make pane-spanning pairs route exactly.
#[test]
fn assigner_crash_mid_pane_recovers_retained_tables() {
    assert_crash_recovers(14, "assigner", 1, 3, 5);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any single supervised crash — any sliding component, pane, and
    /// tuple offset — recovers byte-identically.
    #[test]
    fn any_sliding_crash_recovers_exactly(
        seed in 0u64..1 << 32,
        comp_idx in 0usize..3,
        task in 0usize..2,
        window in 2u64..6,
        tuple in 0u64..10,
    ) {
        let comp = ["joiner", "creator", "assigner"][comp_idx];
        assert_crash_recovers(seed, comp, task, window, tuple);
    }
}
