//! Crash recovery under hot-group replication and load shedding.
//!
//! A joiner crash is the worst case for replication: the crashed task may
//! hold replica *cells* of a hot association group, so post-crash replay
//! must re-deliver the id-bucketed document shares exactly — any drift in
//! the replica routing would surface as duplicate or missing join pairs.
//! Separately, the shed counters must stay conserved across a crash:
//! replayed envelopes are re-offered to the shedder, and every offer ends
//! in exactly one of `shed_dropped` / `shed_passed`.

use proptest::prelude::*;
use ssj_bench::testutil::assert_runs_equal;
use ssj_bench::traffic::{sessionized_docs, SkewConfig};
use ssj_core::{run_topology, run_topology_chaos, StreamJoinConfig, WindowSpec};
use ssj_runtime::FaultPlan;

const WINDOW: usize = 100;
const N: usize = WINDOW * 4;

fn skew(seed: u64) -> SkewConfig {
    SkewConfig {
        seed,
        keys: 4,
        s: 1.2,
        attach: 0.9,
    }
}

/// Replication on, aggressive threshold: the hot session's group is
/// replicated from window 0's table onward (see
/// `replication_engages_under_skew`).
fn rep_cfg() -> StreamJoinConfig {
    StreamJoinConfig::default()
        .with_m(4)
        .with_window_spec(WindowSpec::tumbling(WINDOW))
        .with_partition_creators(2)
        .with_assigners(2)
        .with_expansion(false)
        .with_replicate_hot(true)
        .with_hot_factor(1.2)
        .with_retries(2) // arms supervised window-boundary snapshots
        .with_backoff_ms(1)
        .with_metrics(true)
        .build()
        .unwrap()
}

/// Crash one joiner at `(window, tuple)` mid-skewed-stream and assert the
/// recovered run is byte-identical to the fault-free run — with replica
/// routing demonstrably engaged in both.
fn assert_hot_crash_recovers(seed: u64, task: usize, window: u64, tuple: u64) {
    let cfg = rep_cfg();
    let (dict, docs) = sessionized_docs(N, skew(seed));
    let clean = run_topology(cfg.clone(), &dict, docs.clone()).unwrap();

    let plan = FaultPlan::new().crash("joiner", task, window, tuple);
    let faulted = run_topology_chaos(cfg, &dict, docs, plan).unwrap();
    assert!(
        faulted.runtime.total_faults() > 0,
        "joiner[{task}] crash at w={window},t={tuple} never fired"
    );
    for report in [&clean, &faulted] {
        let hot_routed: u64 = report
            .runtime
            .tasks
            .iter()
            .filter(|t| t.component == "assigner")
            .map(|t| t.counter("hot_routed"))
            .sum();
        assert!(hot_routed > 0, "replica routing must engage in both runs");
    }
    assert_runs_equal(&clean, &faulted);
}

/// With m=4 the hot group replicates into r=2 buckets over 3 cells, so at
/// least three of the four joiners hold a replica cell: crashing two
/// distinct tasks guarantees at least one crashed cell holder.
#[test]
fn joiner_crash_with_replicated_hot_group_recovers() {
    assert_hot_crash_recovers(42, 0, 2, 7);
}

#[test]
fn joiner_crash_at_window_boundary_recovers_replicas() {
    assert_hot_crash_recovers(43, 2, 3, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any single joiner crash under replication recovers byte-identically.
    #[test]
    fn any_joiner_crash_under_replication_recovers(
        seed in 0u64..1 << 32,
        task in 0usize..4,
        window in 1u64..4,
        tuple in 0u64..12,
    ) {
        assert_hot_crash_recovers(seed, task, window, tuple);
    }
}

/// Shed counters stay conserved when a crash forces replay: replayed
/// envelopes are re-offered, and each offer lands in exactly one of
/// dropped/passed. Shedding never touches punctuation or table state, so
/// the run still terminates with every window reported.
#[test]
fn shed_counters_conserved_across_joiner_crash() {
    let cfg = rep_cfg().with_shed_budget(64).build().unwrap();
    let (dict, docs) = sessionized_docs(N, skew(7));
    let plan = FaultPlan::new().crash("joiner", 1, 2, 5);
    let report = run_topology_chaos(cfg, &dict, docs, plan).unwrap();
    assert!(report.runtime.total_faults() > 0, "crash never fired");

    let (mut offered, mut dropped, mut passed) = (0u64, 0u64, 0u64);
    for t in report
        .runtime
        .tasks
        .iter()
        .filter(|t| t.component == "joiner")
    {
        offered += t.counter("shed_offered");
        dropped += t.counter("shed_dropped");
        passed += t.counter("shed_passed");
    }
    assert!(offered > 0, "joiners saw no data at all");
    assert_eq!(
        offered,
        dropped + passed,
        "every offered message must be dropped or passed, even across replay"
    );
    assert_eq!(
        report.joins_per_window.len(),
        N / WINDOW,
        "shedding must never swallow punctuation"
    );
}
