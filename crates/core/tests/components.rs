//! Component-level behaviour of the Fig. 2 topology, observed through the
//! runtime's per-component counters.

use ssj_core::{run_topology, StreamJoinConfig};
use ssj_json::{Dictionary, DocId, Document};

/// A perfectly stable stream: the same distribution in every window.
fn stable_stream(dict: &Dictionary, windows: usize, per_window: usize) -> Vec<Document> {
    (0..(windows * per_window) as u64)
        .map(|i| {
            Document::from_json(
                DocId(i),
                &format!(
                    r#"{{"user":"u{}","sev":"s{}","grp":{}}}"#,
                    i % 5,
                    i % 3,
                    i % 4
                ),
                dict,
            )
            .unwrap()
        })
        .collect()
}

/// A gradually drifting stream: the first windows are stable (establishing
/// a good baseline), later windows mix in ever more fresh attribute-value
/// pairs — the §VI-A degradation pattern the θ-threshold must catch.
fn drifting_stream(dict: &Dictionary, windows: usize, per_window: usize) -> Vec<Document> {
    let mut out = Vec::new();
    for w in 0..windows as u64 {
        // Windows 0-1: no drift. From window 2 on: half the documents are
        // entirely novel.
        let novel_share = if w < 2 { 0 } else { per_window / 2 };
        for i in 0..per_window as u64 {
            let id = w * per_window as u64 + i;
            let json = if (i as usize) < novel_share {
                format!(r#"{{"w{w}a":"v{}","w{w}b":{}}}"#, id, i % 3)
            } else {
                format!(
                    r#"{{"user":"u{}","sev":"s{}","grp":{}}}"#,
                    i % 5,
                    i % 3,
                    i % 4
                )
            };
            out.push(Document::from_json(DocId(id), &json, dict).unwrap());
        }
    }
    out
}

fn config(m: usize, window: usize) -> StreamJoinConfig {
    StreamJoinConfig::default()
        .with_m(m)
        .with_window_spec(ssj_core::WindowSpec::tumbling(window))
        .with_expansion(false)
        .with_partition_creators(2)
        .with_assigners(2)
        .build()
        .unwrap()
}

#[test]
fn creators_compute_only_when_needed_on_stable_streams() {
    let dict = Dictionary::new();
    let docs = stable_stream(&dict, 5, 100);
    let report = run_topology(config(3, 100), &dict, docs).unwrap();
    // Merger traffic = LocalGroups + UpdateRequests + Repartition signals.
    // On a stable stream nothing degrades, so only the bootstrap window's
    // LocalGroups (one per creator) and at most a few δ-updates arrive.
    let merger_in = report.runtime.received("merger");
    assert!(
        merger_in <= 4,
        "merger received {merger_in} messages on a stable stream"
    );
}

#[test]
fn drift_makes_assigners_signal_and_creators_recompute() {
    let dict = Dictionary::new();
    let docs = drifting_stream(&dict, 5, 100);
    let mut cfg = config(3, 100);
    cfg.theta = 0.1;
    let report = run_topology(cfg, &dict, docs).unwrap();
    // Drift forces repartition signals; creators then send fresh groups in
    // later windows, so the merger hears far more than the bootstrap pair.
    let merger_in = report.runtime.received("merger");
    assert!(
        merger_in > 4,
        "merger received only {merger_in} messages despite heavy drift"
    );
    // And the merger must have broadcast more than one table: each assigner
    // task receives every table (All grouping).
    let assigner_in = report.runtime.received("assigner");
    let docs_received = 500u64; // shuffle share over both tasks sums to all
    assert!(
        assigner_in > docs_received + 2,
        "assigners saw {assigner_in} messages; expected multiple tables"
    );
}

#[test]
fn bootstrap_window_is_broadcast_to_all_joiners() {
    let dict = Dictionary::new();
    let docs = stable_stream(&dict, 1, 80);
    let m = 4;
    let report = run_topology(config(m, 80), &dict, docs).unwrap();
    // No table exists during window 0, so every document reaches every
    // joiner: per-window joiner doc counts must all equal the window size.
    let loads = &report.docs_per_joiner[0];
    assert_eq!(loads, &vec![80; m]);
}

#[test]
fn steady_state_routes_less_than_broadcast() {
    let dict = Dictionary::new();
    let docs = stable_stream(&dict, 4, 100);
    let m = 4;
    let report = run_topology(config(m, 100), &dict, docs).unwrap();
    // After the bootstrap window the table routes documents; total joiner
    // load per window must drop below the full broadcast volume.
    for (w, loads) in report.docs_per_joiner.iter().enumerate().skip(1) {
        let total: usize = loads.iter().sum();
        assert!(
            total < m * 100,
            "window {w} still broadcast everything: {loads:?}"
        );
    }
}

#[test]
fn single_creator_single_assigner_still_exact() {
    let dict = Dictionary::new();
    let docs = stable_stream(&dict, 3, 60);
    let mut cfg = config(2, 60);
    cfg.partition_creators = 1;
    cfg.assigners = 1;
    let report = run_topology(cfg, &dict, docs.clone()).unwrap();
    for (w, found) in report.joins_per_window.iter().enumerate() {
        let truth = ssj_core::ground_truth_pairs(&docs[w * 60..(w + 1) * 60]);
        assert_eq!(found, &truth, "window {w}");
    }
}
