//! Snapshot / restore of the pipeline's adaptive state: after a simulated
//! failure, the restored pipeline must route and join exactly like the
//! uninterrupted one.

use ssj_bench::testutil::assert_windows_equal;
use ssj_core::{ground_truth_pairs, Pipeline, StreamJoinConfig};
use ssj_data::{ServerLogConfig, ServerLogGen};
use ssj_json::{Dictionary, Document};

fn stream(dict: &Dictionary, n: usize) -> Vec<Document> {
    ServerLogGen::new(
        ServerLogConfig {
            novelty: 0.05,
            ..Default::default()
        },
        dict.clone(),
    )
    .take_docs(n)
}

#[test]
fn restored_pipeline_continues_exactly() {
    let cfg = StreamJoinConfig::default()
        .with_m(4)
        .with_window_spec(ssj_core::WindowSpec::tumbling(150))
        .build()
        .unwrap();
    let dict = Dictionary::new();
    let docs = stream(&dict, 600);

    // Reference: uninterrupted run.
    let mut reference = Pipeline::new(cfg.clone(), dict.clone());
    let mut ref_reports = Vec::new();
    for w in 0..4 {
        ref_reports.push(reference.process_window(&docs[w * 150..(w + 1) * 150]));
    }

    // Crash after window 1, snapshot, restore, replay windows 2-3. The
    // restored pipeline re-interns the remaining documents through its own
    // dictionary (as a recovering process would re-parse its input).
    let mut first_half = Pipeline::new(cfg.clone(), dict.clone());
    first_half.process_window(&docs[0..150]);
    first_half.process_window(&docs[150..300]);
    let snapshot = first_half.snapshot();
    let text = snapshot.to_json();

    let reread = ssj_json::parse(&text).unwrap();
    let mut restored = Pipeline::restore(cfg.clone(), &reread).unwrap();
    let rdict = restored.dictionary().clone();
    let rest: Vec<Document> = docs[300..]
        .iter()
        .map(|d| Document::from_json(d.id(), &d.to_json(&dict), &rdict).unwrap())
        .collect();

    let mut restored_reports = Vec::new();
    for (i, w) in [2usize, 3].into_iter().enumerate() {
        let window = &rest[i * 150..(i + 1) * 150];
        let report = restored.process_window(window);
        assert_eq!(report.window, w, "window counter restored");
        // Joins must still be exact.
        let truth = ground_truth_pairs(window);
        assert_eq!(report.unique_join_pairs, truth.len(), "window {w}");
        // Adaptive trajectories may diverge after a restore (δ-counts reset,
        // which shifts update and repartition timing), so per-window quality
        // is not asserted equal to the reference — only sane: documents are
        // never dropped (replication ≥ 1) and never all broadcast.
        let q = report.quality;
        assert!(q.replication >= 1.0, "window {w}: {q:?}");
        assert!(
            q.replication < cfg.m as f64,
            "window {w} degenerated to full broadcast: {q:?}"
        );
        restored_reports.push(report);
    }

    // Both the uninterrupted reference and the restored run found the same
    // number of unique join pairs in the replayed windows (both are exact).
    let counts = |rs: &[ssj_core::WindowReport]| -> Vec<usize> {
        rs.iter().map(|r| r.unique_join_pairs).collect()
    };
    assert_windows_equal(
        "unique join pairs",
        &counts(&ref_reports[2..]),
        &counts(&restored_reports),
    );
}

#[test]
fn restore_rejects_mismatched_m() {
    let cfg = StreamJoinConfig::default()
        .with_m(4)
        .with_window_spec(ssj_core::WindowSpec::tumbling(100))
        .build()
        .unwrap();
    let dict = Dictionary::new();
    let docs = stream(&dict, 100);
    let mut p = Pipeline::new(cfg.clone(), dict);
    p.process_window(&docs);
    let snap = p.snapshot();
    let err = match Pipeline::restore(cfg.with_m(8).build().unwrap(), &snap) {
        Err(e) => e,
        Ok(_) => panic!("mismatched m must be rejected"),
    };
    assert!(err.contains("m="), "{err}");
}

#[test]
fn restore_rejects_garbage() {
    let cfg = StreamJoinConfig::default()
        .with_m(2)
        .with_window_spec(ssj_core::WindowSpec::tumbling(10))
        .build()
        .unwrap();
    for bad in ["{}", r#"{"dictionary":{"attrs":[],"avps":[]}}"#] {
        let v = ssj_json::parse(bad).unwrap();
        assert!(Pipeline::restore(cfg.clone(), &v).is_err(), "{bad}");
    }
}

#[test]
fn snapshot_preserves_expansion() {
    // NoBench-style data forces an expansion; the snapshot must carry it.
    let dict = Dictionary::new();
    let docs = ssj_data::NoBenchGen::new(Default::default(), dict.clone()).take_docs(200);
    let cfg = StreamJoinConfig::default()
        .with_m(6)
        .with_window_spec(ssj_core::WindowSpec::tumbling(200))
        .build()
        .unwrap();
    let mut p = Pipeline::new(cfg.clone(), dict);
    p.process_window(&docs);
    assert!(p.expansion().is_some(), "expansion should engage on nbData");
    let snap = p.snapshot();
    let restored = Pipeline::restore(cfg, &snap).unwrap();
    let exp = restored.expansion().expect("expansion restored");
    assert_eq!(exp.chain.len(), p.expansion().unwrap().chain.len());
    assert_eq!(exp.synth_attr, p.expansion().unwrap().synth_attr);
}
