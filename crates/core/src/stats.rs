//! Report rendering behind one surface: [`ReportSink`].
//!
//! A sink consumes [`WindowReport`]s as they are produced (streaming, so a
//! long run prints rows live) and finishes with whole-run aggregates. Three
//! implementations ship: [`CsvSink`] (machine-readable per-window rows),
//! [`JsonlSink`] (one JSON object per window plus a final summary record),
//! and [`HumanSummarySink`] (aligned table with a one-line footer).

use crate::pipeline::{PipelineReport, WindowReport};
use std::io::{self, Write};

/// Column order shared by the CSV header and rows.
const CSV_COLUMNS: &str = "window,replication,gini,max_processing_load,broadcast_fraction,repartitioned,updates,join_pairs,unique_join_pairs";

/// A consumer of pipeline reports. Call [`ReportSink::window`] per window as
/// results appear, then [`ReportSink::finish`] once with the complete
/// report; or hand a finished report to [`ReportSink::emit`].
pub trait ReportSink {
    /// Consume one window's report (called in window order).
    fn window(&mut self, w: &WindowReport) -> io::Result<()>;

    /// Consume the whole-run aggregates after the last window.
    fn finish(&mut self, report: &PipelineReport) -> io::Result<()>;

    /// Drive a complete report through the sink.
    fn emit(&mut self, report: &PipelineReport) -> io::Result<()> {
        for w in &report.windows {
            self.window(w)?;
        }
        self.finish(report)
    }
}

/// Per-window CSV rows under a fixed header; no footer.
pub struct CsvSink<W> {
    out: W,
    wrote_header: bool,
}

impl<W: Write> CsvSink<W> {
    /// A CSV sink writing to `out`.
    pub fn new(out: W) -> Self {
        CsvSink {
            out,
            wrote_header: false,
        }
    }
}

impl<W: Write> ReportSink for CsvSink<W> {
    fn window(&mut self, w: &WindowReport) -> io::Result<()> {
        if !self.wrote_header {
            self.wrote_header = true;
            writeln!(self.out, "{CSV_COLUMNS}")?;
        }
        writeln!(
            self.out,
            "{},{:.6},{:.6},{:.6},{:.6},{},{},{},{}",
            w.window,
            w.quality.replication,
            w.quality.load_balance,
            w.quality.max_processing_load,
            w.quality.broadcast_fraction,
            w.repartitioned as u8,
            w.updates,
            w.join_pairs,
            w.unique_join_pairs
        )
    }

    fn finish(&mut self, _report: &PipelineReport) -> io::Result<()> {
        self.out.flush()
    }
}

/// One JSON object per window, then a final `"summary"` record with the
/// whole-run aggregates — the pipeline-side companion of the runtime's
/// metrics JSON lines.
pub struct JsonlSink<W> {
    out: W,
}

impl<W: Write> JsonlSink<W> {
    /// A JSON-lines sink writing to `out`.
    pub fn new(out: W) -> Self {
        JsonlSink { out }
    }
}

impl<W: Write> ReportSink for JsonlSink<W> {
    fn window(&mut self, w: &WindowReport) -> io::Result<()> {
        writeln!(
            self.out,
            "{{\"window\":{},\"replication\":{:.6},\"gini\":{:.6},\"max_processing_load\":{:.6},\"broadcast_fraction\":{:.6},\"repartitioned\":{},\"updates\":{},\"join_pairs\":{},\"unique_join_pairs\":{}}}",
            w.window,
            w.quality.replication,
            w.quality.load_balance,
            w.quality.max_processing_load,
            w.quality.broadcast_fraction,
            w.repartitioned,
            w.updates,
            w.join_pairs,
            w.unique_join_pairs
        )
    }

    fn finish(&mut self, report: &PipelineReport) -> io::Result<()> {
        writeln!(
            self.out,
            "{{\"summary\":{{\"windows\":{},\"mean_replication\":{:.6},\"mean_gini\":{:.6},\"mean_max_load\":{:.6},\"repartition_fraction\":{:.6},\"unique_join_pairs\":{}}}}}",
            report.windows.len(),
            report.mean_replication(),
            report.mean_load_balance(),
            report.mean_max_load(),
            report.repartition_fraction(),
            report.total_unique_joins()
        )?;
        self.out.flush()
    }
}

/// An aligned per-window table with a one-line summary footer.
pub struct HumanSummarySink<W> {
    out: W,
    wrote_header: bool,
}

impl<W: Write> HumanSummarySink<W> {
    /// A human-readable sink writing to `out`.
    pub fn new(out: W) -> Self {
        HumanSummarySink {
            out,
            wrote_header: false,
        }
    }
}

impl<W: Write> ReportSink for HumanSummarySink<W> {
    fn window(&mut self, w: &WindowReport) -> io::Result<()> {
        if !self.wrote_header {
            self.wrote_header = true;
            writeln!(
                self.out,
                "{:<7} {:>12} {:>8} {:>10} {:>8} {:>8} {:>10}",
                "window", "replication", "gini", "max load", "repart", "updates", "join pairs"
            )?;
        }
        writeln!(
            self.out,
            "{:<7} {:>12.3} {:>8.3} {:>10.3} {:>8} {:>8} {:>10}",
            w.window,
            w.quality.replication,
            w.quality.load_balance,
            w.quality.max_processing_load,
            if w.repartitioned { "yes" } else { "-" },
            w.updates,
            w.unique_join_pairs
        )
    }

    fn finish(&mut self, report: &PipelineReport) -> io::Result<()> {
        writeln!(
            self.out,
            "{} windows | replication {:.3} | gini {:.3} | max load {:.3} | repartitions {:.1}% | joins {}",
            report.windows.len(),
            report.mean_replication(),
            report.mean_load_balance(),
            report.mean_max_load(),
            report.repartition_fraction() * 100.0,
            report.total_unique_joins()
        )?;
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StreamJoinConfig;
    use crate::pipeline::Pipeline;
    use ssj_json::{Dictionary, DocId, Document};

    fn small_report() -> PipelineReport {
        let dict = Dictionary::new();
        let docs: Vec<Document> = (0..20u64)
            .map(|i| {
                Document::from_json(
                    DocId(i),
                    &format!(r#"{{"k":{},"g":{}}}"#, i % 4, i % 2),
                    &dict,
                )
                .unwrap()
            })
            .collect();
        let cfg = StreamJoinConfig::default()
            .with_m(2)
            .with_window_spec(crate::WindowSpec::tumbling(10))
            .build()
            .unwrap();
        Pipeline::new(cfg, dict).run(docs)
    }

    fn render(
        sink_for: impl FnOnce(&mut Vec<u8>) -> Box<dyn ReportSink + '_>,
        r: &PipelineReport,
    ) -> String {
        let mut buf = Vec::new();
        sink_for(&mut buf).emit(r).unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn csv_has_header_and_one_row_per_window() {
        let report = small_report();
        let csv = render(|b| Box::new(CsvSink::new(b)), &report);
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines[0], CSV_COLUMNS);
        assert_eq!(lines.len(), report.windows.len() + 1);
        // Every row has the same number of fields as the header.
        let fields = CSV_COLUMNS.split(',').count();
        for row in &lines[1..] {
            assert_eq!(row.split(',').count(), fields, "{row}");
        }
    }

    #[test]
    fn csv_rows_parse_back_numerically() {
        let report = small_report();
        let csv = render(|b| Box::new(CsvSink::new(b)), &report);
        for row in csv.trim_end().lines().skip(1) {
            let cols: Vec<&str> = row.split(',').collect();
            let _: u64 = cols[0].parse().unwrap();
            let repl: f64 = cols[1].parse().unwrap();
            assert!(repl >= 1.0);
            let repart: u8 = cols[5].parse().unwrap();
            assert!(repart <= 1);
        }
    }

    #[test]
    fn jsonl_one_record_per_window_plus_summary() {
        let report = small_report();
        let text = render(|b| Box::new(JsonlSink::new(b)), &report);
        let lines: Vec<&str> = text.trim_end().lines().collect();
        assert_eq!(lines.len(), report.windows.len() + 1);
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "{l}");
        }
        assert!(lines[0].contains("\"window\":0"));
        assert!(lines.last().unwrap().contains("\"summary\""));
    }

    #[test]
    fn human_summary_mentions_windows_and_joins() {
        let report = small_report();
        let text = render(|b| Box::new(HumanSummarySink::new(b)), &report);
        assert!(text.contains("window"), "{text}");
        assert!(text.contains("2 windows"), "{text}");
        assert!(text.contains("joins"), "{text}");
    }

    #[test]
    fn streaming_and_batch_emission_agree() {
        let report = small_report();
        let batch = render(|b| Box::new(CsvSink::new(b)), &report);
        let mut buf = Vec::new();
        {
            let mut sink = CsvSink::new(&mut buf);
            for w in &report.windows {
                sink.window(w).unwrap();
            }
            sink.finish(&report).unwrap();
        }
        assert_eq!(batch, String::from_utf8(buf).unwrap());
    }
}
