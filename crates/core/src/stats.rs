//! Report rendering: per-window time series as CSV or an aligned text table.

use crate::pipeline::{PipelineReport, WindowReport};

/// CSV header matching [`window_csv_row`].
pub const CSV_HEADER: &str =
    "window,replication,gini,max_processing_load,broadcast_fraction,repartitioned,updates,join_pairs,unique_join_pairs";

/// One CSV row for a window report.
pub fn window_csv_row(w: &WindowReport) -> String {
    format!(
        "{},{:.6},{:.6},{:.6},{:.6},{},{},{},{}",
        w.window,
        w.quality.replication,
        w.quality.load_balance,
        w.quality.max_processing_load,
        w.quality.broadcast_fraction,
        w.repartitioned as u8,
        w.updates,
        w.join_pairs,
        w.unique_join_pairs
    )
}

/// Render a whole run as CSV (header + one row per window).
pub fn report_to_csv(report: &PipelineReport) -> String {
    let mut out = String::with_capacity(64 * (report.windows.len() + 1));
    out.push_str(CSV_HEADER);
    out.push('\n');
    for w in &report.windows {
        out.push_str(&window_csv_row(w));
        out.push('\n');
    }
    out
}

/// Summarize a run in one line (for logs and CLI footers).
pub fn summary_line(report: &PipelineReport) -> String {
    format!(
        "{} windows | replication {:.3} | gini {:.3} | max load {:.3} | repartitions {:.1}% | joins {}",
        report.windows.len(),
        report.mean_replication(),
        report.mean_load_balance(),
        report.mean_max_load(),
        report.repartition_fraction() * 100.0,
        report.total_unique_joins()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StreamJoinConfig;
    use crate::pipeline::Pipeline;
    use ssj_json::{Dictionary, DocId, Document};

    fn small_report() -> PipelineReport {
        let dict = Dictionary::new();
        let docs: Vec<Document> = (0..20u64)
            .map(|i| {
                Document::from_json(
                    DocId(i),
                    &format!(r#"{{"k":{},"g":{}}}"#, i % 4, i % 2),
                    &dict,
                )
                .unwrap()
            })
            .collect();
        let cfg = StreamJoinConfig::default().with_m(2).with_window(10);
        Pipeline::new(cfg, dict).run(docs)
    }

    #[test]
    fn csv_has_header_and_one_row_per_window() {
        let report = small_report();
        let csv = report_to_csv(&report);
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines[0], CSV_HEADER);
        assert_eq!(lines.len(), report.windows.len() + 1);
        // Every row has the same number of fields as the header.
        let fields = CSV_HEADER.split(',').count();
        for row in &lines[1..] {
            assert_eq!(row.split(',').count(), fields, "{row}");
        }
    }

    #[test]
    fn csv_rows_parse_back_numerically() {
        let report = small_report();
        let csv = report_to_csv(&report);
        for row in csv.trim_end().lines().skip(1) {
            let cols: Vec<&str> = row.split(',').collect();
            let _: u64 = cols[0].parse().unwrap();
            let repl: f64 = cols[1].parse().unwrap();
            assert!(repl >= 1.0);
            let repart: u8 = cols[5].parse().unwrap();
            assert!(repart <= 1);
        }
    }

    #[test]
    fn summary_line_mentions_windows_and_joins() {
        let report = small_report();
        let line = summary_line(&report);
        assert!(line.contains("2 windows"), "{line}");
        assert!(line.contains("joins"), "{line}");
    }
}
