//! The deterministic window-by-window pipeline driver.
//!
//! Runs the *same component logic* as the threaded Fig. 2 topology, but
//! synchronously, so experiment results are bit-reproducible. The cadence
//! per tumbling window `k`:
//!
//! 1. **Partition creation** (window 0, and whenever a repartition is
//!    pending): detect attribute expansion if enabled, split the window
//!    across the PartitionCreators, compute local association groups, and
//!    consolidate them at the Merger (§IV-A). The SC and DS competitors are
//!    centralized algorithms and create their partitions from the full
//!    window directly.
//! 2. **Assignment**: route every document of the window with the current
//!    table. Documents matching no partition are broadcast (§VI-A);
//!    table-unknown pairs are counted and, at the δ-th sighting, added to
//!    the least-loaded partition (the Merger's update path).
//! 3. **Quality**: compute replication / Gini / max-processing-load; compare
//!    against the baseline measured right after the last creation and set
//!    the repartition flag when either degraded by more than θ.
//! 4. **Join**: each machine joins its window batch locally (§V); unique
//!    result pairs are counted globally.

use crate::config::StreamJoinConfig;
use ssj_json::{Dictionary, Document, FxHashSet};
use ssj_partition::{
    association_groups_parallel, batch_views, merge_and_assign, Expansion, PartitionTable,
    PartitionerKind, RepartitionPolicy, Route, RoutingStats, UnseenTracker, View, WindowQuality,
};

/// Per-window outcome.
#[derive(Debug, Clone)]
pub struct WindowReport {
    /// Window index (0-based).
    pub window: usize,
    /// Routing quality of this window.
    pub quality: WindowQuality,
    /// Whether partitions were recomputed *at the start of* this window
    /// (never true for window 0 — initial creation is not a repartition).
    pub repartitioned: bool,
    /// δ-triggered single-pair table updates performed during the window.
    pub updates: usize,
    /// Join pairs summed over machines (duplicates across machines count).
    pub join_pairs: usize,
    /// Globally unique join pairs.
    pub unique_join_pairs: usize,
}

/// Whole-run outcome.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// One report per window, in order.
    pub windows: Vec<WindowReport>,
}

impl PipelineReport {
    /// Mean replication over all windows.
    pub fn mean_replication(&self) -> f64 {
        mean(self.windows.iter().map(|w| w.quality.replication))
    }

    /// Mean Gini load balance over all windows.
    pub fn mean_load_balance(&self) -> f64 {
        mean(self.windows.iter().map(|w| w.quality.load_balance))
    }

    /// Mean maximal processing load over all windows.
    pub fn mean_max_load(&self) -> f64 {
        mean(self.windows.iter().map(|w| w.quality.max_processing_load))
    }

    /// Fraction of windows (after the first) that began with a repartition —
    /// Fig. 9's "Repartitions (%)" divided by 100.
    pub fn repartition_fraction(&self) -> f64 {
        if self.windows.len() <= 1 {
            return 0.0;
        }
        let n = self.windows.len() - 1;
        let r = self.windows.iter().filter(|w| w.repartitioned).count();
        r as f64 / n as f64
    }

    /// Total unique join pairs over the run.
    pub fn total_unique_joins(&self) -> usize {
        self.windows.iter().map(|w| w.unique_join_pairs).sum()
    }
}

fn mean(it: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for x in it {
        sum += x;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// The synchronous pipeline state machine.
pub struct Pipeline {
    config: StreamJoinConfig,
    dict: Dictionary,
    table: PartitionTable,
    expansion: Option<Expansion>,
    unseen: UnseenTracker,
    policy: RepartitionPolicy,
    baseline: Option<WindowQuality>,
    repartition_pending: bool,
    window_idx: usize,
    /// Skip the (expensive) local joins — the partitioning figures only
    /// need routing statistics.
    pub compute_joins: bool,
}

impl Pipeline {
    /// A fresh pipeline; `dict` is shared with the data source.
    pub fn new(config: StreamJoinConfig, dict: Dictionary) -> Self {
        config.validate().expect("invalid configuration");
        Pipeline {
            table: PartitionTable::empty(config.m),
            expansion: None,
            unseen: UnseenTracker::new(config.delta),
            policy: RepartitionPolicy::new(config.theta),
            baseline: None,
            repartition_pending: false,
            window_idx: 0,
            compute_joins: true,
            config,
            dict,
        }
    }

    /// The currently deployed partition table.
    pub fn table(&self) -> &PartitionTable {
        &self.table
    }

    /// The currently active attribute expansion, if any.
    pub fn expansion(&self) -> Option<&Expansion> {
        self.expansion.as_ref()
    }

    /// Process one tumbling window of documents.
    pub fn process_window(&mut self, docs: &[Document]) -> WindowReport {
        let m = self.config.m;
        let creating = self.window_idx == 0 || self.repartition_pending;
        let repartitioned = creating && self.window_idx > 0;

        if creating {
            self.create_partitions(docs);
        }

        // Assignment with δ-threshold updates.
        let views = batch_views(docs, self.expansion.as_ref(), &self.dict);
        let mut per_machine = vec![0usize; m];
        let mut total_sends = 0usize;
        let mut broadcasts = 0usize;
        let mut updates = 0usize;
        let mut targets_per_doc: Vec<Vec<u32>> = Vec::with_capacity(docs.len());
        for view in &views {
            let route = match view {
                Some(v) => {
                    // Track pairs the table does not know; the δ-th sighting
                    // adds the pair to the least-loaded partition (§VI-A).
                    let mut unknown = false;
                    for avp in v {
                        if self.table.partitions_of(*avp).is_empty() {
                            if self.unseen.observe(*avp) {
                                let p = self.table.least_loaded();
                                self.table.add_avp(p, *avp);
                                self.table.bump_load(p, 1);
                                self.unseen.clear(*avp);
                                updates += 1;
                            } else {
                                unknown = true;
                            }
                        }
                    }
                    if unknown {
                        // The paper's exactness guarantee: a document whose
                        // pairs are not all covered could join a partner
                        // through an uncovered pair — emit it to all Joiners.
                        Route::Broadcast
                    } else {
                        self.table.route(v)
                    }
                }
                // Expansion could not build the synthetic value (§VI-B).
                None => Route::Broadcast,
            };
            if route.is_broadcast() {
                broadcasts += 1;
            }
            let targets = route.targets(m);
            for &t in &targets {
                per_machine[t as usize] += 1;
                total_sends += 1;
            }
            targets_per_doc.push(targets);
        }
        let stats = RoutingStats {
            per_machine,
            total_sends,
            broadcasts,
            docs: docs.len(),
        };
        let quality = WindowQuality::from_stats(&stats);

        match &self.baseline {
            None => self.baseline = Some(quality),
            Some(base) => {
                if self.policy.should_repartition(base, &quality) {
                    self.repartition_pending = true;
                }
            }
        }

        // Local joins.
        let (join_pairs, unique_join_pairs) = if self.compute_joins {
            let mut machine_docs: Vec<Vec<Document>> = vec![Vec::new(); m];
            for (doc, targets) in docs.iter().zip(&targets_per_doc) {
                for &t in targets {
                    machine_docs[t as usize].push(doc.clone());
                }
            }
            let mut total = 0usize;
            let mut unique: FxHashSet<(u64, u64)> = FxHashSet::default();
            for batch in &machine_docs {
                let pairs = ssj_join::join_batch(self.config.join_algo, batch);
                total += pairs.len();
                unique.extend(pairs.iter().map(|(a, b)| (a.0, b.0)));
            }
            (total, unique.len())
        } else {
            (0, 0)
        };

        let report = WindowReport {
            window: self.window_idx,
            quality,
            repartitioned,
            updates,
            join_pairs,
            unique_join_pairs,
        };
        self.window_idx += 1;
        report
    }

    fn create_partitions(&mut self, docs: &[Document]) {
        self.expansion = if self.config.expansion {
            Expansion::detect(docs, &self.dict, self.config.m)
        } else {
            None
        };
        let views = batch_views(docs, self.expansion.as_ref(), &self.dict);
        let usable: Vec<View> = views.into_iter().flatten().collect();

        self.table = match self.config.partitioner {
            PartitionerKind::Ag => {
                // Distributed creation: chunk across PartitionCreators, then
                // consolidate at the Merger (§IV-A).
                let n = self.config.partition_creators.max(1);
                let mut chunks: Vec<Vec<View>> = vec![Vec::new(); n];
                for (i, v) in usable.into_iter().enumerate() {
                    chunks[i % n].push(v);
                }
                let locals: Vec<_> = chunks
                    .iter()
                    .map(|chunk| association_groups_parallel(chunk, self.config.build_workers))
                    .collect();
                merge_and_assign(locals, self.config.m)
            }
            kind => kind.create(&usable, self.config.m),
        };
        self.unseen.reset();
        self.baseline = None;
        self.repartition_pending = false;
    }

    /// Snapshot the pipeline's adaptive state — the deployed partition
    /// table, the active expansion, the baseline quality and the window
    /// counter — together with the dictionary, as one JSON value. Restoring
    /// with [`Pipeline::restore`] resumes routing without a bootstrap
    /// window. (The δ-tracker's partial counts are deliberately excluded:
    /// below-threshold pairs are rare by definition and re-counting them is
    /// the conservative choice after a failure.)
    pub fn snapshot(&self) -> ssj_json::Value {
        use ssj_json::Value;
        let mut out = Value::object();
        out.insert("dictionary", self.dict.export());
        out.insert("table", self.table.export());
        out.insert("window", Value::Int(self.window_idx as i64));
        if let Some(exp) = &self.expansion {
            let mut e = Value::object();
            e.insert(
                "chain",
                Value::Array(exp.chain.iter().map(|a| Value::Int(a.0 as i64)).collect()),
            );
            e.insert("synth_attr", Value::Int(exp.synth_attr.0 as i64));
            e.insert("pna", Value::Float(exp.pna));
            out.insert("expansion", e);
        }
        if let Some(b) = &self.baseline {
            let mut q = Value::object();
            q.insert("replication", Value::Float(b.replication));
            q.insert("load_balance", Value::Float(b.load_balance));
            q.insert("max_processing_load", Value::Float(b.max_processing_load));
            q.insert("broadcast_fraction", Value::Float(b.broadcast_fraction));
            out.insert("baseline", q);
        }
        out
    }

    /// Rebuild a pipeline from a [`snapshot`](Self::snapshot). The returned
    /// pipeline shares the restored dictionary (exposed via
    /// [`Pipeline::dictionary`]); feed it documents interned through that
    /// dictionary.
    pub fn restore(config: StreamJoinConfig, snapshot: &ssj_json::Value) -> Result<Self, String> {
        use ssj_json::Value;
        config.validate()?;
        let dict = Dictionary::import(
            snapshot
                .get("dictionary")
                .ok_or("snapshot missing 'dictionary'")?,
        )?;
        let table =
            PartitionTable::import(snapshot.get("table").ok_or("snapshot missing 'table'")?)?;
        if table.m() != config.m {
            return Err(format!(
                "snapshot has m={}, configuration wants m={}",
                table.m(),
                config.m
            ));
        }
        let window_idx = snapshot
            .get("window")
            .and_then(Value::as_int)
            .filter(|&w| w >= 0)
            .ok_or("snapshot missing 'window'")? as usize;
        let expansion = match snapshot.get("expansion") {
            None => None,
            Some(e) => {
                let chain = match e.get("chain") {
                    Some(Value::Array(items)) => items
                        .iter()
                        .map(|v| {
                            v.as_int()
                                .filter(|&x| x >= 0)
                                .map(|x| ssj_json::AttrId(x as u32))
                                .ok_or("invalid attr id in expansion chain")
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                    _ => return Err("expansion missing 'chain'".into()),
                };
                let synth_attr = e
                    .get("synth_attr")
                    .and_then(Value::as_int)
                    .filter(|&x| x >= 0)
                    .ok_or("expansion missing 'synth_attr'")?;
                let pna = match e.get("pna") {
                    Some(Value::Float(f)) => *f,
                    Some(Value::Int(i)) => *i as f64,
                    _ => 0.0,
                };
                Some(Expansion {
                    chain,
                    synth_attr: ssj_json::AttrId(synth_attr as u32),
                    pna,
                })
            }
        };
        let baseline = snapshot.get("baseline").map(|q| {
            let f = |k: &str| match q.get(k) {
                Some(Value::Float(f)) => *f,
                Some(Value::Int(i)) => *i as f64,
                _ => 0.0,
            };
            WindowQuality {
                replication: f("replication"),
                load_balance: f("load_balance"),
                max_processing_load: f("max_processing_load"),
                broadcast_fraction: f("broadcast_fraction"),
            }
        });
        Ok(Pipeline {
            table,
            expansion,
            unseen: UnseenTracker::new(config.delta),
            policy: RepartitionPolicy::new(config.theta),
            baseline,
            repartition_pending: false,
            window_idx,
            compute_joins: true,
            config,
            dict,
        })
    }

    /// The dictionary this pipeline interns through (needed to feed a
    /// restored pipeline documents with matching pair ids).
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// Drive an entire stream, chunking it into tumbling windows of
    /// `config.window_docs()` documents. Sliding specs are a runtime-only
    /// mode (`run_topology`): the batch pipeline is the deterministic
    /// tumbling reference and rejects them up front.
    pub fn run(mut self, stream: impl IntoIterator<Item = Document>) -> PipelineReport {
        assert!(
            !self.config.is_sliding(),
            "the batch pipeline is tumbling-only; run sliding windows on the topology"
        );
        let mut windows = Vec::new();
        let mut buf: Vec<Document> = Vec::with_capacity(self.config.window_docs());
        for doc in stream {
            buf.push(doc);
            if buf.len() == self.config.window_docs() {
                windows.push(self.process_window(&buf));
                buf.clear();
            }
        }
        if !buf.is_empty() {
            windows.push(self.process_window(&buf));
        }
        PipelineReport { windows }
    }
}

/// Ground-truth join pairs of one window (NLJ over all documents) — used by
/// tests to verify the partitioning preserves the exact join result.
pub fn ground_truth_pairs(docs: &[Document]) -> FxHashSet<(u64, u64)> {
    ssj_join::nlj::join_batch(docs)
        .into_iter()
        .map(|(a, b)| (a.0, b.0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_join::JoinAlgo;
    use ssj_json::DocId;

    fn doc(dict: &Dictionary, id: u64, json: &str) -> Document {
        Document::from_json(DocId(id), json, dict).unwrap()
    }

    /// A small synthetic log-like window.
    fn window(dict: &Dictionary, base: u64, n: usize) -> Vec<Document> {
        (0..n as u64)
            .map(|i| {
                let user = (base + i) % 5;
                let sev = ["W", "E", "C"][((base + i) % 3) as usize];
                doc(
                    dict,
                    base + i,
                    &format!(
                        r#"{{"User":"u{user}","Severity":"{sev}","MsgId":{}}}"#,
                        i % 7
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn exactness_every_joinable_pair_colocated() {
        let dict = Dictionary::new();
        let cfg = StreamJoinConfig::default()
            .with_m(4)
            .with_window_spec(crate::WindowSpec::tumbling(40))
            .with_join(JoinAlgo::FpTree)
            .build()
            .unwrap();
        let mut p = Pipeline::new(cfg, dict.clone());
        for w in 0..3 {
            let docs = window(&dict, w * 1000, 40);
            let report = p.process_window(&docs);
            let truth = ground_truth_pairs(&docs);
            // The distributed join found exactly the ground-truth pairs.
            assert_eq!(
                report.unique_join_pairs,
                truth.len(),
                "window {w}: join incomplete or inflated"
            );
        }
    }

    #[test]
    fn all_partitioners_preserve_exactness() {
        let dict = Dictionary::new();
        for kind in PartitionerKind::all() {
            let cfg = StreamJoinConfig::default()
                .with_m(3)
                .with_window_spec(crate::WindowSpec::tumbling(30))
                .with_partitioner(kind)
                .build()
                .unwrap();
            let mut p = Pipeline::new(cfg, dict.clone());
            let docs = window(&dict, 500, 30);
            let report = p.process_window(&docs);
            let truth = ground_truth_pairs(&docs);
            assert_eq!(
                report.unique_join_pairs,
                truth.len(),
                "{} loses join results",
                kind.name()
            );
        }
    }

    #[test]
    fn replication_bounded_by_m() {
        let dict = Dictionary::new();
        let cfg = StreamJoinConfig::default()
            .with_m(4)
            .with_window_spec(crate::WindowSpec::tumbling(50))
            .build()
            .unwrap();
        let mut p = Pipeline::new(cfg, dict.clone());
        let r = p.process_window(&window(&dict, 0, 50));
        assert!(r.quality.replication >= 1.0);
        assert!(r.quality.replication <= 4.0);
    }

    #[test]
    fn drifting_stream_triggers_repartition() {
        let dict = Dictionary::new();
        let cfg = StreamJoinConfig::default()
            .with_m(4)
            .with_window_spec(crate::WindowSpec::tumbling(30))
            .with_theta(0.1)
            .with_expansion(false)
            .build()
            .unwrap();
        let mut p = Pipeline::new(cfg, dict.clone());
        p.compute_joins = false;
        // Window 0 establishes partitions on users u0..u4.
        p.process_window(&window(&dict, 0, 30));
        // Later windows use entirely new attribute values → broadcasts →
        // replication explodes → repartition must fire.
        let mut saw_repartition = false;
        for w in 1..5 {
            let docs: Vec<Document> = (0..30u64)
                .map(|i| {
                    doc(
                        &dict,
                        w * 10_000 + i,
                        &format!(r#"{{"Fresh{w}":"v{i}","Other{w}":{i}}}"#),
                    )
                })
                .collect();
            let r = p.process_window(&docs);
            saw_repartition |= r.repartitioned;
        }
        assert!(saw_repartition, "drift never triggered a repartition");
    }

    #[test]
    fn stable_stream_does_not_repartition() {
        let dict = Dictionary::new();
        let cfg = StreamJoinConfig::default()
            .with_m(4)
            .with_window_spec(crate::WindowSpec::tumbling(40))
            .with_theta(0.2)
            .build()
            .unwrap();
        let mut p = Pipeline::new(cfg, dict.clone());
        p.compute_joins = false;
        let mut reparts = 0;
        for w in 0..5 {
            // Identical distribution each window.
            let r = p.process_window(&window(&dict, w * 40, 40));
            reparts += r.repartitioned as usize;
        }
        assert_eq!(reparts, 0, "stable stream must not repartition");
    }

    #[test]
    fn delta_updates_fire_for_recurring_unseen_pairs() {
        let dict = Dictionary::new();
        let cfg = StreamJoinConfig::default()
            .with_m(2)
            .with_window_spec(crate::WindowSpec::tumbling(20))
            .with_theta(5.0) // effectively disable repartitioning
            .with_expansion(false)
            .build()
            .unwrap();
        let mut p = Pipeline::new(cfg, dict.clone());
        p.compute_joins = false;
        p.process_window(&window(&dict, 0, 20));
        // A new pair recurring ≥ δ (=3) times must be added to the table.
        let docs: Vec<Document> = (0..20u64)
            .map(|i| doc(&dict, 1000 + i, r#"{"Brand":"new"}"#))
            .collect();
        let r = p.process_window(&docs);
        assert!(r.updates >= 1, "δ update never fired");
        let pair = dict
            .lookup("Brand", &ssj_json::Scalar::Str("new".into()))
            .unwrap();
        assert!(!p.table().partitions_of(pair.avp).is_empty());
    }

    #[test]
    fn run_chunks_stream_into_windows() {
        let dict = Dictionary::new();
        let cfg = StreamJoinConfig::default()
            .with_m(2)
            .with_window_spec(crate::WindowSpec::tumbling(10))
            .build()
            .unwrap();
        let docs = window(&dict, 0, 25);
        let report = Pipeline::new(cfg, dict).run(docs);
        assert_eq!(report.windows.len(), 3); // 10 + 10 + 5
        assert_eq!(report.windows[2].window, 2);
    }

    #[test]
    fn report_aggregates() {
        let dict = Dictionary::new();
        let cfg = StreamJoinConfig::default()
            .with_m(2)
            .with_window_spec(crate::WindowSpec::tumbling(10))
            .build()
            .unwrap();
        let report = Pipeline::new(cfg, dict.clone()).run(window(&dict, 0, 30));
        assert!(report.mean_replication() >= 1.0);
        assert!(report.mean_max_load() > 0.0);
        assert!(report.repartition_fraction() >= 0.0);
        assert!(report.mean_load_balance() >= 0.0);
    }
}
