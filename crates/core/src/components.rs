//! The bolts of the Fig. 2 topology.
//!
//! * **PartitionCreator** (n): buffers its shuffle-share of each window and,
//!   at the window boundary, runs phase 1 of the partitioning algorithm
//!   (equivalence → association groups) on it, forwarding the local groups
//!   to the Merger.
//! * **Merger** (1): consolidates local groups into the global partitions
//!   (subset merging + duplicate elimination + greedy placement) and
//!   broadcasts the table to the Assigners. Handles δ-update requests and
//!   repartition signals arriving on feedback edges.
//! * **Assigner** (n): routes each document to the Joiners whose partitions
//!   share a pair with it; broadcasts documents with uncovered pairs to
//!   guarantee the exact join result; tracks per-window quality and signals
//!   the Merger when it degrades past θ.
//! * **Joiner** (m): buffers its window share and computes the local join
//!   at the boundary with the configured algorithm.

use crate::config::StreamJoinConfig;
use crate::msg::{HotSpec, Msg, TableMsg};
use crate::spill::{BlockCache, Segment, SpillSettings, SpillStore};
use ssj_join::FpTree;
use ssj_json::{AvpId, Dictionary, DocRef, FxHashSet};
use ssj_partition::{
    association_groups_parallel, batch_views, fingerprint_view, merge_and_assign, Expansion,
    GroupIndex, RepartitionPolicy, RouteOutcome, RouteScratch, RoutingStats, UnseenTracker, View,
    WindowQuality,
};
use ssj_runtime::{Bolt, BoltState, Outbox, TaskInfo, TaskInstruments, TraceKind};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// PartitionCreator bolt (§IV-A phase 1).
///
/// Runs the (expensive) association-group computation only when asked: on
/// the very first window, and whenever an Assigner has signalled a
/// repartition (§VI-A: "they inform the Partition Creators and the Merger
/// that in the next window a recalculation of the partitions should be
/// performed").
///
/// Two build paths:
///
/// * **Incremental** (expansion off): every arriving document's view is
///   pushed straight into a persistent [`GroupIndex`], amortizing the
///   docset/fingerprint work across the window instead of paying it
///   stop-the-world at the boundary. A computing boundary then only
///   refreshes the dirty fingerprints and runs the merge scan; afterwards
///   the window's views are expired (tumbling windows don't overlap).
/// * **Batch** (expansion on): expansion redefines all views wholesale
///   (synthetic pairs depend on the whole window), so the creator buffers
///   documents as before and runs the sharded parallel group build
///   ([`association_groups_parallel`]) with `config.build_workers` threads.
pub struct PartitionCreator {
    config: StreamJoinConfig,
    dict: Dictionary,
    task: usize,
    buffer: Vec<DocRef>,
    /// Persistent group index for the incremental path.
    index: GroupIndex,
    /// Index ids of the views pushed in the current pane.
    window_ids: Vec<u32>,
    /// Ids of filled panes still inside the sliding lookback (newest last);
    /// holds at most `panes_per_window - 1` panes, so it stays empty for
    /// tumbling windows.
    pane_ring: VecDeque<Vec<u32>>,
    /// Reusable view buffer for the incremental push path.
    view_buf: Vec<AvpId>,
    /// Compute local groups at the next window boundary.
    compute_pending: bool,
    /// Deployment spill settings; `None` when `mem_budget == 0`.
    spill_settings: Option<Arc<SpillSettings>>,
    /// Per-task spill machinery (created in `prepare`); `None` at budget 0.
    spill: Option<SpillStore>,
    /// Batch path only: sealed runs of this window's buffered share,
    /// read back wholesale at a computing boundary (DESIGN.md §4i). The
    /// incremental path never spills — the `GroupIndex` holds compact
    /// views, not document pools.
    spill_runs: Vec<Arc<Segment>>,
    /// Approximate bytes buffered since the last run was sealed.
    open_bytes: u64,
    inst: Option<Arc<TaskInstruments>>,
}

/// Pane-boundary snapshot of the [`PartitionCreator`]'s cross-pane state.
#[derive(Clone)]
struct CreatorState {
    compute_pending: bool,
    index: GroupIndex,
    pane_ring: VecDeque<Vec<u32>>,
}

impl PartitionCreator {
    /// One creator task. `spill` is `Some` only when the topology runs
    /// with a non-zero memory budget.
    pub fn new(
        config: StreamJoinConfig,
        dict: Dictionary,
        spill: Option<Arc<SpillSettings>>,
    ) -> Self {
        PartitionCreator {
            config,
            dict,
            task: 0,
            buffer: Vec::new(),
            index: GroupIndex::new(),
            window_ids: Vec::new(),
            pane_ring: VecDeque::new(),
            view_buf: Vec::new(),
            compute_pending: true, // bootstrap window
            spill_settings: spill,
            spill: None,
            spill_runs: Vec::new(),
            open_bytes: 0,
            inst: None,
        }
    }

    /// Whether this creator maintains the incremental index (expansion off).
    /// Sliding windows always take this path (enforced by config validation:
    /// expansion cannot expire a single pane).
    fn incremental(&self) -> bool {
        !self.config.expansion
    }

    /// Batch path: seal the buffered share as one sorted run and drop the
    /// heap copies. Read back wholesale at the next computing boundary.
    fn seal_run(&mut self) {
        let Some(store) = &self.spill else { return };
        self.open_bytes = 0;
        if self.buffer.is_empty() {
            return;
        }
        let docs: Vec<ssj_json::Document> = self.buffer.drain(..).map(|d| (*d).clone()).collect();
        let segment = store
            .write_segment(docs)
            .expect("spill: failed to write creator segment");
        if let Some(inst) = &self.inst {
            inst.counter("spill_bytes").add(segment.bytes());
            inst.counter("spill_segments").inc();
        }
        self.spill_runs.push(segment);
    }

    /// The window's documents for the batch group build: spilled runs read
    /// back in seal order (lossless — raw interned ids, same dictionary
    /// epoch), then whatever is still buffered.
    fn batch_window_docs(&self) -> Vec<ssj_json::Document> {
        let mut docs = Vec::with_capacity(self.spilled_docs() + self.buffer.len());
        for seg in &self.spill_runs {
            docs.extend(
                seg.read_all()
                    .expect("spill: failed to read creator segment"),
            );
            if let Some(inst) = &self.inst {
                inst.counter("segment_reads").add(seg.block_count() as u64);
            }
        }
        docs.extend(self.buffer.iter().map(|d| (**d).clone()));
        docs
    }

    fn spilled_docs(&self) -> usize {
        self.spill_runs.iter().map(|s| s.doc_count()).sum()
    }
}

impl Bolt<Msg> for PartitionCreator {
    fn attach_instruments(&mut self, inst: &Arc<TaskInstruments>) {
        self.inst = Some(Arc::clone(inst));
    }

    fn prepare(&mut self, info: &TaskInfo) {
        self.task = info.task_index;
        if let Some(settings) = &self.spill_settings {
            self.spill = Some(SpillStore::new(
                Arc::clone(settings),
                format!("c{}", info.task_index),
            ));
        }
    }

    fn execute(&mut self, msg: Msg, _out: &mut Outbox<Msg>) {
        match msg {
            Msg::Doc(doc) => {
                if self.incremental() {
                    self.view_buf.clear();
                    self.view_buf.extend(doc.avps());
                    let id = self.index.push(&self.view_buf);
                    self.window_ids.push(id);
                } else {
                    match &self.spill {
                        None => self.buffer.push(doc),
                        Some(store) => {
                            self.open_bytes += doc.approx_bytes() as u64;
                            let target = store.settings().chunk_target();
                            self.buffer.push(doc);
                            if self.open_bytes >= target {
                                self.seal_run();
                            }
                        }
                    }
                }
            }
            Msg::Repartition => self.compute_pending = true,
            _ => {}
        }
    }

    fn on_punct(&mut self, window: u64, out: &mut Outbox<Msg>) {
        let have_docs = if self.incremental() {
            // Older panes still in the lookback keep the index non-empty
            // even when this pane's shuffle share happens to be empty.
            !self.window_ids.is_empty() || !self.pane_ring.is_empty()
        } else {
            !self.buffer.is_empty() || !self.spill_runs.is_empty()
        };
        if self.compute_pending && have_docs {
            let t0 = self
                .inst
                .as_deref()
                .filter(|i| i.enabled())
                .map(|_| Instant::now());
            let (groups, expansion) = if self.incremental() {
                (self.index.association_groups(), None)
            } else {
                // replicate_hot implies expansion off (config validation),
                // so the batch path below never flags hot groups.
                let docs = self.batch_window_docs();
                let expansion = Expansion::detect(&docs, &self.dict, self.config.m);
                let views: Vec<View> = batch_views(&docs, expansion.as_ref(), &self.dict)
                    .into_iter()
                    .flatten()
                    .collect();
                (
                    association_groups_parallel(&views, self.config.build_workers),
                    expansion,
                )
            };
            let hot = if self.config.replicate_hot {
                // This creator's shuffle share of the lookback: the open
                // pane plus any retained panes (the ring updates below).
                let window_docs = if self.incremental() {
                    self.window_ids.len() + self.pane_ring.iter().map(Vec::len).sum::<usize>()
                } else {
                    self.buffer.len() + self.spilled_docs()
                };
                hot_groups(&groups, window_docs, self.config.hot_factor, self.config.m)
            } else {
                Vec::new()
            };
            out.emit(Msg::LocalGroups {
                window,
                creator: self.task,
                groups,
                expansion,
                hot,
            });
            self.compute_pending = false;
            if let Some(inst) = &self.inst {
                inst.counter("group_computations").inc();
                if self.incremental() {
                    let stats = self.index.stats();
                    inst.counter("groups_reused").add(stats.reused_groups);
                }
                if let Some(t0) = t0 {
                    let dt = t0.elapsed().as_nanos() as u64;
                    inst.histogram("groups_ns").record_ns(dt);
                    inst.histogram("partition_build_ns").record_ns(dt);
                }
            }
        }
        if self.incremental() {
            // The filled pane joins the ring; panes falling out of the
            // `panes_per_window` lookback expire from the index — O(pane)
            // work, never a window rebuild. A tumbling window is the 1-pane
            // case: the pane expires immediately, exactly as before.
            let deltas = self.window_ids.len() as u64 * 2; // push + expire
            self.pane_ring
                .push_back(std::mem::take(&mut self.window_ids));
            while self.pane_ring.len() >= self.config.panes_per_window() {
                for id in self.pane_ring.pop_front().unwrap_or_default() {
                    self.index.expire(id);
                }
            }
            if let Some(inst) = &self.inst {
                inst.counter("group_deltas").add(deltas);
                // Pane-expiry observability for the out-of-core story: the
                // incremental index is the creator's only cross-pane state,
                // and it holds compact views, never document pools — which
                // is why it is not tiered (DESIGN.md §4i).
                inst.gauge("index_bytes")
                    .set(self.index.approx_bytes() as i64);
            }
        }
        // Window consumed: drop any spilled runs with the heap buffer (the
        // batch path recomputes per window; segment files unlink here).
        self.spill_runs.clear();
        self.open_bytes = 0;
        self.buffer.clear();
    }

    // Cross-pane state: the compute flag plus — for sliding windows — the
    // incremental index and the pane ring (they span punctuations, so replay
    // of the open pane alone cannot rebuild them). The open pane's buffer
    // and ids ARE rebuilt by replay and deliberately not captured.
    fn snapshot(&self) -> Option<BoltState> {
        Some(Box::new(CreatorState {
            compute_pending: self.compute_pending,
            index: self.index.clone(),
            pane_ring: self.pane_ring.clone(),
        }))
    }

    fn restore(&mut self, state: &BoltState) -> Result<(), String> {
        let s = state
            .downcast_ref::<CreatorState>()
            .ok_or_else(|| "PartitionCreator snapshot type mismatch".to_string())?;
        self.compute_pending = s.compute_pending;
        self.buffer.clear();
        self.index = s.index.clone();
        self.pane_ring = s.pane_ring.clone();
        self.window_ids.clear();
        // Open-window spill runs are rebuilt by replay, like the buffer.
        self.spill_runs.clear();
        self.open_bytes = 0;
        Ok(())
    }
}

/// Window-boundary snapshot of the [`Merger`]'s cross-window state.
#[derive(Clone)]
struct MergerState {
    table: ssj_partition::PartitionTable,
    expansion: Option<Expansion>,
    hot: Vec<HotSpec>,
    dirty: bool,
}

/// Flag hot association groups (DESIGN.md §4h): a group is hot when its
/// load exceeds `hot_factor` times the fair per-partition share of the
/// pane's *documents* — `hot_factor · window_docs / m`. The denominator is
/// deliberately the document count, not the sum of group loads: a document
/// whose pairs span several groups counts once per group in the load sum,
/// which would inflate the threshold with the grouping's fragmentation and
/// let a group owning half the pane pass as cold. Returns every member
/// pair of each hot group, tagged with the group's load.
fn hot_groups(
    groups: &[ssj_partition::AssociationGroup],
    window_docs: usize,
    hot_factor: f64,
    m: usize,
) -> Vec<(AvpId, u64)> {
    if window_docs == 0 {
        return Vec::new();
    }
    let threshold = hot_factor * window_docs as f64 / m as f64;
    let mut hot = Vec::new();
    for g in groups {
        if g.load as f64 > threshold {
            hot.extend(g.avps.iter().map(|&a| (a, g.load as u64)));
        }
    }
    hot
}

/// Replica buckets for hot pairs at `m` partitions: the largest `r ≤ 4`
/// whose `r·(r+1)/2` cells fit into `m`. A pure function of `m`, so every
/// run with the same config replicates identically.
fn replica_count(m: usize) -> u32 {
    let mut r = 2;
    for cand in [3u32, 4] {
        if HotSpec::cell_count(cand) <= m {
            r = cand;
        }
    }
    r
}

/// Place each hot pair's replica cells round-robin over the partitions in
/// ascending declared-load order, bumping the declared loads so the base
/// table's balance accounting sees the replicated work. Deterministic:
/// `hot` must arrive sorted; ties in load break by partition index.
fn place_hot_cells(
    hot: &[(AvpId, u64)],
    m: usize,
    table: &mut ssj_partition::PartitionTable,
) -> Vec<HotSpec> {
    if hot.is_empty() {
        return Vec::new();
    }
    let r = replica_count(m);
    let ncells = HotSpec::cell_count(r);
    let mut order: Vec<u32> = (0..m as u32).collect();
    order.sort_by_key(|&p| (table.declared_load(p), p));
    let mut next = 0usize;
    let mut specs: Vec<HotSpec> = hot
        .iter()
        .map(|&(avp, load)| {
            let cells: Vec<u32> = (0..ncells)
                .map(|_| {
                    let p = order[next % m];
                    next += 1;
                    p
                })
                .collect();
            let share = (load as usize / ncells).max(1);
            for &c in &cells {
                table.bump_load(c, share);
            }
            HotSpec {
                avp,
                replicas: r,
                cells,
            }
        })
        .collect();
    specs.sort_by_key(|h| h.avp);
    specs
}

/// Window-boundary snapshot of the [`Assigner`]'s cross-window state.
#[derive(Clone)]
struct AssignerState {
    current: Option<Arc<TableMsg>>,
    retired: VecDeque<(Arc<TableMsg>, u64)>,
    pane: u64,
    unseen: UnseenTracker,
    baseline: Option<WindowQuality>,
    table_fresh: bool,
    signalled: bool,
}

/// One creator's window contribution buffered by the [`Merger`]:
/// `(creator, groups, expansion, hot pairs)`.
type PendingGroups = (
    usize,
    Vec<ssj_partition::AssociationGroup>,
    Option<Expansion>,
    Vec<(AvpId, u64)>,
);

/// Merger bolt (§IV-A consolidation + §VI-A updates). Exactly one instance.
///
/// Creators send local groups only on windows where a (re)computation was
/// requested, so the Merger rebuilds exactly when fresh groups arrived.
pub struct Merger {
    config: StreamJoinConfig,
    /// Groups received for the current window, per creator.
    pending: Vec<PendingGroups>,
    table: ssj_partition::PartitionTable,
    expansion: Option<Expansion>,
    /// Deployed replica-cell placements for hot pairs, sorted by pair
    /// (empty unless `config.replicate_hot`).
    hot: Vec<HotSpec>,
    /// Table changed through updates since the last broadcast.
    dirty: bool,
    inst: Option<Arc<TaskInstruments>>,
}

impl Merger {
    /// The single Merger task.
    pub fn new(config: StreamJoinConfig) -> Self {
        Merger {
            table: ssj_partition::PartitionTable::empty(config.m),
            pending: Vec::new(),
            expansion: None,
            hot: Vec::new(),
            dirty: false,
            inst: None,
            config,
        }
    }

    /// Whether `avp` is currently replicated (sorted-list lookup).
    fn is_hot(&self, avp: AvpId) -> bool {
        self.hot.binary_search_by_key(&avp, |h| h.avp).is_ok()
    }

    fn trace_table(&self, window: u64) {
        if let Some(inst) = &self.inst {
            inst.counter("table_broadcasts").inc();
            inst.trace(TraceKind::Table, window, std::time::Duration::ZERO);
        }
    }
}

impl Bolt<Msg> for Merger {
    fn attach_instruments(&mut self, inst: &Arc<TaskInstruments>) {
        self.inst = Some(Arc::clone(inst));
    }

    fn prepare(&mut self, info: &TaskInfo) {
        assert_eq!(
            info.parallelism, 1,
            "the Merger must have exactly one instance (§III-A)"
        );
    }

    fn execute(&mut self, msg: Msg, _out: &mut Outbox<Msg>) {
        match msg {
            Msg::LocalGroups {
                creator,
                groups,
                expansion,
                hot,
                ..
            } => {
                self.pending.push((creator, groups, expansion, hot));
            }
            // Hot pairs are deliberately absent from the base table; a
            // δ-update must not re-add one a stale assigner asks about.
            Msg::UpdateRequest(avp)
                if self.table.partitions_of(avp).is_empty() && !self.is_hot(avp) =>
            {
                let p = self.table.least_loaded();
                self.table.add_avp(p, avp);
                self.table.bump_load(p, 1);
                self.dirty = true;
                if let Some(inst) = &self.inst {
                    inst.counter("delta_updates").inc();
                }
            }
            // Repartition signals go to the PartitionCreators (which decide
            // to compute); the Merger reacts to the groups they send.
            _ => {}
        }
    }

    fn on_punct(&mut self, window: u64, out: &mut Outbox<Msg>) {
        if !self.pending.is_empty() {
            // Deterministic creator order.
            self.pending.sort_by_key(|(c, _, _, _)| *c);
            // Union the creators' hot flags (summing loads), then strip hot
            // pairs from the base groups: a hot pair routes exclusively via
            // its replica cells, and a second base placement would only
            // re-concentrate its load on one partition.
            let mut hot_loads: Vec<(AvpId, u64)> = Vec::new();
            for (_, _, _, h) in &self.pending {
                for &(avp, load) in h {
                    match hot_loads.iter_mut().find(|(a, _)| *a == avp) {
                        Some((_, l)) => *l += load,
                        None => hot_loads.push((avp, load)),
                    }
                }
            }
            hot_loads.sort_by_key(|&(avp, load)| (std::cmp::Reverse(load), avp));
            let hot_set: FxHashSet<AvpId> = hot_loads.iter().map(|&(a, _)| a).collect();
            let locals: Vec<Vec<ssj_partition::AssociationGroup>> = self
                .pending
                .iter()
                .map(|(_, gs, _, _)| {
                    if hot_set.is_empty() {
                        return gs.clone();
                    }
                    gs.iter()
                        .filter_map(|g| {
                            let avps: Vec<AvpId> = g
                                .avps
                                .iter()
                                .copied()
                                .filter(|a| !hot_set.contains(a))
                                .collect();
                            if avps.is_empty() {
                                None
                            } else {
                                Some(ssj_partition::AssociationGroup { avps, load: g.load })
                            }
                        })
                        .collect()
                })
                .collect();
            self.table = merge_and_assign(locals, self.config.m);
            self.hot = place_hot_cells(&hot_loads, self.config.m, &mut self.table);
            // Adopt the first creator's expansion proposal (creators see
            // shuffle-shares of the same window, so they virtually always
            // agree on the disabling/combining chain).
            self.expansion = self.pending.iter().find_map(|(_, _, e, _)| e.clone());
            self.dirty = false;
            out.emit(Msg::Table(Arc::new(TableMsg {
                window,
                table: self.table.clone(),
                expansion: self.expansion.clone(),
                hot: self.hot.clone(),
            })));
            self.trace_table(window);
        } else if self.dirty {
            self.dirty = false;
            out.emit(Msg::Table(Arc::new(TableMsg {
                window,
                table: self.table.clone(),
                expansion: self.expansion.clone(),
                hot: self.hot.clone(),
            })));
            self.trace_table(window);
        }
        self.pending.clear();
    }

    // The deployed table survives crashes; per-window `pending` groups are
    // reconstructed by replay.
    fn snapshot(&self) -> Option<BoltState> {
        Some(Box::new(MergerState {
            table: self.table.clone(),
            expansion: self.expansion.clone(),
            hot: self.hot.clone(),
            dirty: self.dirty,
        }))
    }

    fn restore(&mut self, state: &BoltState) -> Result<(), String> {
        let s = state
            .downcast_ref::<MergerState>()
            .ok_or_else(|| "Merger snapshot type mismatch".to_string())?;
        self.table = s.table.clone();
        self.expansion = s.expansion.clone();
        self.hot = s.hot.clone();
        self.dirty = s.dirty;
        self.pending.clear();
        Ok(())
    }
}

/// Assigner bolt (§III-A component 3).
pub struct Assigner {
    config: StreamJoinConfig,
    dict: Dictionary,
    current: Option<Arc<TableMsg>>,
    /// Sliding windows only: tables superseded while some pane they routed
    /// is still inside the `panes_per_window` lookback, tagged with the last
    /// pane they were current in. The current table alone governs the
    /// broadcast / unknown-pair / δ decisions; retained tables contribute
    /// *extra* route targets, which is what makes pane-spanning pairs exact
    /// (DESIGN.md §4g). Empty for tumbling windows.
    retired: VecDeque<(Arc<TableMsg>, u64)>,
    /// The pane currently being routed (= punctuations seen so far).
    pane: u64,
    unseen: UnseenTracker,
    policy: RepartitionPolicy,
    /// Quality of the first window fully routed with the current table —
    /// the §VI-A baseline the θ-threshold compares against.
    baseline: Option<WindowQuality>,
    /// The running window was (partly) routed before the current table
    /// arrived; skip it as a baseline.
    table_fresh: bool,
    /// A repartition was already signalled for the current table.
    signalled: bool,
    /// Reusable routing buffers + view-fingerprint route cache: the steady
    /// state document path performs zero heap allocations (audited by
    /// `bench_partition --audit`).
    scratch: RouteScratch,
    /// Reusable view buffer (the pairs of the document being routed).
    view_buf: Vec<AvpId>,
    // Per-window local routing counters.
    per_machine: Vec<usize>,
    sends: usize,
    broadcasts: usize,
    docs: usize,
    update_reqs: usize,
    routes_cached: usize,
    cache_misses: usize,
    hot_routed: usize,
    inst: Option<Arc<TaskInstruments>>,
}

/// Whether any pair of `view` is replicated under `t` (cheap gate: the
/// common case is an empty hot list, one `is_empty` check per table).
fn touches_hot(t: &TableMsg, view: &[AvpId]) -> bool {
    !t.hot.is_empty() && view.iter().any(|&a| t.hot_spec(a).is_some())
}

impl Assigner {
    /// One assigner task.
    pub fn new(config: StreamJoinConfig, dict: Dictionary) -> Self {
        Assigner {
            unseen: UnseenTracker::new(config.delta),
            policy: RepartitionPolicy::new(config.theta),
            baseline: None,
            table_fresh: false,
            signalled: false,
            current: None,
            retired: VecDeque::new(),
            pane: 0,
            scratch: RouteScratch::new(),
            view_buf: Vec::new(),
            per_machine: vec![0; config.m],
            sends: 0,
            broadcasts: 0,
            docs: 0,
            update_reqs: 0,
            routes_cached: 0,
            cache_misses: 0,
            hot_routed: 0,
            inst: None,
            config,
            dict,
        }
    }
}

/// Route a document that touches at least one replicated hot pair — under
/// the current table or a retained one. The mask depends on the document
/// id (replica buckets), so this path never consults or fills the
/// view-fingerprint cache. Returns `false` (broadcast) when the view has
/// an unknown non-hot pair, exactly like the base path; a broadcast
/// reaches every cell, so hot coverage is preserved.
#[allow(clippy::too_many_arguments)]
fn route_hot(
    t: &TableMsg,
    retired: &VecDeque<(Arc<TableMsg>, u64)>,
    view: &[AvpId],
    doc_id: u64,
    unseen: &mut UnseenTracker,
    scratch: &mut RouteScratch,
    update_reqs: &mut usize,
    out: &mut Outbox<Msg>,
) -> bool {
    let mut mask = 0u64;
    let mut unknown = false;
    for &avp in view {
        if let Some(spec) = t.hot_spec(avp) {
            mask |= spec.bucket_mask(spec.bucket_of(doc_id));
        } else {
            let am = t.table.avp_mask(avp);
            if am == 0 {
                unknown = true;
                if unseen.observe(avp) {
                    *update_reqs += 1;
                    out.emit(Msg::UpdateRequest(avp));
                }
            } else {
                mask |= am;
            }
        }
    }
    if unknown || mask == 0 {
        return false;
    }
    // Retained pane tables (sliding only) contribute extra targets,
    // including their own replica cells for pairs hot under them.
    for (rt, _) in retired {
        for &avp in view {
            match rt.hot_spec(avp) {
                Some(spec) => mask |= spec.bucket_mask(spec.bucket_of(doc_id)),
                None => mask |= rt.table.avp_mask(avp),
            }
        }
    }
    scratch.set_targets_from_mask(mask);
    true
}

impl Bolt<Msg> for Assigner {
    fn attach_instruments(&mut self, inst: &Arc<TaskInstruments>) {
        self.inst = Some(Arc::clone(inst));
    }

    fn execute(&mut self, msg: Msg, out: &mut Outbox<Msg>) {
        match msg {
            Msg::Doc(doc) => {
                self.docs += 1;
                let m = self.config.m;
                // Build the routing view into the reusable buffer (no
                // allocation once the buffer has warmed up).
                let have_view = match self.current.as_ref().and_then(|t| t.expansion.as_ref()) {
                    Some(e) => e.view_into(&doc, &self.dict, &mut self.view_buf),
                    None => {
                        self.view_buf.clear();
                        self.view_buf.extend(doc.avps());
                        true
                    }
                };
                // matched = targets are in the scratch buffer; otherwise
                // broadcast (no table yet, expansion failed, unknown pair,
                // or nothing matched).
                let matched = match &self.current {
                    Some(t) if have_view => {
                        if touches_hot(t, &self.view_buf)
                            || self
                                .retired
                                .iter()
                                .any(|(rt, _)| touches_hot(rt, &self.view_buf))
                        {
                            // Replicated pair: id-dependent bucket routing,
                            // uncached (DESIGN.md §4h). Only reachable with
                            // replicate_hot on, which implies m <= 64.
                            let hit = route_hot(
                                t,
                                &self.retired,
                                &self.view_buf,
                                doc.id().0,
                                &mut self.unseen,
                                &mut self.scratch,
                                &mut self.update_reqs,
                                out,
                            );
                            if hit {
                                self.hot_routed += 1;
                            }
                            hit
                        } else if t.table.mask_supported() {
                            // Fast path: one u64 OR per pair, where a zero
                            // pair mask doubles as the unknown-pair test.
                            // Repeated view shapes hit the fingerprint cache
                            // and skip the table walk entirely; only fully
                            // known views are cached, so δ-tracking sees
                            // every unknown pair exactly as before.
                            let fp = fingerprint_view(self.view_buf.iter().copied());
                            if let Some(mask) = self.scratch.cache_get(fp) {
                                self.routes_cached += 1;
                                self.scratch.set_targets_from_mask(mask);
                                true
                            } else {
                                self.cache_misses += 1;
                                let mut mask = 0u64;
                                let mut unknown = false;
                                for &avp in &self.view_buf {
                                    let am = t.table.avp_mask(avp);
                                    if am == 0 {
                                        unknown = true;
                                        if self.unseen.observe(avp) {
                                            self.update_reqs += 1;
                                            out.emit(Msg::UpdateRequest(avp));
                                        }
                                    }
                                    mask |= am;
                                }
                                if unknown || mask == 0 {
                                    false
                                } else {
                                    // Retained pane tables (sliding only)
                                    // add targets so a pane-spanning pair
                                    // meets wherever its earlier document
                                    // was routed; they never influence the
                                    // broadcast/unknown decision above.
                                    for (rt, _) in &self.retired {
                                        mask |= rt.table.view_mask(&self.view_buf);
                                    }
                                    self.scratch.cache_put(fp, mask);
                                    self.scratch.set_targets_from_mask(mask);
                                    true
                                }
                            }
                        } else {
                            // m > 64: no bitmasks; explicit unknown scan,
                            // then the reusable sort/dedup fallback.
                            let mut unknown = false;
                            for &avp in &self.view_buf {
                                if t.table.partitions_of(avp).is_empty() {
                                    unknown = true;
                                    if self.unseen.observe(avp) {
                                        self.update_reqs += 1;
                                        out.emit(Msg::UpdateRequest(avp));
                                    }
                                }
                            }
                            let matched = !unknown
                                && t.table.route_into(&self.view_buf, &mut self.scratch)
                                    == RouteOutcome::Matched;
                            if matched {
                                for (rt, _) in &self.retired {
                                    for &avp in &self.view_buf {
                                        self.scratch.merge_targets(
                                            rt.table.partitions_of(avp).iter().copied(),
                                        );
                                    }
                                }
                            }
                            matched
                        }
                    }
                    _ => false,
                };
                if matched {
                    for &p in self.scratch.targets() {
                        self.per_machine[p as usize] += 1;
                        self.sends += 1;
                        out.emit_direct(p as usize, Msg::Doc(Arc::clone(&doc)));
                    }
                } else {
                    self.broadcasts += 1;
                    for p in 0..m {
                        self.per_machine[p] += 1;
                        self.sends += 1;
                        out.emit_direct(p, Msg::Doc(Arc::clone(&doc)));
                    }
                }
            }
            Msg::Table(t) => {
                // Sliding windows: the superseded table routed panes that
                // are still inside the lookback — retain it (tagged with
                // the last pane it was current in) so its route targets
                // keep contributing until those panes evict.
                if self.config.is_sliding() {
                    if let Some(old) = self.current.take() {
                        self.retired.push_back((old, self.pane));
                    }
                }
                self.current = Some(t);
                self.unseen.reset();
                self.baseline = None;
                self.table_fresh = true;
                self.signalled = false;
                // Cached routes reference the old table.
                self.scratch.invalidate_cache();
            }
            _ => {}
        }
    }

    fn on_punct(&mut self, window: u64, out: &mut Outbox<Msg>) {
        if let Some(inst) = &self.inst {
            inst.counter("routed_sends").add(self.sends as u64);
            inst.counter("broadcast_docs").add(self.broadcasts as u64);
            inst.counter("update_requests").add(self.update_reqs as u64);
            inst.counter("routes_cached").add(self.routes_cached as u64);
            inst.counter("route_cache_misses")
                .add(self.cache_misses as u64);
            inst.counter("hot_routed").add(self.hot_routed as u64);
        }
        if self.docs > 0 {
            let quality = WindowQuality::from_stats(&RoutingStats {
                per_machine: std::mem::replace(&mut self.per_machine, vec![0; self.config.m]),
                total_sends: self.sends,
                broadcasts: self.broadcasts,
                docs: self.docs,
            });
            if self.table_fresh {
                // This window straddled a table change; its stats mix two
                // routings and must not become the baseline.
                self.table_fresh = false;
            } else {
                match &self.baseline {
                    None => self.baseline = Some(quality),
                    Some(base) => {
                        if !self.signalled && self.policy.should_repartition(base, &quality) {
                            // One signal per deployed table: creators will
                            // recompute and the merger will broadcast a new
                            // one, which rearms the detector.
                            self.signalled = true;
                            out.emit(Msg::Repartition);
                            if let Some(inst) = &self.inst {
                                inst.counter("repartition_signals").inc();
                                inst.trace(
                                    TraceKind::Repartition,
                                    window,
                                    std::time::Duration::ZERO,
                                );
                            }
                        }
                    }
                }
            }
        }
        self.sends = 0;
        self.broadcasts = 0;
        self.docs = 0;
        self.update_reqs = 0;
        self.routes_cached = 0;
        self.cache_misses = 0;
        self.hot_routed = 0;
        self.per_machine.iter_mut().for_each(|c| *c = 0);
        // Pane boundary: retire tables whose last routed pane fell out of
        // the lookback. Cached route masks are unions over the retained
        // set, so any expiry must also drop the cache — a stale union mask
        // must never route to a partition only an evicted pane's table
        // justified.
        self.pane = window + 1;
        let lookback = self.config.panes_per_window() as u64;
        let mut expired = false;
        while self
            .retired
            .front()
            .is_some_and(|(_, last)| last + lookback <= self.pane)
        {
            self.retired.pop_front();
            expired = true;
        }
        if expired {
            self.scratch.invalidate_cache();
        }
    }

    // The deployed table (plus retained pane tables), δ-tracker, and
    // θ-baseline survive crashes; the per-window routing counters are
    // rebuilt by replay.
    fn snapshot(&self) -> Option<BoltState> {
        Some(Box::new(AssignerState {
            current: self.current.clone(),
            retired: self.retired.clone(),
            pane: self.pane,
            unseen: self.unseen.clone(),
            baseline: self.baseline,
            table_fresh: self.table_fresh,
            signalled: self.signalled,
        }))
    }

    fn restore(&mut self, state: &BoltState) -> Result<(), String> {
        let s = state
            .downcast_ref::<AssignerState>()
            .ok_or_else(|| "Assigner snapshot type mismatch".to_string())?;
        self.current = s.current.clone();
        self.retired = s.retired.clone();
        self.pane = s.pane;
        self.unseen = s.unseen.clone();
        self.baseline = s.baseline;
        self.table_fresh = s.table_fresh;
        self.signalled = s.signalled;
        self.per_machine = vec![0; self.config.m];
        self.sends = 0;
        self.broadcasts = 0;
        self.docs = 0;
        self.update_reqs = 0;
        self.routes_cached = 0;
        self.cache_misses = 0;
        self.hot_routed = 0;
        self.scratch = RouteScratch::new();
        self.view_buf.clear();
        Ok(())
    }
}

/// One sealed chunk of a Joiner pane: either a resident arena (the pane's
/// deduplicated documents plus the FP-tree frozen over them) or a spilled
/// immutable segment file with only its compact header in memory
/// (DESIGN.md §4i). Without a memory budget every pane is exactly one
/// resident chunk — the pre-tiering layout.
// Resident is much larger than Spilled, but a chunk ring holds only a
// handful of entries and probing goes straight through the tree — boxing
// would buy nothing except an extra hop on the hot path.
#[allow(clippy::large_enum_variant)]
enum FrozenPane {
    /// In-memory arena: documents + FP-tree for cross-chunk probing.
    Resident {
        docs: Vec<ssj_json::Document>,
        tree: FpTree,
    },
    /// Tiered out: only the segment header (Bloom summary + block index)
    /// stays resident; probes lazily read blocks back through the cache.
    Spilled { segment: Arc<Segment> },
}

impl FrozenPane {
    /// Approximate resident footprint: the full arena for resident chunks,
    /// just the header for spilled ones. This is what the budget meters.
    fn resident_bytes(&self) -> u64 {
        match self {
            FrozenPane::Resident { docs, tree } => {
                (docs.iter().map(|d| d.approx_bytes()).sum::<usize>() + tree.approx_bytes()) as u64
            }
            FrozenPane::Spilled { segment } => segment.header_bytes() as u64,
        }
    }

    /// Probe every doc in `docs` against this chunk, appending partner
    /// pairs as `(chunk partner, probing doc)` — chunk docs are always the
    /// earlier ones. Resident chunks use the FP-tree; spilled chunks gate
    /// on the Bloom summary and linearly scan cached/read-back blocks with
    /// `Document::joins_with` — the exact predicate the FP-tree probe
    /// implements, so the partner set is identical either way.
    #[allow(clippy::too_many_arguments)]
    fn probe(
        &self,
        docs: &[ssj_json::Document],
        scratch: &mut ssj_join::ProbeScratch,
        probe_buf: &mut Vec<ssj_json::DocId>,
        cache: &mut BlockCache,
        pairs: &mut Vec<(ssj_json::DocId, ssj_json::DocId)>,
        inst: Option<&TaskInstruments>,
    ) {
        match self {
            FrozenPane::Resident { tree, .. } => {
                for d in docs {
                    ssj_join::fp_probe_into(tree, d, true, scratch, probe_buf);
                    pairs.extend(probe_buf.iter().map(|&p| (p, d.id())));
                }
            }
            FrozenPane::Spilled { segment } => {
                let timed = inst.is_some_and(|i| i.enabled());
                for d in docs {
                    if !segment.may_contain_any(d) {
                        continue;
                    }
                    probe_buf.clear();
                    let t0 = timed.then(Instant::now);
                    let disk_blocks = segment
                        .probe_into(d, cache, probe_buf)
                        .expect("spill: segment probe read-back failed");
                    if let Some(inst) = inst {
                        inst.counter("segment_reads").add(disk_blocks);
                        if let Some(t0) = t0 {
                            inst.histogram("readback_ns")
                                .record_ns(t0.elapsed().as_nanos() as u64);
                        }
                    }
                    pairs.extend(probe_buf.iter().map(|&p| (p, d.id())));
                }
            }
        }
    }
}

/// Snapshot form of one chunk: resident docs travel whole (trees are
/// rebuilt on restore), spilled chunks travel as segment manifests — the
/// `Arc` keeps the file alive across the crash, so recovery replays
/// cheaply without re-serializing window state.
#[derive(Clone)]
enum ChunkManifest {
    Resident(Vec<ssj_json::Document>),
    Spilled(Arc<Segment>),
}

/// Pane-boundary snapshot of the [`Joiner`]'s frozen pane ring: per pane,
/// the manifests of its chunks. FP-trees are rebuilt deterministically on
/// restore ([`FpTree::build`] is a pure function of the chunk's documents).
#[derive(Clone)]
struct JoinerState {
    frozen: Vec<Vec<ChunkManifest>>,
}

/// Joiner bolt (§V): local window join.
///
/// Tumbling windows join the buffered pane and drop it. Sliding windows
/// reuse [`ssj_join::SlidingJoiner`]'s pane-chaining design at the bolt
/// level: the newest `panes_per_window - 1` filled panes stay frozen;
/// each pane boundary joins the open pane internally, probes it against
/// every frozen pane, then freezes it and evicts the oldest — O(pane)
/// eviction, never a window rebuild.
///
/// With a memory budget (`--mem-budget`, DESIGN.md §4i) the open pane is
/// additionally sealed in *chunks*: when the buffered share reaches the
/// chunk target, the chunk is deduplicated, joined within itself, probed
/// against every earlier chunk (sealed earlier in this pane or frozen in
/// the ring), and frozen; the oldest resident chunks then spill to sorted
/// segment files until the resident footprint fits the budget. The pair
/// set is invariant under chunking — each unordered pair is found exactly
/// once, either inside its chunk's batch join or when the later chunk
/// seals and probes the earlier one.
pub struct Joiner {
    config: StreamJoinConfig,
    task: usize,
    buffer: Vec<DocRef>,
    /// Frozen panes still inside the sliding lookback, oldest first; empty
    /// for tumbling windows. One chunk per pane without a budget.
    frozen: VecDeque<Vec<FrozenPane>>,
    /// Probe scratch persisted across windows: steady-state probing in this
    /// bolt allocates nothing once the buffers have warmed up.
    batch: ssj_join::BatchJoiner,
    /// Reused working memory for cross-pane probes.
    probe_scratch: ssj_join::ProbeScratch,
    probe_buf: Vec<ssj_json::DocId>,
    /// Deployment spill settings; `None` when `mem_budget == 0`.
    spill_settings: Option<Arc<SpillSettings>>,
    /// Per-task spill machinery, created in `prepare` (needs the task
    /// index for segment names). `None` when `mem_budget == 0`: the
    /// budget-0 hot path is exactly the pre-tiering code.
    spill: Option<SpillStore>,
    /// Chunks of the open pane sealed so far (spill mode only).
    sealed: Vec<FrozenPane>,
    /// Ids seen in the open pane across chunks (spill-mode dedup; the
    /// resident path dedups at the boundary instead).
    pane_seen: FxHashSet<u64>,
    /// Deduplicated docs sealed into the open pane so far.
    pane_docs: usize,
    /// Join pairs accumulated by chunk seals of the open pane.
    pending: Vec<(ssj_json::DocId, ssj_json::DocId)>,
    /// Approximate bytes buffered since the last chunk seal.
    open_bytes: u64,
    /// Probe/join time accumulated across this pane's chunk seals
    /// (instrument-gated), flushed into `probe_ns` at the boundary.
    probe_ns_acc: u64,
    inst: Option<Arc<TaskInstruments>>,
}

impl Joiner {
    /// One joiner task. `spill` is `Some` only when the topology runs with
    /// a non-zero memory budget.
    pub fn new(config: StreamJoinConfig, spill: Option<Arc<SpillSettings>>) -> Self {
        Joiner {
            config,
            task: 0,
            buffer: Vec::new(),
            frozen: VecDeque::new(),
            batch: ssj_join::BatchJoiner::new(),
            probe_scratch: ssj_join::ProbeScratch::new(),
            probe_buf: Vec::new(),
            spill_settings: spill,
            spill: None,
            sealed: Vec::new(),
            pane_seen: FxHashSet::default(),
            pane_docs: 0,
            pending: Vec::new(),
            open_bytes: 0,
            probe_ns_acc: 0,
            inst: None,
        }
    }

    /// True when out-of-core tiering is installed on this task.
    #[cfg(test)]
    fn spilling(&self) -> bool {
        self.spill_settings.is_some() || self.spill.is_some()
    }

    /// Seal the buffered share of the open pane as one chunk: dedup, join
    /// within the chunk, probe all earlier state, freeze resident, then
    /// spill oldest resident chunks until the budget holds.
    fn seal_chunk(&mut self) {
        let Some(store) = self.spill.as_mut() else {
            return;
        };
        self.open_bytes = 0;
        let mut docs: Vec<ssj_json::Document> = Vec::new();
        for d in self.buffer.drain(..) {
            if self.pane_seen.insert(d.id().0) {
                docs.push((*d).clone());
            }
        }
        if docs.is_empty() {
            return;
        }
        self.pane_docs += docs.len();
        let inst = self.inst.as_deref();
        let t0 = inst.filter(|i| i.enabled()).map(|_| Instant::now());
        // Within-chunk pairs with the configured algorithm...
        let mut pairs = self.batch.join_batch(self.config.join_algo, &docs);
        // ...then chunk-spanning pairs: probe every earlier chunk, frozen
        // panes (oldest first) before this pane's earlier seals.
        for chunk in self
            .frozen
            .iter()
            .flat_map(|pane| pane.iter())
            .chain(self.sealed.iter())
        {
            chunk.probe(
                &docs,
                &mut self.probe_scratch,
                &mut self.probe_buf,
                &mut store.cache,
                &mut pairs,
                inst,
            );
        }
        if let Some(t0) = t0 {
            self.probe_ns_acc += t0.elapsed().as_nanos() as u64;
        }
        self.pending.append(&mut pairs);
        let tree = FpTree::build(&docs);
        self.sealed.push(FrozenPane::Resident { docs, tree });

        // Budget enforcement: spill oldest resident chunks (oldest frozen
        // pane first, then this pane's seals) until resident state fits.
        let budget = store.settings().budget;
        let mut spilled_bytes = 0u64;
        let mut spilled_runs = 0u64;
        loop {
            let resident: u64 = self
                .frozen
                .iter()
                .flat_map(|pane| pane.iter())
                .chain(self.sealed.iter())
                .map(FrozenPane::resident_bytes)
                .sum();
            if resident <= budget {
                break;
            }
            let Some(chunk) = self
                .frozen
                .iter_mut()
                .flat_map(|pane| pane.iter_mut())
                .chain(self.sealed.iter_mut())
                .find(|c| matches!(c, FrozenPane::Resident { .. }))
            else {
                break; // headers alone exceed the budget; nothing to do
            };
            let FrozenPane::Resident { docs, .. } = chunk else {
                unreachable!()
            };
            let segment = store
                .write_segment(std::mem::take(docs))
                .expect("spill: failed to write segment");
            spilled_bytes += segment.bytes();
            spilled_runs += 1;
            *chunk = FrozenPane::Spilled { segment };
        }
        if let Some(inst) = inst {
            if spilled_runs > 0 {
                inst.counter("spill_bytes").add(spilled_bytes);
                inst.counter("spill_segments").add(spilled_runs);
            }
        }
        self.drain_compactions();
        self.maybe_request_compaction();
    }

    /// Swap finished background merges into whichever pane still holds all
    /// of their input runs. A merge whose inputs were evicted meanwhile is
    /// simply dropped (its segment file unlinks with the `Arc`).
    fn drain_compactions(&mut self) {
        let Some(store) = self.spill.as_mut() else {
            return;
        };
        while let Some(res) = store.poll_compaction() {
            let Ok(merged) = res.merged else { continue };
            let mut merged = Some(merged);
            for pane in self
                .frozen
                .iter_mut()
                .chain(std::iter::once(&mut self.sealed))
            {
                let positions: Vec<usize> = pane
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| {
                        matches!(c, FrozenPane::Spilled { segment }
                            if res.input_ids.contains(&segment.id()))
                    })
                    .map(|(i, _)| i)
                    .collect();
                if positions.len() != res.input_ids.len() {
                    continue;
                }
                // The merged run holds exactly the union of the replaced
                // runs' (disjoint) doc sets, so probe results are
                // unchanged; position within the pane does not matter.
                if let Some(m) = merged.take() {
                    pane[positions[0]] = FrozenPane::Spilled { segment: m };
                }
                for &i in positions[1..].iter().rev() {
                    pane.remove(i);
                }
                store.cache.evict_segments(&res.input_ids);
                if let Some(inst) = &self.inst {
                    inst.counter("compactions").inc();
                }
                break;
            }
        }
    }

    /// Hand the first pane holding `COMPACT_MIN_RUNS`+ small spilled runs
    /// to the background compactor (one merge in flight at a time).
    fn maybe_request_compaction(&mut self) {
        let Some(store) = self.spill.as_mut() else {
            return;
        };
        if store.compactions_in_flight() > 0 {
            return;
        }
        for pane in self.frozen.iter().chain(std::iter::once(&self.sealed)) {
            let runs: Vec<Arc<Segment>> = pane
                .iter()
                .filter_map(|c| match c {
                    FrozenPane::Spilled { segment } => Some(Arc::clone(segment)),
                    FrozenPane::Resident { .. } => None,
                })
                .collect();
            if runs.len() >= crate::spill::COMPACT_MIN_RUNS {
                store.request_compaction(runs);
                return;
            }
        }
    }

    /// Pane boundary under tiering: seal the remainder, emit the pane's
    /// accumulated pairs, rotate the chunk ring.
    fn on_punct_spill(&mut self, window: u64, out: &mut Outbox<Msg>) {
        self.seal_chunk();
        let pairs = std::mem::take(&mut self.pending);
        let docs = self.pane_docs;
        if let Some(inst) = &self.inst {
            inst.counter("join_pairs").add(pairs.len() as u64);
            inst.counter("window_docs").add(docs as u64);
            inst.histogram("probe_pairs").record_ns(pairs.len() as u64);
            if inst.enabled() {
                let dt = std::time::Duration::from_nanos(self.probe_ns_acc);
                inst.histogram("probe_ns").record_ns(self.probe_ns_acc);
                inst.trace(TraceKind::Probe, window, dt);
            }
            if let Some(store) = &mut self.spill {
                let (hits, misses) = store.cache.take_counters();
                inst.counter("block_cache_hits").add(hits);
                inst.counter("block_cache_misses").add(misses);
            }
        }
        self.probe_ns_acc = 0;
        out.emit(Msg::JoinStats {
            window,
            joiner: self.task,
            docs,
            pairs,
        });
        let sealed = std::mem::take(&mut self.sealed);
        if self.config.panes_per_window() > 1 {
            self.frozen.push_back(sealed);
            while self.frozen.len() >= self.config.panes_per_window() {
                if let (Some(pane), Some(store)) = (self.frozen.pop_front(), self.spill.as_mut()) {
                    let dead: Vec<u64> = pane
                        .iter()
                        .filter_map(|c| match c {
                            FrozenPane::Spilled { segment } => Some(segment.id()),
                            FrozenPane::Resident { .. } => None,
                        })
                        .collect();
                    if !dead.is_empty() {
                        store.cache.evict_segments(&dead);
                    }
                }
            }
        }
        self.pane_seen.clear();
        self.pane_docs = 0;
        self.open_bytes = 0;
        self.buffer.clear();
        self.drain_compactions();
        self.maybe_request_compaction();
    }
}

impl Bolt<Msg> for Joiner {
    fn attach_instruments(&mut self, inst: &Arc<TaskInstruments>) {
        self.inst = Some(Arc::clone(inst));
    }

    fn prepare(&mut self, info: &TaskInfo) {
        self.task = info.task_index;
        if let Some(settings) = &self.spill_settings {
            self.spill = Some(SpillStore::new(
                Arc::clone(settings),
                format!("j{}", info.task_index),
            ));
        }
    }

    fn execute(&mut self, msg: Msg, _out: &mut Outbox<Msg>) {
        if let Msg::Doc(doc) = msg {
            match &self.spill {
                // Budget 0: push, nothing else — the pre-tiering hot path.
                None => self.buffer.push(doc),
                Some(store) => {
                    self.open_bytes += doc.approx_bytes() as u64;
                    self.buffer.push(doc);
                    if self.open_bytes >= store.settings().chunk_target() {
                        self.seal_chunk();
                    }
                }
            }
        }
    }

    fn on_punct(&mut self, window: u64, out: &mut Outbox<Msg>) {
        if self.spill.is_some() {
            self.on_punct_spill(window, out);
            return;
        }
        // Duplicates can arrive when an updated table re-routes a pair the
        // broadcast path already delivered; keep one copy per document.
        let mut seen: FxHashSet<u64> = FxHashSet::default();
        let docs: Vec<ssj_json::Document> = self
            .buffer
            .iter()
            .filter(|d| seen.insert(d.id().0))
            .map(|d| (**d).clone())
            .collect();
        let t0 = self
            .inst
            .as_deref()
            .filter(|i| i.enabled())
            .map(|_| Instant::now());
        // Within-pane pairs with the configured algorithm (for tumbling
        // windows the pane IS the window and this is the entire join)...
        let mut pairs = self.batch.join_batch(self.config.join_algo, &docs);
        // ...plus, for sliding windows, pane-spanning pairs: probe each new
        // document against every frozen pane's FP-tree. Frozen partners are
        // the earlier documents, so pairs keep (earlier, later) order.
        // Without a budget every pane is exactly one resident chunk.
        for pane in &self.frozen {
            for chunk in pane {
                let FrozenPane::Resident { tree, .. } = chunk else {
                    unreachable!("spilled chunk without a spill store")
                };
                for d in &docs {
                    ssj_join::fp_probe_into(
                        tree,
                        d,
                        true,
                        &mut self.probe_scratch,
                        &mut self.probe_buf,
                    );
                    pairs.extend(self.probe_buf.iter().map(|&p| (p, d.id())));
                }
            }
        }
        if let Some(inst) = &self.inst {
            inst.counter("join_pairs").add(pairs.len() as u64);
            inst.counter("window_docs").add(docs.len() as u64);
            // Per-window probe load in candidate pairs: the deterministic
            // straggler measure — unlike probe_ns it is immune to CPU
            // contention, so benchmarks can gate on it reproducibly.
            inst.histogram("probe_pairs").record_ns(pairs.len() as u64);
            if let Some(t0) = t0 {
                let dt = t0.elapsed();
                inst.histogram("probe_ns").record_ns(dt.as_nanos() as u64);
                inst.trace(TraceKind::Probe, window, dt);
            }
        }
        out.emit(Msg::JoinStats {
            window,
            joiner: self.task,
            docs: docs.len(),
            pairs,
        });
        // Slide: freeze the pane and evict the one leaving the lookback —
        // O(pane) work. Tumbling (1 pane) keeps nothing, exactly as before.
        if self.config.panes_per_window() > 1 {
            let tree = FpTree::build(&docs);
            self.frozen
                .push_back(vec![FrozenPane::Resident { docs, tree }]);
            while self.frozen.len() >= self.config.panes_per_window() {
                self.frozen.pop_front();
            }
        }
        self.buffer.clear();
    }

    // The frozen pane ring spans punctuations, so replay of the open pane
    // alone cannot rebuild it — it must be captured. Spilled chunks are
    // captured as segment manifests (the Arc keeps the file alive); the
    // open buffer, sealed open-pane chunks, and pending pairs ARE rebuilt
    // by replay and the probe scratch is only a warm cache; none of those
    // are snapshotted. Tumbling windows snapshot an empty ring.
    fn snapshot(&self) -> Option<BoltState> {
        Some(Box::new(JoinerState {
            frozen: self
                .frozen
                .iter()
                .map(|pane| {
                    pane.iter()
                        .map(|chunk| match chunk {
                            FrozenPane::Resident { docs, .. } => {
                                ChunkManifest::Resident(docs.clone())
                            }
                            FrozenPane::Spilled { segment } => {
                                ChunkManifest::Spilled(Arc::clone(segment))
                            }
                        })
                        .collect()
                })
                .collect(),
        }))
    }

    fn restore(&mut self, state: &BoltState) -> Result<(), String> {
        let s = state
            .downcast_ref::<JoinerState>()
            .ok_or_else(|| "Joiner snapshot type mismatch".to_string())?;
        self.frozen = s
            .frozen
            .iter()
            .map(|pane| {
                pane.iter()
                    .map(|manifest| match manifest {
                        ChunkManifest::Resident(docs) => FrozenPane::Resident {
                            tree: FpTree::build(docs),
                            docs: docs.clone(),
                        },
                        ChunkManifest::Spilled(segment) => FrozenPane::Spilled {
                            segment: Arc::clone(segment),
                        },
                    })
                    .collect()
            })
            .collect();
        self.buffer.clear();
        self.sealed.clear();
        self.pane_seen.clear();
        self.pane_docs = 0;
        self.pending.clear();
        self.open_bytes = 0;
        self.probe_ns_acc = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Acceptance guard: `--mem-budget 0` installs nothing — no settings,
    /// no store (before or after `prepare`), so the hot path is the exact
    /// pre-tiering code.
    #[test]
    fn budget_zero_installs_no_spill_machinery() {
        let cfg = StreamJoinConfig::default();
        assert_eq!(cfg.mem_budget, 0);
        let mut j = Joiner::new(cfg, None);
        assert!(!j.spilling());
        j.prepare(&TaskInfo {
            component: "joiner".into(),
            task_index: 0,
            parallelism: 1,
        });
        assert!(!j.spilling());

        let cfg = StreamJoinConfig::default()
            .with_mem_budget(1 << 20)
            .build()
            .unwrap();
        let settings = Arc::new(SpillSettings {
            budget: cfg.mem_budget,
            dir: std::env::temp_dir(),
            epoch: 0,
        });
        let mut j = Joiner::new(cfg, Some(settings));
        assert!(j.spilling());
        j.prepare(&TaskInfo {
            component: "joiner".into(),
            task_index: 3,
            parallelism: 4,
        });
        assert!(j.spill.is_some());
    }
}
