//! The tuple type flowing through the Fig. 2 topology.

use ssj_json::{AvpId, DocId, DocRef};
use ssj_partition::{AssociationGroup, Expansion, PartitionTable};
use std::sync::Arc;

/// Everything the topology's components exchange. Documents travel behind
/// `Arc`s, so fan-out (all-grouping, broadcasts) is reference counting, not
/// copying.
#[derive(Clone)]
pub enum Msg {
    /// A schema-free document from the JsonReader.
    Doc(DocRef),
    /// Local association groups from one PartitionCreator for one window
    /// (phase 1 of §IV-A), plus the expansion the creator detected.
    LocalGroups {
        /// Window (punctuation) id the groups were computed from.
        window: u64,
        /// Task index of the producing PartitionCreator.
        creator: usize,
        /// The phase-1 association groups over the creator's sample.
        groups: Vec<AssociationGroup>,
        /// The creator's locally detected attribute expansion, if enabled.
        expansion: Option<Expansion>,
    },
    /// The consolidated partition table broadcast by the Merger.
    Table(Arc<TableMsg>),
    /// An Assigner asking the Merger to add a δ-frequent unseen pair.
    UpdateRequest(AvpId),
    /// An Assigner signalling that partition quality degraded past θ.
    Repartition,
    /// One Joiner's results for one window.
    JoinStats {
        /// Window (punctuation) id.
        window: u64,
        /// Task index of the producing Joiner.
        joiner: usize,
        /// Documents the Joiner held in this window.
        docs: usize,
        /// The joinable pairs found, as `(earlier, later)` ids.
        pairs: Vec<(DocId, DocId)>,
    },
}

/// The Merger's broadcast: the deployed table and the active expansion.
#[derive(Debug)]
pub struct TableMsg {
    /// Window id the table was (re)computed at.
    pub window: u64,
    /// The partition table.
    pub table: PartitionTable,
    /// The attribute expansion routing must apply, if any.
    pub expansion: Option<Expansion>,
}

impl std::fmt::Debug for Msg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Msg::Doc(d) => write!(f, "Doc({})", d.id()),
            Msg::LocalGroups {
                window,
                creator,
                groups,
                ..
            } => write!(
                f,
                "LocalGroups(w={window}, c={creator}, n={})",
                groups.len()
            ),
            Msg::Table(t) => write!(f, "Table(w={})", t.window),
            Msg::UpdateRequest(a) => write!(f, "UpdateRequest({a})"),
            Msg::Repartition => write!(f, "Repartition"),
            Msg::JoinStats {
                window,
                joiner,
                docs,
                pairs,
            } => write!(
                f,
                "JoinStats(w={window}, j={joiner}, docs={docs}, pairs={})",
                pairs.len()
            ),
        }
    }
}
