//! The tuple type flowing through the Fig. 2 topology.

use ssj_json::{AvpId, DocId, DocRef};
use ssj_partition::{AssociationGroup, Expansion, PartitionTable};
use std::sync::Arc;

/// Everything the topology's components exchange. Documents travel behind
/// `Arc`s, so fan-out (all-grouping, broadcasts) is reference counting, not
/// copying.
#[derive(Clone)]
pub enum Msg {
    /// A schema-free document from the JsonReader.
    Doc(DocRef),
    /// Local association groups from one PartitionCreator for one window
    /// (phase 1 of §IV-A), plus the expansion the creator detected.
    LocalGroups {
        /// Window (punctuation) id the groups were computed from.
        window: u64,
        /// Task index of the producing PartitionCreator.
        creator: usize,
        /// The phase-1 association groups over the creator's sample.
        groups: Vec<AssociationGroup>,
        /// The creator's locally detected attribute expansion, if enabled.
        expansion: Option<Expansion>,
        /// Pairs of hot association groups with the group's load, flagged
        /// when hot-group replication is on (DESIGN.md §4h). Empty
        /// otherwise.
        hot: Vec<(AvpId, u64)>,
    },
    /// The consolidated partition table broadcast by the Merger.
    Table(Arc<TableMsg>),
    /// An Assigner asking the Merger to add a δ-frequent unseen pair.
    UpdateRequest(AvpId),
    /// An Assigner signalling that partition quality degraded past θ.
    Repartition,
    /// One Joiner's results for one window.
    JoinStats {
        /// Window (punctuation) id.
        window: u64,
        /// Task index of the producing Joiner.
        joiner: usize,
        /// Documents the Joiner held in this window.
        docs: usize,
        /// The joinable pairs found, as `(earlier, later)` ids.
        pairs: Vec<(DocId, DocId)>,
    },
}

/// The Merger's broadcast: the deployed table and the active expansion.
#[derive(Debug)]
pub struct TableMsg {
    /// Window id the table was (re)computed at.
    pub window: u64,
    /// The partition table.
    pub table: PartitionTable,
    /// The attribute expansion routing must apply, if any.
    pub expansion: Option<Expansion>,
    /// Replica-cell placements for hot pairs, sorted by `avp` (empty when
    /// hot-group replication is off). Hot pairs are excluded from the base
    /// table; routing consults this list first.
    pub hot: Vec<HotSpec>,
}

impl TableMsg {
    /// The replica-cell spec for `avp`, if it is hot in this table.
    pub fn hot_spec(&self, avp: AvpId) -> Option<&HotSpec> {
        self.hot
            .binary_search_by_key(&avp, |h| h.avp)
            .ok()
            .map(|i| &self.hot[i])
    }
}

/// Replica-cell placement of one hot pair (PanJoin-style sub-squares,
/// DESIGN.md §4h).
///
/// Documents carrying the pair are hashed into `replicas` buckets by id;
/// bucket `b` is sent to every cell `(i, j)` with `i == b` or `j == b`, so
/// any two buckets meet in exactly the cell `(min, max)` — a superset of
/// the single-partition co-location the base table would give, at
/// `replicas` sends per document instead of one partition holding the
/// whole group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotSpec {
    /// The hot attribute-value pair.
    pub avp: AvpId,
    /// Bucket count `r` (≥ 2).
    pub replicas: u32,
    /// Partition of each cell `(i, j)`, `i ≤ j < r`, in row-major order:
    /// cell `(i, j)` lives at index `i·(2r − i + 1)/2 + (j − i)`; length
    /// `r·(r+1)/2`.
    pub cells: Vec<u32>,
}

impl HotSpec {
    /// Number of cells a spec with `r` replicas has.
    pub fn cell_count(r: u32) -> usize {
        (r * (r + 1) / 2) as usize
    }

    /// Row-major index of cell `(i, j)`; requires `i ≤ j < replicas`.
    pub fn cell_index(&self, i: u32, j: u32) -> usize {
        debug_assert!(i <= j && j < self.replicas);
        (i * (2 * self.replicas - i + 1) / 2 + (j - i)) as usize
    }

    /// The bucket a document id hashes into.
    pub fn bucket_of(&self, doc_id: u64) -> u32 {
        (doc_id % self.replicas as u64) as u32
    }

    /// Partitions holding bucket `b`'s cells (row `b` + column `b`).
    pub fn bucket_partitions(&self, b: u32) -> impl Iterator<Item = u32> + '_ {
        (0..self.replicas).map(move |x| self.cells[self.cell_index(x.min(b), x.max(b))])
    }

    /// Bitmask over partitions for bucket `b` (valid for `m ≤ 64`).
    pub fn bucket_mask(&self, b: u32) -> u64 {
        self.bucket_partitions(b).fold(0u64, |m, p| m | (1u64 << p))
    }
}

impl std::fmt::Debug for Msg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Msg::Doc(d) => write!(f, "Doc({})", d.id()),
            Msg::LocalGroups {
                window,
                creator,
                groups,
                ..
            } => write!(
                f,
                "LocalGroups(w={window}, c={creator}, n={})",
                groups.len()
            ),
            Msg::Table(t) => write!(f, "Table(w={})", t.window),
            Msg::UpdateRequest(a) => write!(f, "UpdateRequest({a})"),
            Msg::Repartition => write!(f, "Repartition"),
            Msg::JoinStats {
                window,
                joiner,
                docs,
                pairs,
            } => write!(
                f,
                "JoinStats(w={window}, j={joiner}, docs={docs}, pairs={})",
                pairs.len()
            ),
        }
    }
}
