//! # ssj-core — the scale-out schema-free stream-join system
//!
//! Ties the substrates together into the paper's system:
//!
//! * [`config`] — all tunables with the paper's defaults (§VII-D);
//! * [`pipeline`] — the deterministic window-by-window driver used by the
//!   experiment harness (same component logic, bit-reproducible results);
//! * [`components`] / [`topology`] — the threaded Fig. 2 topology
//!   (JsonReader → PartitionCreators → Merger → Assigners → Joiners) on the
//!   Storm-like `ssj-runtime`;
//! * [`msg`] — the tuple type those components exchange.
//!
//! ```
//! use ssj_core::{Pipeline, StreamJoinConfig};
//! use ssj_json::{Dictionary, DocId, Document};
//!
//! let dict = Dictionary::new();
//! let docs: Vec<Document> = (0..20u64)
//!     .map(|i| Document::from_json(
//!         DocId(i),
//!         &format!(r#"{{"user":"u{}","sev":"{}"}}"#, i % 3, i % 2),
//!         &dict,
//!     ).unwrap())
//!     .collect();
//! let cfg = StreamJoinConfig::default()
//!     .with_m(2)
//!     .with_window_spec(ssj_core::WindowSpec::tumbling(10))
//!     .build()
//!     .unwrap();
//! let report = Pipeline::new(cfg, dict).run(docs);
//! assert_eq!(report.windows.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod components;
pub mod config;
pub mod msg;
pub mod pipeline;
pub mod spill;
pub mod stats;
pub mod topology;
pub mod window;
pub mod wire;

pub use config::{ConfigBuilder, ConfigError, SchedulerKind, StreamJoinConfig};
pub use msg::{HotSpec, Msg, TableMsg};
pub use pipeline::{ground_truth_pairs, Pipeline, PipelineReport, WindowReport};
pub use spill::{SpillSettings, SpillStore};
pub use ssj_join::{WindowError, WindowSpec};
pub use stats::{CsvSink, HumanSummarySink, JsonlSink, ReportSink};
pub use topology::{
    materialize_joins, placement_for, run_topology, run_topology_chaos, run_topology_distributed,
    run_topology_paced, topology_dot, DistRuntime, LatencyReport, TopologyRunReport,
};
pub use window::{slide_windows, windows, SegmentSpec, Windower};
pub use wire::MsgCodec;
