//! Out-of-core window state: LSM-tiered sealed segments (DESIGN.md §4i).
//!
//! When a pane/window seals and the configured memory budget is exceeded,
//! its interned document pool is serialized into an **immutable sorted
//! segment file** (varint record format built on the §4f wire primitives,
//! dictionary-epoch-stamped like socket frames), the heap arena is dropped,
//! and only a compact header stays resident: doc count, an AVP Bloom
//! summary, and the block offset index. Probes gate on the Bloom filter and
//! lazily read segment blocks back through a small direct-mapped block
//! cache; a background compaction task merges small runs into larger sorted
//! ones.
//!
//! Layout of a `.seg` file (all integers little-endian or LEB128 varints):
//!
//! ```text
//! magic u32 | version u16 | reserved u16 | dict epoch u64
//! doc_count varint | bloom_words varint | block_count varint
//! bloom words: u64 × bloom_words
//! block index: (docs varint, byte_len varint) × block_count
//! blocks: records back to back, ~4 KiB per block
//!   record: id varint (absolute for the first record of a block,
//!           delta from the previous record otherwise)
//!           pair_count varint | (attr varint, avp varint) × pair_count
//! ```
//!
//! Records are sorted by document id across the whole segment, so deltas
//! are non-negative and every block decodes independently of its siblings
//! (the block cache needs that). Segment files are owned by their resident
//! [`Segment`] header and unlinked on drop; `Arc<Segment>` sharing (pane
//! ring, snapshots, in-flight compactions) is what keeps a file alive.

use ssj_json::{AttrId, AvpId, DocId, Document, Pair};
use ssj_runtime::wire::{put_varint, Cursor};
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;

/// `"SSJG"`: distinguishes segment files from §4f socket frames (`SSJW`).
pub const SEGMENT_MAGIC: u32 = u32::from_le_bytes(*b"SSJG");
/// Bumped on any incompatible layout change.
pub const SEGMENT_VERSION: u16 = 1;
/// Target encoded size of one block; the unit of lazy read-back.
pub const BLOCK_TARGET_BYTES: usize = 4096;
/// A pane entry with at least this many spilled runs is handed to the
/// background compactor to be merged into one larger sorted run.
pub const COMPACT_MIN_RUNS: usize = 4;

/// Process-wide segment sequence: names files and keys the block cache.
static NEXT_SEGMENT_ID: AtomicU64 = AtomicU64::new(1);

/// Deployment-time spill settings, shared by every stateful task of a
/// topology. Built in `topology::build_custom` only when `mem_budget > 0`;
/// a budget of zero installs nothing at all.
#[derive(Debug, Clone)]
pub struct SpillSettings {
    /// Per-task resident-byte budget for sealed pane/window state.
    pub budget: u64,
    /// Directory segment files are created in.
    pub dir: PathBuf,
    /// Dictionary content fingerprint (`wire::dict_epoch`); stamped into
    /// every segment so stale files can never be decoded against a
    /// different interning epoch.
    pub epoch: u64,
}

impl SpillSettings {
    /// Sealed-chunk target size: budget/4 so the open pane tiers out in a
    /// handful of runs, capped to keep single segments manageable.
    pub fn chunk_target(&self) -> u64 {
        (self.budget / 4).clamp(1, 64 << 20)
    }
}

#[derive(Debug, Clone, Copy)]
struct BlockMeta {
    offset: u64,
    len: u32,
    docs: u32,
}

/// Resident header of one immutable sorted segment file.
///
/// Holds the open read handle, the Bloom summary, and the block index —
/// everything needed to gate and serve probes without touching the heap
/// docs again. Unlinks its file on drop.
#[derive(Debug)]
pub struct Segment {
    id: u64,
    path: PathBuf,
    file: File,
    epoch: u64,
    doc_count: usize,
    bytes: u64,
    bloom: Box<[u64]>,
    blocks: Vec<BlockMeta>,
}

impl Segment {
    /// Serialize `docs` into a new segment file under `dir` and return the
    /// resident header. Documents are sorted by id; the input order does
    /// not matter. The write path ends by re-opening the finished file
    /// through [`Segment::open`], so every spill also exercises the decode
    /// path symmetrically.
    pub fn write(
        dir: &Path,
        label: &str,
        epoch: u64,
        mut docs: Vec<Document>,
    ) -> io::Result<Segment> {
        docs.sort_by_key(|d| d.id());
        let id = NEXT_SEGMENT_ID.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("ssj-{}-{label}-{id}.seg", std::process::id()));

        let mut bloom = Bloom::with_capacity(docs.iter().map(|d| d.len()).sum());
        for d in &docs {
            for avp in d.avps() {
                bloom.insert(avp);
            }
        }

        // Encode blocks: ~BLOCK_TARGET_BYTES each, first record absolute.
        let mut blocks = Vec::new();
        let mut body = Vec::new();
        let mut block_start = 0usize;
        let mut block_docs = 0u32;
        let mut prev_id = 0u64;
        for d in &docs {
            if block_docs == 0 {
                put_varint(&mut body, d.id().0);
            } else {
                put_varint(&mut body, d.id().0 - prev_id);
            }
            prev_id = d.id().0;
            put_varint(&mut body, d.len() as u64);
            for p in d.pairs() {
                put_varint(&mut body, p.attr.0 as u64);
                put_varint(&mut body, p.avp.0 as u64);
            }
            block_docs += 1;
            if body.len() - block_start >= BLOCK_TARGET_BYTES {
                blocks.push((block_docs, (body.len() - block_start) as u32));
                block_start = body.len();
                block_docs = 0;
            }
        }
        if block_docs > 0 {
            blocks.push((block_docs, (body.len() - block_start) as u32));
        }

        let mut out = Vec::with_capacity(body.len() + bloom.words.len() * 8 + 64);
        out.extend_from_slice(&SEGMENT_MAGIC.to_le_bytes());
        out.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(&epoch.to_le_bytes());
        put_varint(&mut out, docs.len() as u64);
        put_varint(&mut out, bloom.words.len() as u64);
        put_varint(&mut out, blocks.len() as u64);
        for w in bloom.words.iter() {
            out.extend_from_slice(&w.to_le_bytes());
        }
        for &(docs, len) in &blocks {
            put_varint(&mut out, docs as u64);
            put_varint(&mut out, len as u64);
        }
        out.extend_from_slice(&body);

        let mut f = File::create(&path)?;
        f.write_all(&out)?;
        drop(f);

        Segment::open_with_id(id, path, epoch)
    }

    /// Open an existing segment file, parse its header, and verify the
    /// dictionary epoch. A mismatched epoch is rejected outright — decoding
    /// interned ids against a different dictionary would silently produce
    /// garbage documents.
    pub fn open(path: PathBuf, expect_epoch: u64) -> io::Result<Segment> {
        let id = NEXT_SEGMENT_ID.fetch_add(1, Ordering::Relaxed);
        Segment::open_with_id(id, path, expect_epoch)
    }

    fn open_with_id(id: u64, path: PathBuf, expect_epoch: u64) -> io::Result<Segment> {
        let bytes = fs::read(&path)?;
        let total = bytes.len() as u64;
        let mut c = Cursor::new(&bytes);
        let err = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
        let magic = c.u32_le().map_err(|_| err("segment truncated"))?;
        if magic != SEGMENT_MAGIC {
            return Err(err("bad segment magic"));
        }
        let version = c.u16_le().map_err(|_| err("segment truncated"))?;
        if version != SEGMENT_VERSION {
            return Err(err("unsupported segment version"));
        }
        let _reserved = c.u16_le().map_err(|_| err("segment truncated"))?;
        let epoch = c.u64_le().map_err(|_| err("segment truncated"))?;
        if epoch != expect_epoch {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("segment dictionary epoch {epoch:#x} != expected {expect_epoch:#x}"),
            ));
        }
        let doc_count = c.varint().map_err(|_| err("segment truncated"))? as usize;
        let bloom_words = c.varint().map_err(|_| err("segment truncated"))? as usize;
        let block_count = c.varint().map_err(|_| err("segment truncated"))? as usize;
        if bloom_words > (1 << 24) || block_count > (1 << 30) {
            return Err(err("segment header out of range"));
        }
        let mut bloom = Vec::with_capacity(bloom_words);
        for _ in 0..bloom_words {
            bloom.push(c.u64_le().map_err(|_| err("segment truncated"))?);
        }
        let mut blocks = Vec::with_capacity(block_count);
        let mut sizes = Vec::with_capacity(block_count);
        for _ in 0..block_count {
            let docs = c.varint().map_err(|_| err("segment truncated"))? as u32;
            let len = c.varint().map_err(|_| err("segment truncated"))? as u32;
            sizes.push((docs, len));
        }
        let mut offset = (bytes.len() - c.remaining()) as u64;
        for (docs, len) in sizes {
            blocks.push(BlockMeta { offset, len, docs });
            offset += len as u64;
        }
        if offset != total {
            return Err(err("segment body length mismatch"));
        }
        let file = File::open(&path)?;
        Ok(Segment {
            id,
            path,
            file,
            epoch,
            doc_count,
            bytes: total,
            bloom: bloom.into_boxed_slice(),
            blocks,
        })
    }

    /// Unique in-process segment id (block-cache key component).
    #[inline]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Dictionary epoch the segment was stamped with.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Documents stored in the segment.
    #[inline]
    pub fn doc_count(&self) -> usize {
        self.doc_count
    }

    /// On-disk size in bytes (what `spill_bytes` accounts).
    #[inline]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of read-back blocks.
    #[inline]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Resident footprint of the header (Bloom words + block index).
    pub fn header_bytes(&self) -> usize {
        std::mem::size_of::<Segment>()
            + self.bloom.len() * 8
            + self.blocks.len() * std::mem::size_of::<BlockMeta>()
    }

    /// Bloom gate: can this segment possibly hold a join partner for
    /// `probe`? Two documents join only if they share at least one
    /// identical attribute-value pair, so a probe whose AVPs all miss the
    /// summary cannot match anything here. Sound (never skips a real
    /// partner); false positives just cost a block read.
    pub fn may_contain_any(&self, probe: &Document) -> bool {
        probe.avps().any(|avp| self.bloom_contains(avp))
    }

    fn bloom_contains(&self, avp: AvpId) -> bool {
        let mask = (self.bloom.len() as u64 * 64) - 1;
        let (h1, h2) = bloom_hashes(avp);
        for h in [h1, h2] {
            let bit = h & mask;
            if self.bloom[(bit / 64) as usize] & (1 << (bit % 64)) == 0 {
                return false;
            }
        }
        true
    }

    /// Decode one block from disk.
    pub fn read_block(&self, block: usize) -> io::Result<Vec<Document>> {
        let meta = self.blocks[block];
        let mut buf = vec![0u8; meta.len as usize];
        self.read_at(meta.offset, &mut buf)?;
        let err = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
        let mut c = Cursor::new(&buf);
        let mut docs = Vec::with_capacity(meta.docs as usize);
        let mut prev_id = 0u64;
        for i in 0..meta.docs {
            let raw = c.varint().map_err(|_| err("segment block truncated"))?;
            let id = if i == 0 { raw } else { prev_id + raw };
            prev_id = id;
            let npairs = c.varint().map_err(|_| err("segment block truncated"))? as usize;
            if npairs > meta.len as usize {
                return Err(err("segment record pair count out of range"));
            }
            let mut pairs = Vec::with_capacity(npairs);
            for _ in 0..npairs {
                let attr = c.varint().map_err(|_| err("segment block truncated"))?;
                let avp = c.varint().map_err(|_| err("segment block truncated"))?;
                pairs.push(Pair {
                    attr: AttrId(attr as u32),
                    avp: AvpId(avp as u32),
                });
            }
            docs.push(Document::from_pairs(DocId(id), pairs));
        }
        c.finish()
            .map_err(|_| err("segment block trailing bytes"))?;
        Ok(docs)
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(buf, offset)
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let mut f = File::open(&self.path)?;
            f.seek(SeekFrom::Start(offset))?;
            f.read_exact(buf)
        }
    }

    /// Find every stored document that joins with `probe` (excluding
    /// `probe` itself), appending partner ids to `out`. Blocks come back
    /// through `cache`; returns the number of blocks actually decoded from
    /// disk (0 when everything was cached). Callers should gate on
    /// [`Segment::may_contain_any`] first.
    ///
    /// Exactness: `Document::joins_with` is the very predicate the FP-tree
    /// probe implements (`fpjoin` proves `probe == pairwise definition`),
    /// so a spilled linear scan returns exactly the partner set a resident
    /// `fp_probe_into` would.
    pub fn probe_into(
        &self,
        probe: &Document,
        cache: &mut BlockCache,
        out: &mut Vec<DocId>,
    ) -> io::Result<u64> {
        let mut disk_reads = 0u64;
        for block in 0..self.blocks.len() {
            let (docs, from_disk) = cache.get(self, block)?;
            disk_reads += from_disk as u64;
            for d in docs.iter() {
                if d.id() != probe.id() && d.joins_with(probe) {
                    out.push(d.id());
                }
            }
        }
        Ok(disk_reads)
    }

    /// Read the whole segment back into memory, in id order.
    pub fn read_all(&self) -> io::Result<Vec<Document>> {
        let mut docs = Vec::with_capacity(self.doc_count);
        for block in 0..self.blocks.len() {
            docs.extend(self.read_block(block)?);
        }
        Ok(docs)
    }
}

impl Drop for Segment {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

fn bloom_hashes(avp: AvpId) -> (u64, u64) {
    // Two cheap independent mixes of the 32-bit id (splitmix-style).
    let mut x = avp.0 as u64 + 0x9e37_79b9_7f4a_7c15;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    let h1 = x ^ (x >> 31);
    let h2 = h1.rotate_left(32) | 1;
    (h1, h2)
}

struct Bloom {
    words: Vec<u64>,
}

impl Bloom {
    /// Size for ~16 bits per expected element (2 probes → low single-digit
    /// percent false-positive rate), clamped to keep headers compact.
    fn with_capacity(elems: usize) -> Bloom {
        let words = (elems / 4).next_power_of_two().clamp(8, 1 << 16);
        Bloom {
            words: vec![0u64; words],
        }
    }

    fn insert(&mut self, avp: AvpId) {
        let mask = (self.words.len() as u64 * 64) - 1;
        let (h1, h2) = bloom_hashes(avp);
        for h in [h1, h2] {
            let bit = h & mask;
            self.words[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }
}

/// Small direct-mapped cache of decoded segment blocks, keyed by
/// `(segment id, block)`. One per stateful task (bolts are
/// single-threaded), so plain `&mut` access — no locks on the probe path.
#[derive(Debug)]
pub struct BlockCache {
    slots: Box<[Option<CacheSlot>]>,
    hits: u64,
    misses: u64,
}

#[derive(Debug)]
struct CacheSlot {
    seg: u64,
    block: u32,
    docs: Arc<Vec<Document>>,
}

impl BlockCache {
    /// `slots` is rounded up to a power of two (minimum 8).
    pub fn new(slots: usize) -> BlockCache {
        let n = slots.next_power_of_two().max(8);
        BlockCache {
            slots: (0..n).map(|_| None).collect(),
            hits: 0,
            misses: 0,
        }
    }

    /// Fetch a decoded block, reading it from disk on a miss. The second
    /// tuple element is true when the block came from disk.
    #[allow(clippy::type_complexity)]
    pub fn get(&mut self, seg: &Segment, block: usize) -> io::Result<(Arc<Vec<Document>>, bool)> {
        let key_seg = seg.id();
        let key_block = block as u32;
        let idx = ((key_seg
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(key_block as u64))
            % self.slots.len() as u64) as usize;
        if let Some(slot) = &self.slots[idx] {
            if slot.seg == key_seg && slot.block == key_block {
                self.hits += 1;
                return Ok((Arc::clone(&slot.docs), false));
            }
        }
        self.misses += 1;
        let docs = Arc::new(seg.read_block(block)?);
        self.slots[idx] = Some(CacheSlot {
            seg: key_seg,
            block: key_block,
            docs: Arc::clone(&docs),
        });
        Ok((docs, true))
    }

    /// Drain the hit/miss counters (mirrored into task instruments).
    pub fn take_counters(&mut self) -> (u64, u64) {
        let out = (self.hits, self.misses);
        self.hits = 0;
        self.misses = 0;
        out
    }

    /// Drop every cached block that belongs to `seg_ids` (eviction on
    /// segment retirement keeps dead Arcs from pinning memory).
    pub fn evict_segments(&mut self, seg_ids: &[u64]) {
        for slot in self.slots.iter_mut() {
            if slot.as_ref().is_some_and(|s| seg_ids.contains(&s.seg)) {
                *slot = None;
            }
        }
    }
}

struct CompactRequest {
    inputs: Vec<Arc<Segment>>,
    dir: PathBuf,
    label: String,
    epoch: u64,
}

/// Outcome of one background merge: the ids of the consumed runs and the
/// merged replacement segment (already an `Arc` so the caller can splice it
/// straight into a pane entry).
pub struct CompactResult {
    /// Segment ids the merge consumed.
    pub input_ids: Vec<u64>,
    /// The merged sorted run.
    pub merged: io::Result<Arc<Segment>>,
}

/// Background compaction task: merges batches of small sorted runs into
/// one larger sorted run off the hot path. One thread per [`SpillStore`],
/// started lazily on the first request; requests and results flow over
/// channels, so the bolt never blocks on a merge.
struct Compactor {
    tx: Sender<CompactRequest>,
    rx: Receiver<CompactResult>,
    handle: Option<JoinHandle<()>>,
}

impl Compactor {
    fn start() -> Compactor {
        let (tx, req_rx) = channel::<CompactRequest>();
        let (res_tx, rx) = channel::<CompactResult>();
        let handle = std::thread::Builder::new()
            .name("ssj-compactor".into())
            .spawn(move || {
                while let Ok(req) = req_rx.recv() {
                    let input_ids = req.inputs.iter().map(|s| s.id()).collect();
                    let merged = compact(&req);
                    if res_tx.send(CompactResult { input_ids, merged }).is_err() {
                        break;
                    }
                }
            })
            .expect("spawn compactor thread");
        Compactor {
            tx,
            rx,
            handle: Some(handle),
        }
    }
}

impl Drop for Compactor {
    fn drop(&mut self) {
        // Closing the request channel ends the loop; join so in-flight
        // merges finish writing (their segments drop and unlink cleanly).
        let (tx, _) = channel();
        drop(std::mem::replace(&mut self.tx, tx));
        while self.rx.try_recv().is_ok() {}
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn compact(req: &CompactRequest) -> io::Result<Arc<Segment>> {
    let mut docs = Vec::with_capacity(req.inputs.iter().map(|s| s.doc_count()).sum());
    for seg in &req.inputs {
        docs.extend(seg.read_all()?);
    }
    // Runs from one pane are disjoint; Segment::write re-sorts by id.
    Ok(Arc::new(Segment::write(
        &req.dir, &req.label, req.epoch, docs,
    )?))
}

/// Per-task spill machinery: settings, block cache, and the lazy
/// background compactor. Owned by a stateful bolt task; created only when
/// the topology runs with a non-zero memory budget.
pub struct SpillStore {
    settings: Arc<SpillSettings>,
    label: String,
    /// Probe-side block cache (public: bolts drain its counters).
    pub cache: BlockCache,
    compactor: Option<Compactor>,
    in_flight: usize,
}

impl SpillStore {
    /// `label` names the owning task (e.g. `j3`) inside segment file names.
    pub fn new(settings: Arc<SpillSettings>, label: impl Into<String>) -> SpillStore {
        SpillStore {
            settings,
            label: label.into(),
            cache: BlockCache::new(64),
            compactor: None,
            in_flight: 0,
        }
    }

    /// The deployment-wide settings this store was built from.
    pub fn settings(&self) -> &SpillSettings {
        &self.settings
    }

    /// Serialize `docs` into a fresh segment under the configured dir.
    pub fn write_segment(&self, docs: Vec<Document>) -> io::Result<Arc<Segment>> {
        Segment::write(&self.settings.dir, &self.label, self.settings.epoch, docs).map(Arc::new)
    }

    /// Hand a batch of small runs to the background compactor. Starts the
    /// compactor thread on first use.
    pub fn request_compaction(&mut self, inputs: Vec<Arc<Segment>>) {
        let compactor = self.compactor.get_or_insert_with(Compactor::start);
        let req = CompactRequest {
            inputs,
            dir: self.settings.dir.clone(),
            label: self.label.clone(),
            epoch: self.settings.epoch,
        };
        if compactor.tx.send(req).is_ok() {
            self.in_flight += 1;
        }
    }

    /// Non-blocking poll for a finished merge.
    pub fn poll_compaction(&mut self) -> Option<CompactResult> {
        let compactor = self.compactor.as_ref()?;
        match compactor.rx.try_recv() {
            Ok(res) => {
                self.in_flight -= 1;
                Some(res)
            }
            Err(TryRecvError::Empty | TryRecvError::Disconnected) => None,
        }
    }

    /// Number of compaction requests not yet polled back.
    pub fn compactions_in_flight(&self) -> usize {
        self.in_flight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(id: u64, pairs: &[(u32, u32)]) -> Document {
        Document::from_pairs(
            DocId(id),
            pairs
                .iter()
                .map(|&(a, v)| Pair {
                    attr: AttrId(a),
                    avp: AvpId(v),
                })
                .collect(),
        )
    }

    fn docs_fixture(n: u64) -> Vec<Document> {
        (0..n)
            .map(|i| {
                let a = (i % 7) as u32;
                let v = (i % 13) as u32;
                doc(i, &[(a, v), (a + 7, v + 13), (a + 20, (i % 3) as u32 + 40)])
            })
            .collect()
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ssj-spill-test-{}-{tag}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn segment_roundtrip_sorted() {
        let dir = tmpdir("roundtrip");
        let mut docs = docs_fixture(2000);
        docs.reverse(); // input order must not matter
        let seg = Segment::write(&dir, "t0", 0xabcd, docs).unwrap();
        assert_eq!(seg.doc_count(), 2000);
        assert_eq!(seg.epoch(), 0xabcd);
        assert!(seg.block_count() > 1, "fixture should span blocks");
        let back = seg.read_all().unwrap();
        assert_eq!(
            back,
            docs_fixture(2000),
            "read-back is id-sorted and lossless"
        );
        let path = seg.path.clone();
        assert!(path.exists());
        drop(seg);
        assert!(!path.exists(), "segment file unlinked on drop");
    }

    #[test]
    fn epoch_mismatch_rejected() {
        let dir = tmpdir("epoch");
        let seg = Segment::write(&dir, "t0", 7, docs_fixture(10)).unwrap();
        // Keep the file alive past the first header's drop.
        let path = seg.path.clone();
        let copy = path.with_extension("copy.seg");
        fs::copy(&path, &copy).unwrap();
        let err = Segment::open(copy.clone(), 8).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("epoch"), "{err}");
        let ok = Segment::open(copy, 7).unwrap();
        assert_eq!(ok.doc_count(), 10);
    }

    #[test]
    fn bloom_gate_is_sound() {
        let dir = tmpdir("bloom");
        let docs = docs_fixture(200);
        let seg = Segment::write(&dir, "t0", 0, docs.clone()).unwrap();
        // Every stored document must pass its own gate (no false negatives).
        for d in &docs {
            assert!(seg.may_contain_any(d));
        }
        // A document sharing no AVP universe at all overwhelmingly misses.
        let alien = doc(9999, &[(1000, 100_000)]);
        // Not guaranteed false (Bloom), but probing must still be exact:
        let mut cache = BlockCache::new(8);
        let mut out = Vec::new();
        seg.probe_into(&alien, &mut cache, &mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn probe_matches_pairwise_definition() {
        let dir = tmpdir("probe");
        let docs = docs_fixture(300);
        let seg = Segment::write(&dir, "t0", 0, docs.clone()).unwrap();
        let mut cache = BlockCache::new(16);
        let probe = &docs[17];
        let mut out = Vec::new();
        if seg.may_contain_any(probe) {
            seg.probe_into(probe, &mut cache, &mut out).unwrap();
        }
        let mut expect: Vec<DocId> = docs
            .iter()
            .filter(|o| o.id() != probe.id() && o.joins_with(probe))
            .map(|o| o.id())
            .collect();
        out.sort();
        expect.sort();
        assert_eq!(out, expect);
        assert!(!expect.is_empty(), "fixture should have partners");
    }

    #[test]
    fn block_cache_hits_and_evicts() {
        let dir = tmpdir("cache");
        let seg = Segment::write(&dir, "t0", 0, docs_fixture(400)).unwrap();
        let mut cache = BlockCache::new(64);
        let (_, disk) = cache.get(&seg, 0).unwrap();
        assert!(disk);
        let (_, disk) = cache.get(&seg, 0).unwrap();
        assert!(!disk, "second fetch served from cache");
        let (hits, misses) = cache.take_counters();
        assert_eq!((hits, misses), (1, 1));
        cache.evict_segments(&[seg.id()]);
        let (_, disk) = cache.get(&seg, 0).unwrap();
        assert!(disk, "evicted block re-read from disk");
    }

    #[test]
    fn compactor_merges_runs() {
        let dir = tmpdir("compact");
        let settings = Arc::new(SpillSettings {
            budget: 1 << 20,
            dir: dir.clone(),
            epoch: 42,
        });
        let mut store = SpillStore::new(settings, "t9");
        let a = store.write_segment(docs_fixture(100)).unwrap();
        let b = store
            .write_segment(
                (100..200)
                    .map(|i| docs_fixture(200)[i as usize].clone())
                    .collect(),
            )
            .unwrap();
        store.request_compaction(vec![Arc::clone(&a), Arc::clone(&b)]);
        assert_eq!(store.compactions_in_flight(), 1);
        let res = loop {
            if let Some(res) = store.poll_compaction() {
                break res;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        };
        assert_eq!(store.compactions_in_flight(), 0);
        let mut ids = res.input_ids.clone();
        ids.sort();
        let mut expect = vec![a.id(), b.id()];
        expect.sort();
        assert_eq!(ids, expect);
        let merged = res.merged.unwrap();
        assert_eq!(merged.doc_count(), 200);
        assert_eq!(merged.epoch(), 42);
        assert_eq!(merged.read_all().unwrap(), docs_fixture(200));
    }
}
