//! Window segmentation of a document stream.
//!
//! The paper uses time-based tumbling windows ("the daily produced amount as
//! the number of documents produced every 3 minutes", §VII-B); the harness
//! maps those to document counts. Two layers of policy live here:
//!
//! * [`WindowSpec`] (the shared spec from `ssj-join`) — count-based tumbling
//!   or pane-chained sliding windows. [`Windower::new`] consumes it and
//!   yields one window per *slide*: for tumbling, disjoint chunks; for
//!   sliding, each pane boundary yields the full window (the newest
//!   `panes_per_window` panes, overlapping with its predecessor).
//! * [`SegmentSpec`] — stream segmentation for the batch harness:
//!   [`SegmentSpec::Count`] closes after `n` documents,
//!   [`SegmentSpec::ByAttribute`] closes when the integer value of a
//!   designated attribute crosses a multiple of `width` (e.g. an
//!   epoch-seconds field with `width = 180` gives the paper's 3-minute
//!   windows). Documents lacking the attribute stay in the current window.

use ssj_join::WindowSpec;
use ssj_json::{AttrId, Dictionary, Document, Scalar};
use std::collections::VecDeque;

/// Stream segmentation policy for the batch harness (CLI `--window-by`).
#[derive(Debug, Clone)]
pub enum SegmentSpec {
    /// Close after this many documents.
    Count(usize),
    /// Close when `attr`'s integer value enters the next `width`-sized
    /// bucket.
    ByAttribute {
        /// Attribute holding the event time (or any monotone integer).
        attr: String,
        /// Bucket width in the attribute's unit.
        width: i64,
    },
}

/// Iterator adapter producing whole windows from a document stream.
pub struct Windower<I> {
    stream: I,
    spec: Spec,
    buf: Vec<Document>,
    done: bool,
}

enum Spec {
    Count(usize),
    /// Pane-chained sliding: emit the full window at every pane boundary;
    /// `ring` holds the newest `panes - 1` completed panes.
    Panes {
        pane: usize,
        panes: usize,
        ring: VecDeque<Vec<Document>>,
    },
    ByAttribute {
        attr: AttrId,
        width: i64,
        current: Option<i64>,
    },
}

impl<I: Iterator<Item = Document>> Windower<I> {
    /// Window `stream` per the shared [`WindowSpec`]: tumbling chunks, or —
    /// for sliding specs — one overlapping window per pane boundary.
    ///
    /// # Panics
    /// When `spec` fails [`WindowSpec::validate`].
    pub fn new(stream: I, spec: WindowSpec, _dict: &Dictionary) -> Self {
        spec.validate().expect("invalid WindowSpec");
        let spec = if spec.is_sliding() {
            Spec::Panes {
                pane: spec.pane_docs(),
                panes: spec.panes_per_window(),
                ring: VecDeque::new(),
            }
        } else {
            Spec::Count(spec.pane_docs())
        };
        Windower {
            stream,
            spec,
            buf: Vec::new(),
            done: false,
        }
    }

    /// Segment `stream` per `spec`, interning the attribute through `dict`.
    ///
    /// # Panics
    /// When the count or width is zero.
    pub fn segmented(stream: I, spec: SegmentSpec, dict: &Dictionary) -> Self {
        let spec = match spec {
            SegmentSpec::Count(n) => {
                assert!(n > 0, "window size must be positive");
                Spec::Count(n)
            }
            SegmentSpec::ByAttribute { attr, width } => {
                assert!(width > 0, "window width must be positive");
                Spec::ByAttribute {
                    attr: dict.intern_attr(&attr),
                    width,
                    current: None,
                }
            }
        };
        Windower {
            stream,
            spec,
            buf: Vec::new(),
            done: false,
        }
    }

    fn bucket_of(doc: &Document, attr: AttrId, width: i64, dict: &Dictionary) -> Option<i64> {
        let pair = doc.pair_for_attr(attr)?;
        match dict.avp_scalar(pair.avp) {
            Scalar::Int(v) => Some(v.div_euclid(width)),
            _ => None,
        }
    }
}

/// Segment an entire stream eagerly (convenience for tests/harness).
pub fn windows(
    stream: impl IntoIterator<Item = Document>,
    spec: SegmentSpec,
    dict: &Dictionary,
) -> Vec<Vec<Document>> {
    drain(Windower::segmented(stream.into_iter(), spec, dict), dict)
}

/// Eagerly produce every per-slide window of `stream` under the shared
/// [`WindowSpec`] — for sliding specs the windows overlap, pane-quantized
/// exactly like the runtime's Joiner ring.
pub fn slide_windows(
    stream: impl IntoIterator<Item = Document>,
    spec: WindowSpec,
    dict: &Dictionary,
) -> Vec<Vec<Document>> {
    drain(Windower::new(stream.into_iter(), spec, dict), dict)
}

fn drain<I: Iterator<Item = Document>>(
    inner: Windower<I>,
    dict: &Dictionary,
) -> Vec<Vec<Document>> {
    let mut out = Vec::new();
    let mut w = WindowerOwned {
        inner,
        dict: dict.clone(),
    };
    while let Some(win) = w.next_window() {
        out.push(win);
    }
    out
}

struct WindowerOwned<I: Iterator<Item = Document>> {
    inner: Windower<I>,
    dict: Dictionary,
}

impl<I: Iterator<Item = Document>> WindowerOwned<I> {
    fn next_window(&mut self) -> Option<Vec<Document>> {
        let w = &mut self.inner;
        if w.done {
            return None;
        }
        loop {
            match w.stream.next() {
                None => {
                    w.done = true;
                    if w.buf.is_empty() {
                        return None;
                    }
                    // A trailing partial pane still closes a (partial)
                    // window spanning the retained ring.
                    if let Spec::Panes { ring, .. } = &mut w.spec {
                        let mut win: Vec<Document> = ring.iter().flatten().cloned().collect();
                        win.append(&mut w.buf);
                        return Some(win);
                    }
                    return Some(std::mem::take(&mut w.buf));
                }
                Some(doc) => match &mut w.spec {
                    Spec::Count(n) => {
                        w.buf.push(doc);
                        if w.buf.len() == *n {
                            return Some(std::mem::take(&mut w.buf));
                        }
                    }
                    Spec::Panes { pane, panes, ring } => {
                        w.buf.push(doc);
                        if w.buf.len() == *pane {
                            let closed = std::mem::take(&mut w.buf);
                            let mut win: Vec<Document> = ring.iter().flatten().cloned().collect();
                            win.extend(closed.iter().cloned());
                            ring.push_back(closed);
                            while ring.len() >= *panes {
                                ring.pop_front();
                            }
                            return Some(win);
                        }
                    }
                    Spec::ByAttribute {
                        attr,
                        width,
                        current,
                    } => {
                        let bucket = Windower::<I>::bucket_of(&doc, *attr, *width, &self.dict);
                        match (bucket, *current) {
                            (Some(b), Some(c)) if b != c => {
                                // Boundary crossed: close the window, start
                                // the next with this document.
                                *current = Some(b);
                                let closed = std::mem::take(&mut w.buf);
                                w.buf.push(doc);
                                if !closed.is_empty() {
                                    return Some(closed);
                                }
                            }
                            (Some(b), _) => {
                                *current = Some(b);
                                w.buf.push(doc);
                            }
                            // No usable event time: current window.
                            (None, _) => w.buf.push(doc),
                        }
                    }
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_json::DocId;

    fn doc(dict: &Dictionary, id: u64, ts: Option<i64>) -> Document {
        let json = match ts {
            Some(t) => format!(r#"{{"ts":{t},"v":{id}}}"#),
            None => format!(r#"{{"v":{id}}}"#),
        };
        Document::from_json(DocId(id), &json, dict).unwrap()
    }

    #[test]
    fn count_windows_chunk_evenly() {
        let dict = Dictionary::new();
        let docs: Vec<Document> = (0..25).map(|i| doc(&dict, i, None)).collect();
        let ws = windows(docs, SegmentSpec::Count(10), &dict);
        let sizes: Vec<usize> = ws.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![10, 10, 5]);
    }

    #[test]
    fn tumbling_spec_matches_count_segmentation() {
        let dict = Dictionary::new();
        let docs: Vec<Document> = (0..25).map(|i| doc(&dict, i, None)).collect();
        let ws = slide_windows(docs, WindowSpec::tumbling(10), &dict);
        let sizes: Vec<usize> = ws.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![10, 10, 5]);
    }

    #[test]
    fn sliding_spec_yields_overlapping_pane_windows() {
        let dict = Dictionary::new();
        let docs: Vec<Document> = (0..10).map(|i| doc(&dict, i, None)).collect();
        // Panes of 2, window of 3 panes: slide k spans panes [k-2, k].
        let ws = slide_windows(docs, WindowSpec::sliding(2, 3), &dict);
        let ids: Vec<Vec<u64>> = ws
            .iter()
            .map(|w| w.iter().map(|d| d.id().0).collect())
            .collect();
        assert_eq!(
            ids,
            vec![
                vec![0, 1],
                vec![0, 1, 2, 3],
                vec![0, 1, 2, 3, 4, 5],
                vec![2, 3, 4, 5, 6, 7],
                vec![4, 5, 6, 7, 8, 9],
            ]
        );
    }

    #[test]
    fn attribute_windows_split_on_bucket_boundaries() {
        let dict = Dictionary::new();
        // ts 0,50,170 | 185,200 | 400 with width 180.
        let ts = [0i64, 50, 170, 185, 200, 400];
        let docs: Vec<Document> = ts
            .iter()
            .enumerate()
            .map(|(i, &t)| doc(&dict, i as u64, Some(t)))
            .collect();
        let ws = windows(
            docs,
            SegmentSpec::ByAttribute {
                attr: "ts".into(),
                width: 180,
            },
            &dict,
        );
        let sizes: Vec<usize> = ws.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![3, 2, 1]);
    }

    #[test]
    fn documents_without_event_time_stay_in_current_window() {
        let dict = Dictionary::new();
        let docs = vec![
            doc(&dict, 0, Some(0)),
            doc(&dict, 1, None),
            doc(&dict, 2, Some(10)),
            doc(&dict, 3, Some(200)),
        ];
        let ws = windows(
            docs,
            SegmentSpec::ByAttribute {
                attr: "ts".into(),
                width: 100,
            },
            &dict,
        );
        let sizes: Vec<usize> = ws.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![3, 1]);
    }

    #[test]
    fn negative_event_times_bucket_correctly() {
        let dict = Dictionary::new();
        // div_euclid: -50 → bucket -1, 50 → bucket 0.
        let docs = vec![doc(&dict, 0, Some(-50)), doc(&dict, 1, Some(50))];
        let ws = windows(
            docs,
            SegmentSpec::ByAttribute {
                attr: "ts".into(),
                width: 100,
            },
            &dict,
        );
        assert_eq!(ws.len(), 2);
    }

    #[test]
    fn empty_stream_yields_no_windows() {
        let dict = Dictionary::new();
        let ws = windows(Vec::new(), SegmentSpec::Count(5), &dict);
        assert!(ws.is_empty());
    }
}
