//! Binary wire codec for [`Msg`] — symbol-interned serialization against
//! epoch-versioned dictionary snapshots (DESIGN.md §4f).
//!
//! Every worker process of a group builds the same [`Dictionary`] at deploy
//! time (the dataset and interning order are deterministic), so steady-state
//! frames carry dense symbol ids instead of strings. The codec snapshots the
//! dictionary's extent — the *watermarks* — at construction:
//!
//! * ids below the watermark travel as a bare varint (`id << 1`, even),
//!   trusting the peer's identical snapshot to resolve them;
//! * ids interned *after* the snapshot (the stream grows the dictionary as
//!   it runs) travel **inline** and self-describing (odd marker followed by
//!   the attribute name / scalar value), and the decoder re-interns them —
//!   both sides converge on "equal id ⇔ equal (attribute, value)" without
//!   any cross-process dictionary synchronization.
//!
//! The epoch is a fingerprint of the full snapshot content. It rides in the
//! handshake and in every Data/Batch frame; a disagreement (different
//! dataset, different interning order) is rejected at decode time as
//! [`WireError::EpochMismatch`] instead of silently joining on wrong pairs.

use crate::msg::{Msg, TableMsg};
use ssj_json::{AttrId, AvpId, Dictionary, DocId, Document, Pair, Scalar};
use ssj_partition::{AssociationGroup, Expansion, PartitionTable};
use ssj_runtime::wire::{fnv1a, put_str, put_varint, put_zigzag, Cursor, WireError};
use ssj_runtime::WireCodec;
use std::sync::Arc;

/// Message-kind tags (first byte of every encoded [`Msg`]).
const TAG_DOC: u8 = 0;
const TAG_LOCAL_GROUPS: u8 = 1;
const TAG_TABLE: u8 = 2;
const TAG_UPDATE_REQUEST: u8 = 3;
const TAG_REPARTITION: u8 = 4;
const TAG_JOIN_STATS: u8 = 5;

/// Scalar tags (match [`Scalar`]'s hashing discriminants).
const SCALAR_NULL: u8 = 0;
const SCALAR_BOOL: u8 = 1;
const SCALAR_INT: u8 = 2;
const SCALAR_FLOAT: u8 = 3;
const SCALAR_STR: u8 = 4;

/// The [`Msg`] wire codec: one per process, shared by every socket link.
///
/// Holds the process's dictionary plus the watermarks and epoch of the
/// deploy-time snapshot. Construct it *after* the dictionary is fully
/// seeded and before the topology starts; all group members must construct
/// it over identical dictionary content (the handshake enforces this by
/// comparing epochs).
pub struct MsgCodec {
    dict: Dictionary,
    /// Attribute ids below this travel as bare symbols.
    attr_watermark: u32,
    /// Pair ids below this travel as bare symbols.
    avp_watermark: u32,
    epoch: u64,
}

impl MsgCodec {
    /// Snapshot `dict` and fingerprint its content into the codec's epoch.
    pub fn new(dict: &Dictionary) -> MsgCodec {
        let attr_watermark = dict.attr_count() as u32;
        let avp_watermark = dict.avp_count() as u32;
        MsgCodec {
            epoch: dict_epoch(dict),
            dict: dict.clone(),
            attr_watermark,
            avp_watermark,
        }
    }

    fn put_attr(&self, out: &mut Vec<u8>, attr: AttrId) {
        if attr.0 < self.attr_watermark {
            put_varint(out, (attr.0 as u64) << 1);
        } else {
            // Interned after the snapshot: ship the name, peer re-interns.
            put_varint(out, 1);
            put_str(out, &self.dict.attr_name(attr));
        }
    }

    fn get_attr(&self, c: &mut Cursor) -> Result<AttrId, WireError> {
        let v = c.varint()?;
        if v & 1 == 0 {
            let id = v >> 1;
            if id >= self.attr_watermark as u64 {
                return Err(WireError::BadSymbol(id));
            }
            Ok(AttrId(id as u32))
        } else {
            Ok(self.dict.intern_attr(c.str()?))
        }
    }

    fn put_scalar(&self, out: &mut Vec<u8>, s: &Scalar) {
        match s {
            Scalar::Null => out.push(SCALAR_NULL),
            Scalar::Bool(b) => {
                out.push(SCALAR_BOOL);
                out.push(*b as u8);
            }
            Scalar::Int(i) => {
                out.push(SCALAR_INT);
                put_zigzag(out, *i);
            }
            Scalar::Float(f) => {
                out.push(SCALAR_FLOAT);
                out.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            Scalar::Str(s) => {
                out.push(SCALAR_STR);
                put_str(out, s);
            }
        }
    }

    fn get_scalar(&self, c: &mut Cursor) -> Result<Scalar, WireError> {
        Ok(match c.u8()? {
            SCALAR_NULL => Scalar::Null,
            SCALAR_BOOL => Scalar::Bool(c.u8()? != 0),
            SCALAR_INT => Scalar::Int(c.zigzag()?),
            SCALAR_FLOAT => Scalar::Float(f64::from_bits(c.u64_le()?)),
            SCALAR_STR => Scalar::Str(c.str()?.to_owned()),
            t => return Err(WireError::BadTag(t)),
        })
    }

    fn put_avp(&self, out: &mut Vec<u8>, avp: AvpId) {
        if avp.0 < self.avp_watermark {
            put_varint(out, (avp.0 as u64) << 1);
        } else {
            // Post-snapshot pair: self-describing (attribute + value).
            put_varint(out, 1);
            self.put_attr(out, self.dict.avp_attr(avp));
            self.put_scalar(out, &self.dict.avp_scalar(avp));
        }
    }

    /// Decode a pair symbol into a full [`Pair`] (attr resolved locally).
    fn get_pair(&self, c: &mut Cursor) -> Result<Pair, WireError> {
        let v = c.varint()?;
        if v & 1 == 0 {
            let id = v >> 1;
            if id >= self.avp_watermark as u64 {
                return Err(WireError::BadSymbol(id));
            }
            let avp = AvpId(id as u32);
            Ok(Pair {
                attr: self.dict.avp_attr(avp),
                avp,
            })
        } else {
            let attr = self.get_attr(c)?;
            let scalar = self.get_scalar(c)?;
            Ok(self.dict.intern_avp(attr, scalar))
        }
    }

    fn put_expansion(&self, out: &mut Vec<u8>, e: &Option<Expansion>) {
        match e {
            None => out.push(0),
            Some(e) => {
                out.push(1);
                put_varint(out, e.chain.len() as u64);
                for &a in &e.chain {
                    self.put_attr(out, a);
                }
                self.put_attr(out, e.synth_attr);
                out.extend_from_slice(&e.pna.to_bits().to_le_bytes());
            }
        }
    }

    fn get_expansion(&self, c: &mut Cursor) -> Result<Option<Expansion>, WireError> {
        match c.u8()? {
            0 => Ok(None),
            1 => {
                let n = c.varint()? as usize;
                if n > c.remaining() {
                    return Err(WireError::Truncated);
                }
                let mut chain = Vec::with_capacity(n);
                for _ in 0..n {
                    chain.push(self.get_attr(c)?);
                }
                let synth_attr = self.get_attr(c)?;
                let pna = f64::from_bits(c.u64_le()?);
                Ok(Some(Expansion {
                    chain,
                    synth_attr,
                    pna,
                }))
            }
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl WireCodec<Msg> for MsgCodec {
    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn encode(&self, msg: &Msg, out: &mut Vec<u8>) {
        match msg {
            Msg::Doc(d) => {
                out.push(TAG_DOC);
                put_varint(out, d.id().0);
                put_varint(out, d.len() as u64);
                for p in d.pairs() {
                    self.put_avp(out, p.avp);
                }
            }
            Msg::LocalGroups {
                window,
                creator,
                groups,
                expansion,
                hot,
            } => {
                out.push(TAG_LOCAL_GROUPS);
                put_varint(out, *window);
                put_varint(out, *creator as u64);
                put_varint(out, groups.len() as u64);
                for g in groups {
                    put_varint(out, g.load as u64);
                    put_varint(out, g.avps.len() as u64);
                    for &avp in &g.avps {
                        self.put_avp(out, avp);
                    }
                }
                self.put_expansion(out, expansion);
                put_varint(out, hot.len() as u64);
                for &(avp, load) in hot {
                    self.put_avp(out, avp);
                    put_varint(out, load);
                }
            }
            Msg::Table(t) => {
                out.push(TAG_TABLE);
                put_varint(out, t.window);
                let m = t.table.m();
                put_varint(out, m as u64);
                for p in 0..m as u32 {
                    put_varint(out, t.table.declared_load(p) as u64);
                    let members = t.table.members(p);
                    put_varint(out, members.len() as u64);
                    for &avp in members {
                        self.put_avp(out, avp);
                    }
                }
                self.put_expansion(out, &t.expansion);
                put_varint(out, t.hot.len() as u64);
                for h in &t.hot {
                    self.put_avp(out, h.avp);
                    put_varint(out, h.replicas as u64);
                    for &cell in &h.cells {
                        put_varint(out, cell as u64);
                    }
                }
            }
            Msg::UpdateRequest(avp) => {
                out.push(TAG_UPDATE_REQUEST);
                self.put_avp(out, *avp);
            }
            Msg::Repartition => out.push(TAG_REPARTITION),
            Msg::JoinStats {
                window,
                joiner,
                docs,
                pairs,
            } => {
                out.push(TAG_JOIN_STATS);
                put_varint(out, *window);
                put_varint(out, *joiner as u64);
                put_varint(out, *docs as u64);
                put_varint(out, pairs.len() as u64);
                for (a, b) in pairs {
                    put_varint(out, a.0);
                    put_varint(out, b.0);
                }
            }
        }
    }

    fn decode(&self, c: &mut Cursor) -> Result<Msg, WireError> {
        match c.u8()? {
            TAG_DOC => {
                let id = DocId(c.varint()?);
                let n = c.varint()? as usize;
                if n > c.remaining() {
                    return Err(WireError::Truncated);
                }
                let mut pairs = Vec::with_capacity(n);
                for _ in 0..n {
                    pairs.push(self.get_pair(c)?);
                }
                Ok(Msg::Doc(Arc::new(Document::from_pairs(id, pairs))))
            }
            TAG_LOCAL_GROUPS => {
                let window = c.varint()?;
                let creator = c.varint()? as usize;
                let n = c.varint()? as usize;
                if n > c.remaining() {
                    return Err(WireError::Truncated);
                }
                let mut groups = Vec::with_capacity(n);
                for _ in 0..n {
                    let load = c.varint()? as usize;
                    let k = c.varint()? as usize;
                    if k > c.remaining() {
                        return Err(WireError::Truncated);
                    }
                    let mut avps = Vec::with_capacity(k);
                    for _ in 0..k {
                        avps.push(self.get_pair(c)?.avp);
                    }
                    groups.push(AssociationGroup { avps, load });
                }
                let expansion = self.get_expansion(c)?;
                let nh = c.varint()? as usize;
                if nh > c.remaining() {
                    return Err(WireError::Truncated);
                }
                let mut hot = Vec::with_capacity(nh);
                for _ in 0..nh {
                    let avp = self.get_pair(c)?.avp;
                    hot.push((avp, c.varint()?));
                }
                Ok(Msg::LocalGroups {
                    window,
                    creator,
                    groups,
                    expansion,
                    hot,
                })
            }
            TAG_TABLE => {
                let window = c.varint()?;
                let m = c.varint()? as usize;
                if m > c.remaining() {
                    return Err(WireError::Truncated);
                }
                let mut table = PartitionTable::empty(m);
                for p in 0..m as u32 {
                    let load = c.varint()? as usize;
                    let k = c.varint()? as usize;
                    if k > c.remaining() {
                        return Err(WireError::Truncated);
                    }
                    for _ in 0..k {
                        table.add_avp(p, self.get_pair(c)?.avp);
                    }
                    table.bump_load(p, load);
                }
                let expansion = self.get_expansion(c)?;
                let nh = c.varint()? as usize;
                if nh > c.remaining() {
                    return Err(WireError::Truncated);
                }
                let mut hot = Vec::with_capacity(nh);
                for _ in 0..nh {
                    let avp = self.get_pair(c)?.avp;
                    let replicas = c.varint()? as u32;
                    let ncells = crate::msg::HotSpec::cell_count(replicas);
                    if !(2..=8).contains(&replicas) || ncells > c.remaining() {
                        return Err(WireError::Truncated);
                    }
                    let mut cells = Vec::with_capacity(ncells);
                    for _ in 0..ncells {
                        cells.push(c.varint()? as u32);
                    }
                    hot.push(crate::msg::HotSpec {
                        avp,
                        replicas,
                        cells,
                    });
                }
                Ok(Msg::Table(Arc::new(TableMsg {
                    window,
                    table,
                    expansion,
                    hot,
                })))
            }
            TAG_UPDATE_REQUEST => Ok(Msg::UpdateRequest(self.get_pair(c)?.avp)),
            TAG_REPARTITION => Ok(Msg::Repartition),
            TAG_JOIN_STATS => {
                let window = c.varint()?;
                let joiner = c.varint()? as usize;
                let docs = c.varint()? as usize;
                let n = c.varint()? as usize;
                if n > c.remaining() {
                    return Err(WireError::Truncated);
                }
                let mut pairs = Vec::with_capacity(n);
                for _ in 0..n {
                    pairs.push((DocId(c.varint()?), DocId(c.varint()?)));
                }
                Ok(Msg::JoinStats {
                    window,
                    joiner,
                    docs,
                    pairs,
                })
            }
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// Fingerprint the full content of `dict` — attribute names in id order,
/// then every pair's `(attribute, value)` — so two processes agree on the
/// epoch iff bare symbol ids resolve identically on both sides.
pub fn dict_epoch(dict: &Dictionary) -> u64 {
    let mut h = fnv1a(b"ssj-dict-epoch", 0xcbf2_9ce4_8422_2325);
    let attrs = dict.attr_count();
    h = fnv1a(&(attrs as u64).to_le_bytes(), h);
    for a in 0..attrs as u32 {
        h = fnv1a(dict.attr_name(AttrId(a)).as_bytes(), h);
        h = fnv1a(&[0xff], h);
    }
    let avps = dict.avp_count();
    h = fnv1a(&(avps as u64).to_le_bytes(), h);
    let mut buf = Vec::new();
    for p in 0..avps as u32 {
        buf.clear();
        let avp = AvpId(p);
        buf.extend_from_slice(&dict.avp_attr(avp).0.to_le_bytes());
        match dict.avp_scalar(avp) {
            Scalar::Null => buf.push(SCALAR_NULL),
            Scalar::Bool(b) => {
                buf.push(SCALAR_BOOL);
                buf.push(b as u8);
            }
            Scalar::Int(i) => {
                buf.push(SCALAR_INT);
                buf.extend_from_slice(&i.to_le_bytes());
            }
            Scalar::Float(f) => {
                buf.push(SCALAR_FLOAT);
                buf.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            Scalar::Str(s) => {
                buf.push(SCALAR_STR);
                buf.extend_from_slice(s.as_bytes());
            }
        }
        h = fnv1a(&buf, h);
    }
    h
}
