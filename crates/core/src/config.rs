//! Configuration of the stream-join system (§VII-D).

use ssj_join::JoinAlgo;
use ssj_partition::PartitionerKind;

/// All tunables of the topology and pipeline, with the paper's defaults
/// (`m = 8`, `w = 6`, `θ = 0.2`, `δ = 3`, six Assigners).
#[derive(Debug, Clone, Copy)]
pub struct StreamJoinConfig {
    /// Number of partitions = number of Joiner instances (`m`).
    pub m: usize,
    /// Documents per tumbling window (`w`; the paper's minutes map to
    /// document counts, see DESIGN.md).
    pub window_docs: usize,
    /// Repartitioning threshold `θ` (§VI-A).
    pub theta: f64,
    /// Unseen-pair update threshold `δ` (§VI-A).
    pub delta: u32,
    /// Partitioning algorithm (AG / SC / DS).
    pub partitioner: PartitionerKind,
    /// Local join algorithm at the Joiners (FPJ / NLJ / HBJ).
    pub join_algo: JoinAlgo,
    /// Enable attribute-value expansion (§VI-B).
    pub expansion: bool,
    /// Parallelism of the PartitionCreator component.
    pub partition_creators: usize,
    /// Parallelism of the Assigner component.
    pub assigners: usize,
    /// Micro-batch size for forward-edge transport in the runtime
    /// (`TopologyBuilder::batch_size`); 1 disables batching.
    pub batch_size: usize,
}

impl Default for StreamJoinConfig {
    fn default() -> Self {
        StreamJoinConfig {
            m: 8,
            window_docs: 6_000,
            theta: 0.2,
            delta: 3,
            partitioner: PartitionerKind::Ag,
            join_algo: JoinAlgo::FpTree,
            expansion: true,
            partition_creators: 2,
            assigners: 6,
            batch_size: 64,
        }
    }
}

impl StreamJoinConfig {
    /// Builder-style override of `m`.
    pub fn with_m(mut self, m: usize) -> Self {
        self.m = m;
        self
    }

    /// Builder-style override of the window size.
    pub fn with_window(mut self, docs: usize) -> Self {
        self.window_docs = docs;
        self
    }

    /// Builder-style override of `θ`.
    pub fn with_theta(mut self, theta: f64) -> Self {
        self.theta = theta;
        self
    }

    /// Builder-style override of the partitioner.
    pub fn with_partitioner(mut self, p: PartitionerKind) -> Self {
        self.partitioner = p;
        self
    }

    /// Builder-style override of the join algorithm.
    pub fn with_join(mut self, j: JoinAlgo) -> Self {
        self.join_algo = j;
        self
    }

    /// Builder-style override of expansion.
    pub fn with_expansion(mut self, on: bool) -> Self {
        self.expansion = on;
        self
    }

    /// Builder-style override of the transport micro-batch size.
    pub fn with_batch_size(mut self, n: usize) -> Self {
        self.batch_size = n;
        self
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.m == 0 {
            return Err("m must be at least 1".into());
        }
        if self.window_docs == 0 {
            return Err("window_docs must be at least 1".into());
        }
        if self.partition_creators == 0 || self.assigners == 0 {
            return Err("component parallelism must be at least 1".into());
        }
        if !(0.0..=10.0).contains(&self.theta) {
            return Err("theta out of range".into());
        }
        if self.batch_size == 0 {
            return Err("batch_size must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = StreamJoinConfig::default();
        assert_eq!(c.m, 8);
        assert_eq!(c.delta, 3);
        assert!((c.theta - 0.2).abs() < 1e-12);
        assert_eq!(c.assigners, 6);
        c.validate().unwrap();
    }

    #[test]
    fn builder_overrides() {
        let c = StreamJoinConfig::default()
            .with_m(20)
            .with_window(3000)
            .with_theta(0.6)
            .with_partitioner(PartitionerKind::Ds)
            .with_join(JoinAlgo::Hbj)
            .with_expansion(false);
        assert_eq!(c.m, 20);
        assert_eq!(c.window_docs, 3000);
        assert_eq!(c.partitioner, PartitionerKind::Ds);
        assert_eq!(c.join_algo, JoinAlgo::Hbj);
        assert!(!c.expansion);
        c.validate().unwrap();
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(StreamJoinConfig::default().with_m(0).validate().is_err());
        assert!(StreamJoinConfig::default()
            .with_window(0)
            .validate()
            .is_err());
        let c = StreamJoinConfig {
            assigners: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        assert!(StreamJoinConfig::default()
            .with_batch_size(0)
            .validate()
            .is_err());
    }
}
