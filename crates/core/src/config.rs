//! Configuration of the stream-join system (§VII-D).

use ssj_join::JoinAlgo;
use ssj_partition::PartitionerKind;
use std::fmt;

/// All tunables of the topology and pipeline, with the paper's defaults
/// (`m = 8`, `w = 6`, `θ = 0.2`, `δ = 3`, six Assigners).
///
/// Construct via the builder — `StreamJoinConfig::default().with_m(4)`
/// starts a [`ConfigBuilder`], and every chain terminates in
/// [`ConfigBuilder::build`], which validates and returns
/// `Result<StreamJoinConfig, ConfigError>`. A constructed config is
/// therefore always valid.
#[derive(Debug, Clone, Copy)]
pub struct StreamJoinConfig {
    /// Number of partitions = number of Joiner instances (`m`).
    pub m: usize,
    /// Documents per tumbling window (`w`; the paper's minutes map to
    /// document counts, see DESIGN.md).
    pub window_docs: usize,
    /// Repartitioning threshold `θ` (§VI-A).
    pub theta: f64,
    /// Unseen-pair update threshold `δ` (§VI-A).
    pub delta: u32,
    /// Partitioning algorithm (AG / SC / DS).
    pub partitioner: PartitionerKind,
    /// Local join algorithm at the Joiners (FPJ / NLJ / HBJ).
    pub join_algo: JoinAlgo,
    /// Enable attribute-value expansion (§VI-B).
    pub expansion: bool,
    /// Parallelism of the PartitionCreator component.
    pub partition_creators: usize,
    /// Parallelism of the Assigner component.
    pub assigners: usize,
    /// Worker threads for the sharded association-group build inside each
    /// PartitionCreator (1 = sequential).
    pub build_workers: usize,
    /// Micro-batch size for forward-edge transport in the runtime
    /// (`TopologyBuilder::batch_size`); 1 disables batching.
    pub batch_size: usize,
    /// Enable full metrics collection in the runtime: latency histograms,
    /// the window-lifecycle trace, and per-punctuation registry snapshots.
    pub metrics: bool,
    /// Supervised-recovery retry budget per bolt task (0 = supervision off:
    /// a task panic aborts the run, exactly as before recovery existed).
    pub retries: u32,
    /// Base backoff between recovery attempts, in milliseconds (doubles per
    /// consecutive attempt, capped at 64×).
    pub backoff_ms: u64,
    /// Degraded mode: when a task exhausts its retries, fence it and route
    /// around it instead of failing the whole run (sacrifices that task's
    /// share of the result — see DESIGN.md §4d).
    pub degraded: bool,
}

impl Default for StreamJoinConfig {
    fn default() -> Self {
        StreamJoinConfig {
            m: 8,
            window_docs: 6_000,
            theta: 0.2,
            delta: 3,
            partitioner: PartitionerKind::Ag,
            join_algo: JoinAlgo::FpTree,
            expansion: true,
            partition_creators: 2,
            assigners: 6,
            build_workers: 2,
            batch_size: 64,
            metrics: false,
            retries: 0,
            backoff_ms: 20,
            degraded: false,
        }
    }
}

/// Why a [`ConfigBuilder::build`] was rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// `m` (partitions / Joiners) must be at least 1.
    ZeroPartitions,
    /// The tumbling window must hold at least 1 document.
    ZeroWindow,
    /// Every component needs at least one task.
    ZeroParallelism,
    /// `θ` must lie in `[0, 10]`; carries the rejected value.
    ThetaOutOfRange(f64),
    /// The transport micro-batch must hold at least 1 message.
    ZeroBatchSize,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroPartitions => f.write_str("m must be at least 1"),
            ConfigError::ZeroWindow => f.write_str("window_docs must be at least 1"),
            ConfigError::ZeroParallelism => f.write_str("component parallelism must be at least 1"),
            ConfigError::ThetaOutOfRange(t) => {
                write!(f, "theta {t} out of range (expected 0.0..=10.0)")
            }
            ConfigError::ZeroBatchSize => f.write_str("batch_size must be at least 1"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<ConfigError> for String {
    fn from(e: ConfigError) -> String {
        e.to_string()
    }
}

/// Fluent builder for [`StreamJoinConfig`]; obtained from any `with_*`
/// method on the config (which seeds the builder with that config's values)
/// and terminated with [`ConfigBuilder::build`].
#[derive(Debug, Clone, Copy)]
pub struct ConfigBuilder {
    cfg: StreamJoinConfig,
}

macro_rules! builder_setters {
    () => {
        /// Override `m` (partitions / Joiner instances).
        pub fn with_m(self, m: usize) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.m = m;
            b
        }

        /// Override the tumbling-window size in documents.
        pub fn with_window(self, docs: usize) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.window_docs = docs;
            b
        }

        /// Override the repartitioning threshold `θ`.
        pub fn with_theta(self, theta: f64) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.theta = theta;
            b
        }

        /// Override the unseen-pair update threshold `δ`.
        pub fn with_delta(self, delta: u32) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.delta = delta;
            b
        }

        /// Override the partitioning algorithm.
        pub fn with_partitioner(self, p: PartitionerKind) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.partitioner = p;
            b
        }

        /// Override the local join algorithm.
        pub fn with_join(self, j: JoinAlgo) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.join_algo = j;
            b
        }

        /// Override attribute-value expansion.
        pub fn with_expansion(self, on: bool) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.expansion = on;
            b
        }

        /// Override the PartitionCreator parallelism.
        pub fn with_partition_creators(self, n: usize) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.partition_creators = n;
            b
        }

        /// Override the Assigner parallelism.
        pub fn with_assigners(self, n: usize) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.assigners = n;
            b
        }

        /// Override the group-build worker count inside each
        /// PartitionCreator.
        pub fn with_build_workers(self, n: usize) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.build_workers = n;
            b
        }

        /// Override the transport micro-batch size.
        pub fn with_batch_size(self, n: usize) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.batch_size = n;
            b
        }

        /// Enable or disable full metrics collection.
        pub fn with_metrics(self, on: bool) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.metrics = on;
            b
        }

        /// Override the supervised-recovery retry budget per bolt task.
        pub fn with_retries(self, retries: u32) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.retries = retries;
            b
        }

        /// Override the base recovery backoff in milliseconds.
        pub fn with_backoff_ms(self, ms: u64) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.backoff_ms = ms;
            b
        }

        /// Enable or disable degraded mode (fence retry-exhausted tasks and
        /// route around them instead of failing the run).
        pub fn with_degraded(self, on: bool) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.degraded = on;
            b
        }
    };
}

impl StreamJoinConfig {
    fn into_builder(self) -> ConfigBuilder {
        ConfigBuilder { cfg: self }
    }

    /// Start a builder seeded with this config's values.
    pub fn builder(self) -> ConfigBuilder {
        self.into_builder()
    }

    builder_setters!();

    /// Check the invariants a built config must satisfy. Configs coming out
    /// of [`ConfigBuilder::build`] always pass; this re-check exists for
    /// configs restored from external state (snapshots, deserialization).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.m == 0 {
            return Err(ConfigError::ZeroPartitions);
        }
        if self.window_docs == 0 {
            return Err(ConfigError::ZeroWindow);
        }
        if self.partition_creators == 0 || self.assigners == 0 || self.build_workers == 0 {
            return Err(ConfigError::ZeroParallelism);
        }
        if !(0.0..=10.0).contains(&self.theta) {
            return Err(ConfigError::ThetaOutOfRange(self.theta));
        }
        if self.batch_size == 0 {
            return Err(ConfigError::ZeroBatchSize);
        }
        Ok(())
    }
}

impl ConfigBuilder {
    fn into_builder(self) -> ConfigBuilder {
        self
    }

    builder_setters!();

    /// Validate and return the finished config.
    pub fn build(self) -> Result<StreamJoinConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = StreamJoinConfig::default();
        assert_eq!(c.m, 8);
        assert_eq!(c.delta, 3);
        assert!((c.theta - 0.2).abs() < 1e-12);
        assert_eq!(c.assigners, 6);
        assert!(!c.metrics);
        c.validate().unwrap();
    }

    #[test]
    fn builder_overrides() {
        let c = StreamJoinConfig::default()
            .with_m(20)
            .with_window(3000)
            .with_theta(0.6)
            .with_delta(5)
            .with_partitioner(PartitionerKind::Ds)
            .with_join(JoinAlgo::Hbj)
            .with_expansion(false)
            .with_partition_creators(3)
            .with_assigners(4)
            .with_build_workers(4)
            .with_metrics(true)
            .build()
            .unwrap();
        assert_eq!(c.m, 20);
        assert_eq!(c.window_docs, 3000);
        assert_eq!(c.delta, 5);
        assert_eq!(c.partitioner, PartitionerKind::Ds);
        assert_eq!(c.join_algo, JoinAlgo::Hbj);
        assert!(!c.expansion);
        assert_eq!(c.partition_creators, 3);
        assert_eq!(c.assigners, 4);
        assert_eq!(c.build_workers, 4);
        assert!(c.metrics);
    }

    #[test]
    fn invalid_configs_rejected_with_typed_errors() {
        assert_eq!(
            StreamJoinConfig::default().with_m(0).build().unwrap_err(),
            ConfigError::ZeroPartitions
        );
        assert_eq!(
            StreamJoinConfig::default()
                .with_window(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroWindow
        );
        assert_eq!(
            StreamJoinConfig::default()
                .with_assigners(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroParallelism
        );
        assert_eq!(
            StreamJoinConfig::default()
                .with_build_workers(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroParallelism
        );
        assert_eq!(
            StreamJoinConfig::default()
                .with_batch_size(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroBatchSize
        );
        match StreamJoinConfig::default().with_theta(-1.0).build() {
            Err(ConfigError::ThetaOutOfRange(t)) => assert!((t + 1.0).abs() < 1e-12),
            other => panic!("expected theta error, got {other:?}"),
        }
    }

    #[test]
    fn config_error_converts_to_string() {
        let e = StreamJoinConfig::default().with_m(0).build().unwrap_err();
        let s: String = e.into();
        assert!(s.contains("m must be"), "{s}");
    }
}
