//! Configuration of the stream-join system (§VII-D).

use ssj_join::JoinAlgo;
use ssj_join::{WindowError, WindowSpec};
use ssj_partition::PartitionerKind;
use std::fmt;
use std::path::PathBuf;

/// All tunables of the topology and pipeline, with the paper's defaults
/// (`m = 8`, `w = 6`, `θ = 0.2`, `δ = 3`, six Assigners).
///
/// Construct via the builder — `StreamJoinConfig::default().with_m(4)`
/// starts a [`ConfigBuilder`], and every chain terminates in
/// [`ConfigBuilder::build`], which validates and returns
/// `Result<StreamJoinConfig, ConfigError>`. A constructed config is
/// therefore always valid.
///
/// The config is `Clone` but deliberately not `Copy` since the out-of-core
/// knobs landed: `spill_dir` carries a heap-allocated path, and silent
/// implicit copies of a many-field config were already a code smell.
#[derive(Debug, Clone)]
pub struct StreamJoinConfig {
    /// Number of partitions = number of Joiner instances (`m`).
    pub m: usize,
    /// Window shape (`w`; the paper's minutes map to document counts, see
    /// DESIGN.md). Tumbling is the 1-pane special case; sliding windows
    /// chain `panes_per_window` panes and make runtime punctuation
    /// pane-granular (DESIGN.md §4g).
    pub window: WindowSpec,
    /// Repartitioning threshold `θ` (§VI-A).
    pub theta: f64,
    /// Unseen-pair update threshold `δ` (§VI-A).
    pub delta: u32,
    /// Partitioning algorithm (AG / SC / DS).
    pub partitioner: PartitionerKind,
    /// Local join algorithm at the Joiners (FPJ / NLJ / HBJ).
    pub join_algo: JoinAlgo,
    /// Enable attribute-value expansion (§VI-B).
    pub expansion: bool,
    /// Parallelism of the PartitionCreator component.
    pub partition_creators: usize,
    /// Parallelism of the Assigner component.
    pub assigners: usize,
    /// Worker threads for the sharded association-group build inside each
    /// PartitionCreator (1 = sequential).
    pub build_workers: usize,
    /// Micro-batch size for forward-edge transport in the runtime
    /// (`TopologyBuilder::batch_size`); 1 disables batching.
    pub batch_size: usize,
    /// Enable full metrics collection in the runtime: latency histograms,
    /// the window-lifecycle trace, and per-punctuation registry snapshots.
    pub metrics: bool,
    /// Supervised-recovery retry budget per bolt task (0 = supervision off:
    /// a task panic aborts the run, exactly as before recovery existed).
    pub retries: u32,
    /// Base backoff between recovery attempts, in milliseconds (doubles per
    /// consecutive attempt, capped at 64×).
    pub backoff_ms: u64,
    /// Degraded mode: when a task exhausts its retries, fence it and route
    /// around it instead of failing the whole run (sacrifices that task's
    /// share of the result — see DESIGN.md §4d).
    pub degraded: bool,
    /// Task scheduler for the runtime executor (DESIGN.md §4e). Pooled is
    /// the default; thread-per-task survives as the `legacy` escape hatch.
    pub scheduler: SchedulerKind,
    /// Worker threads for the pooled scheduler (0 = auto: one per available
    /// core, clamped to the number of pool-scheduled tasks). Ignored under
    /// the legacy scheduler.
    pub pool_workers: usize,
    /// Pin pooled workers to CPU cores, worker `w` to core `w mod cores`
    /// (Linux only; a no-op elsewhere). Requires the pooled scheduler.
    pub pin_cores: bool,
    /// Process-group size for shared-nothing scale-out (DESIGN.md §4f).
    /// 1 (the default) runs everything in this process; `N > 1` shards the
    /// topology's tasks across `N` worker processes linked by Unix-socket
    /// transports.
    pub workers: usize,
    /// Hot-group replication (DESIGN.md §4h): PartitionCreators flag
    /// association groups whose load exceeds [`Self::hot_factor`] times the
    /// mean partition share, and the Merger spreads their documents over a
    /// triangle of replica cells instead of a single partition. Requires
    /// the incremental partitioning path (`expansion = false`) and `m >= 3`.
    pub replicate_hot: bool,
    /// Hotness threshold: a group is hot when its load exceeds
    /// `hot_factor × (pane load / m)`. Only meaningful with
    /// [`Self::replicate_hot`].
    pub hot_factor: f64,
    /// Load-shedding input-queue budget for the Joiners (0 = shedding off,
    /// the default). When a joiner's queue depth exceeds the budget,
    /// probe-only work (documents) is dropped and counted under `shed_*`;
    /// control traffic and table state are never shed (DESIGN.md §4h).
    pub shed_budget: usize,
    /// Out-of-core window state (DESIGN.md §4i): per-stateful-task memory
    /// budget in bytes for sealed pane/window state. `0` (the default)
    /// disables tiering entirely — no spill store is installed and the hot
    /// path is byte-identical to before the feature existed. When set,
    /// sealed document pools exceeding the budget are serialized into
    /// immutable sorted segment files under [`Self::spill_dir`] and probed
    /// lazily through a block cache.
    pub mem_budget: u64,
    /// Directory for spilled segment files; `None` resolves to the system
    /// temp directory at deploy time. Only meaningful with a non-zero
    /// [`Self::mem_budget`] (validation rejects the dir without a budget).
    pub spill_dir: Option<PathBuf>,
}

/// Which executor schedules bolt tasks (DESIGN.md §4e).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Fixed pool of work-stealing workers cooperatively scheduling bolts;
    /// `m ≫ cores` runs without thread oversubscription.
    #[default]
    Pooled,
    /// One OS thread per task. Deprecated: kept as an escape hatch
    /// (`--scheduler legacy`) for debugging and A/B benchmarking; large
    /// topologies degenerate into context-switch churn under it.
    ThreadPerTask,
}

impl fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SchedulerKind::Pooled => "pooled",
            SchedulerKind::ThreadPerTask => "legacy",
        })
    }
}

impl std::str::FromStr for SchedulerKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "pooled" => Ok(SchedulerKind::Pooled),
            "legacy" | "threaded" => Ok(SchedulerKind::ThreadPerTask),
            other => Err(format!(
                "unknown scheduler '{other}' (expected pooled|legacy)"
            )),
        }
    }
}

impl Default for StreamJoinConfig {
    fn default() -> Self {
        StreamJoinConfig {
            m: 8,
            window: WindowSpec::tumbling(6_000),
            theta: 0.2,
            delta: 3,
            partitioner: PartitionerKind::Ag,
            join_algo: JoinAlgo::FpTree,
            expansion: true,
            partition_creators: 2,
            assigners: 6,
            build_workers: 2,
            batch_size: 64,
            metrics: false,
            retries: 0,
            backoff_ms: 20,
            degraded: false,
            scheduler: SchedulerKind::Pooled,
            pool_workers: 0,
            pin_cores: false,
            workers: 1,
            replicate_hot: false,
            hot_factor: 4.0,
            shed_budget: 0,
            mem_budget: 0,
            spill_dir: None,
        }
    }
}

/// Why a [`ConfigBuilder::build`] was rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// `m` (partitions / Joiners) must be at least 1.
    ZeroPartitions,
    /// The window shape is invalid; carries the [`WindowError`] detail.
    Window(WindowError),
    /// Sliding windows require the incremental partitioning path, which
    /// attribute-value expansion bypasses (expansion recomputes views
    /// wholesale per window and cannot expire a single pane).
    SlidingWithExpansion,
    /// Every component needs at least one task.
    ZeroParallelism,
    /// `θ` must lie in `[0, 10]`; carries the rejected value.
    ThetaOutOfRange(f64),
    /// The transport micro-batch must hold at least 1 message.
    ZeroBatchSize,
    /// `pin_cores` requires the pooled scheduler — there is no meaningful
    /// core to pin a thread-per-task run's unbounded thread count to.
    PinCoresWithoutPool,
    /// `pool_workers` exceeds the sanity cap (1024); carries the rejected
    /// value. 0 means auto, so any real machine fits well under the cap.
    PoolWorkersOutOfRange(usize),
    /// `workers` must lie in `1..=64` (a process group needs at least this
    /// process, and the mesh is all-pairs); carries the rejected value.
    WorkersOutOfRange(usize),
    /// `hot_factor` must lie in `(1, 1000]`; carries the rejected value.
    /// At 1.0 or below every group clears the mean-share bar and
    /// "hotness" loses its meaning.
    HotFactorOutOfRange(f64),
    /// Hot-group replication spreads a group over a triangle of at least
    /// 3 replica cells and routes through partition bitmasks, so it needs
    /// `3 <= m <= 64`; carries the rejected `m`.
    ReplicateHotNeedsPartitions(usize),
    /// Hot-group replication detects hot groups from the incremental
    /// `GroupIndex` statistics, which attribute-value expansion bypasses.
    ReplicateHotWithExpansion,
    /// A spill directory was configured without a memory budget; the dir
    /// is only read when `mem_budget > 0`, so this is almost certainly a
    /// misconfiguration (the caller expected spilling and got none).
    SpillDirWithoutBudget,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroPartitions => f.write_str("m must be at least 1"),
            ConfigError::Window(e) => write!(f, "invalid window: {e}"),
            ConfigError::SlidingWithExpansion => f.write_str(
                "sliding windows require expansion off (pane expiry needs the incremental path)",
            ),
            ConfigError::ZeroParallelism => f.write_str("component parallelism must be at least 1"),
            ConfigError::ThetaOutOfRange(t) => {
                write!(f, "theta {t} out of range (expected 0.0..=10.0)")
            }
            ConfigError::ZeroBatchSize => f.write_str("batch_size must be at least 1"),
            ConfigError::PinCoresWithoutPool => {
                f.write_str("pin_cores requires the pooled scheduler (not --scheduler legacy)")
            }
            ConfigError::PoolWorkersOutOfRange(n) => {
                write!(f, "pool_workers {n} out of range (expected 0..=1024)")
            }
            ConfigError::WorkersOutOfRange(n) => {
                write!(f, "workers {n} out of range (expected 1..=64)")
            }
            ConfigError::HotFactorOutOfRange(h) => {
                write!(f, "hot_factor {h} out of range (expected > 1.0, <= 1000)")
            }
            ConfigError::ReplicateHotNeedsPartitions(m) => {
                write!(f, "replicate_hot needs 3 <= m <= 64 (got m = {m})")
            }
            ConfigError::ReplicateHotWithExpansion => f.write_str(
                "replicate_hot requires expansion off (hot groups come from the incremental path)",
            ),
            ConfigError::SpillDirWithoutBudget => f.write_str(
                "spill_dir is only used with a non-zero mem_budget (set --mem-budget too)",
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<WindowError> for ConfigError {
    fn from(e: WindowError) -> ConfigError {
        ConfigError::Window(e)
    }
}

impl From<ConfigError> for String {
    fn from(e: ConfigError) -> String {
        e.to_string()
    }
}

/// Fluent builder for [`StreamJoinConfig`]; obtained from any `with_*`
/// method on the config (which seeds the builder with that config's values)
/// and terminated with [`ConfigBuilder::build`].
#[derive(Debug, Clone)]
pub struct ConfigBuilder {
    cfg: StreamJoinConfig,
}

macro_rules! builder_setters {
    () => {
        /// Override `m` (partitions / Joiner instances).
        pub fn with_m(self, m: usize) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.m = m;
            b
        }

        /// Override the tumbling-window size in documents.
        #[deprecated(note = "use with_window_spec(WindowSpec::tumbling(docs)) instead")]
        pub fn with_window(self, docs: usize) -> ConfigBuilder {
            self.with_window_spec(WindowSpec::tumbling(docs))
        }

        /// Override the window shape (tumbling or pane-chained sliding).
        pub fn with_window_spec(self, spec: WindowSpec) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.window = spec;
            b
        }

        /// Override the repartitioning threshold `θ`.
        pub fn with_theta(self, theta: f64) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.theta = theta;
            b
        }

        /// Override the unseen-pair update threshold `δ`.
        pub fn with_delta(self, delta: u32) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.delta = delta;
            b
        }

        /// Override the partitioning algorithm.
        pub fn with_partitioner(self, p: PartitionerKind) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.partitioner = p;
            b
        }

        /// Override the local join algorithm.
        pub fn with_join(self, j: JoinAlgo) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.join_algo = j;
            b
        }

        /// Override attribute-value expansion.
        pub fn with_expansion(self, on: bool) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.expansion = on;
            b
        }

        /// Override the PartitionCreator parallelism.
        pub fn with_partition_creators(self, n: usize) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.partition_creators = n;
            b
        }

        /// Override the Assigner parallelism.
        pub fn with_assigners(self, n: usize) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.assigners = n;
            b
        }

        /// Override the group-build worker count inside each
        /// PartitionCreator.
        pub fn with_build_workers(self, n: usize) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.build_workers = n;
            b
        }

        /// Override the transport micro-batch size.
        pub fn with_batch_size(self, n: usize) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.batch_size = n;
            b
        }

        /// Enable or disable full metrics collection.
        pub fn with_metrics(self, on: bool) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.metrics = on;
            b
        }

        /// Override the supervised-recovery retry budget per bolt task.
        pub fn with_retries(self, retries: u32) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.retries = retries;
            b
        }

        /// Override the base recovery backoff in milliseconds.
        pub fn with_backoff_ms(self, ms: u64) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.backoff_ms = ms;
            b
        }

        /// Enable or disable degraded mode (fence retry-exhausted tasks and
        /// route around them instead of failing the run).
        pub fn with_degraded(self, on: bool) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.degraded = on;
            b
        }

        /// Override the task scheduler (pooled vs legacy thread-per-task).
        pub fn with_scheduler(self, s: SchedulerKind) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.scheduler = s;
            b
        }

        /// Override the pooled scheduler's worker count (0 = auto).
        pub fn with_pool_workers(self, n: usize) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.pool_workers = n;
            b
        }

        /// Enable or disable pinning pooled workers to CPU cores.
        pub fn with_pin_cores(self, on: bool) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.pin_cores = on;
            b
        }

        /// Override the process-group size for shared-nothing scale-out.
        pub fn with_workers(self, n: usize) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.workers = n;
            b
        }

        /// Enable or disable hot-group replication (DESIGN.md §4h).
        pub fn with_replicate_hot(self, on: bool) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.replicate_hot = on;
            b
        }

        /// Override the hotness threshold multiplier.
        pub fn with_hot_factor(self, factor: f64) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.hot_factor = factor;
            b
        }

        /// Override the joiner load-shedding queue budget (0 = off).
        pub fn with_shed_budget(self, budget: usize) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.shed_budget = budget;
            b
        }

        /// Override the per-task memory budget in bytes for sealed window
        /// state (0 = out-of-core tiering off, DESIGN.md §4i).
        pub fn with_mem_budget(self, bytes: u64) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.mem_budget = bytes;
            b
        }

        /// Override the directory spilled segment files are written to.
        pub fn with_spill_dir(self, dir: impl Into<std::path::PathBuf>) -> ConfigBuilder {
            let mut b = self.into_builder();
            b.cfg.spill_dir = Some(dir.into());
            b
        }
    };
}

impl StreamJoinConfig {
    fn into_builder(self) -> ConfigBuilder {
        ConfigBuilder { cfg: self }
    }

    /// Start a builder seeded with this config's values.
    pub fn builder(self) -> ConfigBuilder {
        self.into_builder()
    }

    builder_setters!();

    /// Documents spanned by one full window (all panes).
    pub fn window_docs(&self) -> usize {
        self.window.window_docs()
    }

    /// Documents per pane — the runtime's punctuation granularity.
    pub fn pane_docs(&self) -> usize {
        self.window.pane_docs()
    }

    /// Panes spanned by one window (1 for tumbling).
    pub fn panes_per_window(&self) -> usize {
        self.window.panes_per_window()
    }

    /// True when the window is a multi-pane sliding window.
    pub fn is_sliding(&self) -> bool {
        self.window.is_sliding()
    }

    /// Check the invariants a built config must satisfy. Configs coming out
    /// of [`ConfigBuilder::build`] always pass; this re-check exists for
    /// configs restored from external state (snapshots, deserialization).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.m == 0 {
            return Err(ConfigError::ZeroPartitions);
        }
        self.window.validate()?;
        if self.window.is_sliding() && self.expansion {
            return Err(ConfigError::SlidingWithExpansion);
        }
        if self.partition_creators == 0 || self.assigners == 0 || self.build_workers == 0 {
            return Err(ConfigError::ZeroParallelism);
        }
        if !(0.0..=10.0).contains(&self.theta) {
            return Err(ConfigError::ThetaOutOfRange(self.theta));
        }
        if self.batch_size == 0 {
            return Err(ConfigError::ZeroBatchSize);
        }
        if self.pin_cores && self.scheduler != SchedulerKind::Pooled {
            return Err(ConfigError::PinCoresWithoutPool);
        }
        if self.pool_workers > 1024 {
            return Err(ConfigError::PoolWorkersOutOfRange(self.pool_workers));
        }
        if !(1..=64).contains(&self.workers) {
            return Err(ConfigError::WorkersOutOfRange(self.workers));
        }
        if !(self.hot_factor > 1.0 && self.hot_factor <= 1000.0) {
            return Err(ConfigError::HotFactorOutOfRange(self.hot_factor));
        }
        if self.replicate_hot {
            if !(3..=64).contains(&self.m) {
                return Err(ConfigError::ReplicateHotNeedsPartitions(self.m));
            }
            if self.expansion {
                return Err(ConfigError::ReplicateHotWithExpansion);
            }
        }
        if self.spill_dir.is_some() && self.mem_budget == 0 {
            return Err(ConfigError::SpillDirWithoutBudget);
        }
        Ok(())
    }

    /// The directory spilled segments land in when tiering is active:
    /// [`Self::spill_dir`] if set, the system temp directory otherwise.
    pub fn resolved_spill_dir(&self) -> PathBuf {
        self.spill_dir.clone().unwrap_or_else(std::env::temp_dir)
    }
}

impl ConfigBuilder {
    fn into_builder(self) -> ConfigBuilder {
        self
    }

    builder_setters!();

    /// Validate and return the finished config.
    pub fn build(self) -> Result<StreamJoinConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = StreamJoinConfig::default();
        assert_eq!(c.m, 8);
        assert_eq!(c.delta, 3);
        assert!((c.theta - 0.2).abs() < 1e-12);
        assert_eq!(c.assigners, 6);
        assert!(!c.metrics);
        c.validate().unwrap();
    }

    #[test]
    fn builder_overrides() {
        let c = StreamJoinConfig::default()
            .with_m(20)
            .with_window_spec(WindowSpec::tumbling(3000))
            .with_theta(0.6)
            .with_delta(5)
            .with_partitioner(PartitionerKind::Ds)
            .with_join(JoinAlgo::Hbj)
            .with_expansion(false)
            .with_partition_creators(3)
            .with_assigners(4)
            .with_build_workers(4)
            .with_metrics(true)
            .build()
            .unwrap();
        assert_eq!(c.m, 20);
        assert_eq!(c.window_docs(), 3000);
        assert_eq!(c.delta, 5);
        assert_eq!(c.partitioner, PartitionerKind::Ds);
        assert_eq!(c.join_algo, JoinAlgo::Hbj);
        assert!(!c.expansion);
        assert_eq!(c.partition_creators, 3);
        assert_eq!(c.assigners, 4);
        assert_eq!(c.build_workers, 4);
        assert!(c.metrics);
    }

    #[test]
    fn invalid_configs_rejected_with_typed_errors() {
        assert_eq!(
            StreamJoinConfig::default().with_m(0).build().unwrap_err(),
            ConfigError::ZeroPartitions
        );
        assert_eq!(
            StreamJoinConfig::default()
                .with_window_spec(WindowSpec::tumbling(0))
                .build()
                .unwrap_err(),
            ConfigError::Window(WindowError::ZeroWindow)
        );
        assert_eq!(
            StreamJoinConfig::default()
                .with_expansion(false)
                .with_window_spec(WindowSpec::sliding(0, 4))
                .build()
                .unwrap_err(),
            ConfigError::Window(WindowError::ZeroPane)
        );
        // Sliding panes need the incremental partitioning path, so
        // expansion (on by default) must be rejected with it.
        assert_eq!(
            StreamJoinConfig::default()
                .with_window_spec(WindowSpec::sliding(100, 4))
                .build()
                .unwrap_err(),
            ConfigError::SlidingWithExpansion
        );
        assert_eq!(
            StreamJoinConfig::default()
                .with_assigners(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroParallelism
        );
        assert_eq!(
            StreamJoinConfig::default()
                .with_build_workers(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroParallelism
        );
        assert_eq!(
            StreamJoinConfig::default()
                .with_batch_size(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroBatchSize
        );
        match StreamJoinConfig::default().with_theta(-1.0).build() {
            Err(ConfigError::ThetaOutOfRange(t)) => assert!((t + 1.0).abs() < 1e-12),
            other => panic!("expected theta error, got {other:?}"),
        }
    }

    #[test]
    fn scheduler_knobs_validate_and_parse() {
        let c = StreamJoinConfig::default();
        assert_eq!(c.scheduler, SchedulerKind::Pooled);
        assert_eq!(c.pool_workers, 0);
        assert!(!c.pin_cores);

        let c = StreamJoinConfig::default()
            .with_scheduler(SchedulerKind::ThreadPerTask)
            .with_pool_workers(8)
            .build()
            .unwrap();
        assert_eq!(c.scheduler, SchedulerKind::ThreadPerTask);
        assert_eq!(c.pool_workers, 8);

        assert_eq!(
            StreamJoinConfig::default()
                .with_scheduler(SchedulerKind::ThreadPerTask)
                .with_pin_cores(true)
                .build()
                .unwrap_err(),
            ConfigError::PinCoresWithoutPool
        );
        assert_eq!(
            StreamJoinConfig::default()
                .with_pool_workers(4096)
                .build()
                .unwrap_err(),
            ConfigError::PoolWorkersOutOfRange(4096)
        );
        // Pinning under the pooled scheduler is fine.
        StreamJoinConfig::default()
            .with_pin_cores(true)
            .build()
            .unwrap();

        assert_eq!("pooled".parse(), Ok(SchedulerKind::Pooled));
        assert_eq!("legacy".parse(), Ok(SchedulerKind::ThreadPerTask));
        assert!("fibers".parse::<SchedulerKind>().is_err());
        assert_eq!(SchedulerKind::ThreadPerTask.to_string(), "legacy");
    }

    #[test]
    fn replication_and_shedding_knobs_validate() {
        let c = StreamJoinConfig::default();
        assert!(!c.replicate_hot);
        assert_eq!(c.shed_budget, 0);

        let c = StreamJoinConfig::default()
            .with_expansion(false)
            .with_replicate_hot(true)
            .with_hot_factor(2.5)
            .with_shed_budget(512)
            .build()
            .unwrap();
        assert!(c.replicate_hot);
        assert!((c.hot_factor - 2.5).abs() < 1e-12);
        assert_eq!(c.shed_budget, 512);

        assert_eq!(
            StreamJoinConfig::default()
                .with_hot_factor(1.0)
                .build()
                .unwrap_err(),
            ConfigError::HotFactorOutOfRange(1.0)
        );
        assert_eq!(
            StreamJoinConfig::default()
                .with_expansion(false)
                .with_m(2)
                .with_replicate_hot(true)
                .build()
                .unwrap_err(),
            ConfigError::ReplicateHotNeedsPartitions(2)
        );
        // Expansion bypasses the incremental stats hot detection feeds on.
        assert_eq!(
            StreamJoinConfig::default()
                .with_replicate_hot(true)
                .build()
                .unwrap_err(),
            ConfigError::ReplicateHotWithExpansion
        );
    }

    #[test]
    fn spill_knobs_validate() {
        let c = StreamJoinConfig::default();
        assert_eq!(c.mem_budget, 0);
        assert!(c.spill_dir.is_none());

        let c = StreamJoinConfig::default()
            .with_mem_budget(64 << 20)
            .with_spill_dir("/tmp/ssj-spill")
            .build()
            .unwrap();
        assert_eq!(c.mem_budget, 64 << 20);
        assert_eq!(c.resolved_spill_dir(), PathBuf::from("/tmp/ssj-spill"));

        // No dir configured: segments fall back to the system temp dir.
        let c = StreamJoinConfig::default()
            .with_mem_budget(1024)
            .build()
            .unwrap();
        assert_eq!(c.resolved_spill_dir(), std::env::temp_dir());

        // A dir without a budget is a misconfiguration, not a silent no-op.
        assert_eq!(
            StreamJoinConfig::default()
                .with_spill_dir("/tmp/ssj-spill")
                .build()
                .unwrap_err(),
            ConfigError::SpillDirWithoutBudget
        );
    }

    #[test]
    fn deprecated_window_shim_maps_to_tumbling() {
        #[allow(deprecated)]
        let c = StreamJoinConfig::default()
            .with_window(123)
            .build()
            .unwrap();
        assert_eq!(c.window, WindowSpec::tumbling(123));
        assert_eq!(c.window_docs(), 123);
        assert_eq!(c.pane_docs(), 123);
        assert_eq!(c.panes_per_window(), 1);
        assert!(!c.is_sliding());
    }

    #[test]
    fn sliding_config_accessors() {
        let c = StreamJoinConfig::default()
            .with_expansion(false)
            .with_window_spec(WindowSpec::sliding(150, 4))
            .build()
            .unwrap();
        assert!(c.is_sliding());
        assert_eq!(c.pane_docs(), 150);
        assert_eq!(c.panes_per_window(), 4);
        assert_eq!(c.window_docs(), 600);
    }

    #[test]
    fn config_error_converts_to_string() {
        let e = StreamJoinConfig::default().with_m(0).build().unwrap_err();
        let s: String = e.into();
        assert!(s.contains("m must be"), "{s}");
    }
}
