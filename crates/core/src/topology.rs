//! Assembling the Fig. 2 topology on the Storm-like runtime.
//!
//! ```text
//!            shuffle                    global
//! JsonReader ───────► PartitionCreator ───────► Merger (1)
//!      │                                          │ all
//!      │ shuffle                                  ▼
//!      └────────────────────────────────────► Assigner ──direct──► Joiner (m)
//!                                               │  ▲                  │
//!                 feedback (updates, repartition)│  │                  │ global
//!                                               ▼  │                  ▼
//!                                             Merger              Reporter
//! ```
//!
//! Forward edges form a DAG; the Assigner → Merger control traffic rides a
//! feedback edge. Punctuation alignment gives the run streaming-consistent
//! semantics: the Assigner routes window *k* documents with the table the
//! Merger computed from window *k−1* (window 0 is broadcast — no table has
//! been deployed yet).

use crate::components::{Assigner, Joiner, Merger, PartitionCreator};
use crate::config::{SchedulerKind, StreamJoinConfig};
use crate::msg::Msg;
use crate::spill::SpillSettings;
use crate::wire::{dict_epoch, MsgCodec};
use ssj_json::{Dictionary, DocId, Document, FxHashMap, FxHashSet};
use ssj_runtime::{
    join_group, metrics::Histogram, run, run_distributed, Bolt, CollectorBolt, CollectorHandle,
    FaultPlan, GroupSetup, Grouping, HistogramSnapshot, Outbox, PacedSpout, RunError, RunReport,
    SchedulerMode, Spout, TopologyBuilder, VecSpout,
};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Results of one full topology run.
#[derive(Debug)]
pub struct TopologyRunReport {
    /// Runtime task metrics (received / emitted per task).
    pub runtime: RunReport,
    /// Unique join pairs per window, in window order.
    pub joins_per_window: Vec<FxHashSet<(u64, u64)>>,
    /// Documents held per joiner per window (window → joiner → docs).
    pub docs_per_joiner: Vec<Vec<usize>>,
    /// Candidate pairs produced per joiner per window, before global
    /// dedup (window → joiner → pairs). This is each joiner's probe load —
    /// the quantity hot-group replication spreads — and it is exact and
    /// deterministic per seed, unlike wall-clock probe timings.
    pub pairs_per_joiner: Vec<Vec<usize>>,
}

impl TopologyRunReport {
    /// All unique join pairs of the whole run.
    pub fn all_pairs(&self) -> FxHashSet<(u64, u64)> {
        let mut out = FxHashSet::default();
        for w in &self.joins_per_window {
            out.extend(w.iter().copied());
        }
        out
    }
}

/// Materialize join pairs as merged result documents (the natural-join
/// output tuples): for each `(a, b)` pair whose both sides are present in
/// `docs`, produce `a ⋈ b` with a fresh id starting at `first_id`. Pairs
/// referencing unknown ids are skipped.
pub fn materialize_joins(
    pairs: &FxHashSet<(u64, u64)>,
    docs: &[Document],
    first_id: u64,
) -> Vec<Document> {
    let by_id: FxHashMap<u64, &Document> = docs.iter().map(|d| (d.id().0, d)).collect();
    let mut sorted: Vec<(u64, u64)> = pairs.iter().copied().collect();
    sorted.sort_unstable();
    let mut out = Vec::with_capacity(sorted.len());
    let mut id = first_id;
    for (a, b) in sorted {
        if let (Some(da), Some(db)) = (by_id.get(&a), by_id.get(&b)) {
            out.push(da.merge(db, DocId(id)));
            id += 1;
        }
    }
    out
}

/// Render the Fig. 2 topology (for the given configuration) as Graphviz
/// DOT without running it.
pub fn topology_dot(config: StreamJoinConfig) -> String {
    let dict = Dictionary::new();
    build(config, &dict, Vec::new(), CollectorBolt::new()).to_dot()
}

fn build(
    config: StreamJoinConfig,
    dict: &Dictionary,
    docs: Vec<Document>,
    reporter: CollectorBolt<Msg>,
) -> ssj_runtime::Topology<Msg> {
    build_faulted(config, dict, docs, reporter, FaultPlan::new())
}

fn build_faulted(
    config: StreamJoinConfig,
    dict: &Dictionary,
    docs: Vec<Document>,
    reporter: CollectorBolt<Msg>,
    plan: FaultPlan,
) -> ssj_runtime::Topology<Msg> {
    // Punctuation is pane-granular: tumbling windows punctuate per window
    // (the 1-pane case), sliding windows per pane (DESIGN.md §4g).
    let window = config.pane_docs();
    let msgs: Vec<Msg> = docs.into_iter().map(|d| Msg::Doc(Arc::new(d))).collect();
    build_custom(
        config,
        dict,
        move |_| Box::new(VecSpout::with_punctuation(msgs.clone(), window)),
        move |_| Box::new(reporter.clone()),
        plan,
    )
}

/// The Fig. 2 topology with a pluggable reader spout and reporter bolt —
/// the paced latency harness swaps in [`PacedSpout`] and a latency-aware
/// reporter without duplicating the wiring.
fn build_custom(
    config: StreamJoinConfig,
    dict: &Dictionary,
    spout: impl Fn(usize) -> Box<dyn Spout<Msg>> + Send + 'static,
    reporter: impl Fn(usize) -> Box<dyn Bolt<Msg>> + Send + Sync + 'static,
    plan: FaultPlan,
) -> ssj_runtime::Topology<Msg> {
    let window = config.pane_docs();
    let dict_creator = dict.clone();
    let dict_assigner = dict.clone();
    // Out-of-core tiering (DESIGN.md §4i): with a non-zero budget the
    // stateful bolts get shared spill settings — segment files are stamped
    // with the dictionary's content epoch, exactly like socket frames, so
    // a file can never be decoded against a different interning epoch.
    // With `mem_budget == 0` nothing is installed at all.
    let spill = (config.mem_budget > 0).then(|| {
        let dir = config.resolved_spill_dir();
        std::fs::create_dir_all(&dir).expect("spill: cannot create --spill-dir");
        Arc::new(SpillSettings {
            budget: config.mem_budget,
            dir,
            epoch: dict_epoch(dict),
        })
    });
    let creator_cfg = config.clone();
    let creator_spill = spill.clone();
    let merger_cfg = config.clone();
    let assigner_cfg = config.clone();
    let joiner_cfg = config.clone();
    let joiner_spill = spill;
    // Backpressure: keep the reader within roughly one window of the
    // slowest Assigner so the Merger's adaptive feedback loop stays in
    // (event-time) sync with the data path. Channel capacity counts
    // envelopes, and with batched transport one envelope holds up to
    // `batch_size` tuples, so the tuple budget is split between batch
    // size and slot count. The batch itself is clamped to a fraction of
    // the per-assigner window share: a batch the size of a whole window
    // would let the reader run a full window ahead of the repartition
    // signals, silently disabling §VI-A adaptivity.
    let share = (window / config.assigners.max(1)).clamp(16, 1024);
    let batch = config.batch_size.min((share / 4).max(1));
    let capacity = (share / batch).max(4);
    let mut builder = TopologyBuilder::new()
        .fault_plan(plan)
        .channel_capacity(capacity)
        .batch_size(batch)
        .metrics(config.metrics)
        .scheduler(match config.scheduler {
            SchedulerKind::Pooled => SchedulerMode::Pooled {
                workers: config.pool_workers,
                pin_cores: config.pin_cores,
            },
            SchedulerKind::ThreadPerTask => SchedulerMode::ThreadPerTask,
        })
        .recovery(
            ssj_runtime::RecoveryPolicy::default()
                .retries(config.retries)
                .backoff(std::time::Duration::from_millis(config.backoff_ms.max(1)))
                .degraded(config.degraded),
        );
    if config.shed_budget > 0 {
        // Overload protection on the joiners (DESIGN.md §4h): only
        // document probes are sheddable; tables, group exchanges, and
        // JoinStats (control and result state) always pass. Off by
        // default — with `shed_budget == 0` no shedder is installed and
        // the receive path is byte-identical to before.
        builder = builder.shed("joiner", config.shed_budget, |m: &Msg| {
            matches!(m, Msg::Doc(_))
        });
    }
    builder
        .spout("reader", 1, spout)
        .bolt("creator", config.partition_creators, move |_| {
            Box::new(PartitionCreator::new(
                creator_cfg.clone(),
                dict_creator.clone(),
                creator_spill.clone(),
            ))
        })
        .subscribe("reader", Grouping::Shuffle)
        // Repartition signals from the Assigners (§VI-A).
        .subscribe_feedback("assigner", Grouping::All)
        .done()
        .bolt("merger", 1, move |_| {
            Box::new(Merger::new(merger_cfg.clone()))
        })
        .subscribe("creator", Grouping::Global)
        .subscribe_feedback("assigner", Grouping::Global)
        .done()
        .bolt("assigner", config.assigners, move |_| {
            Box::new(Assigner::new(assigner_cfg.clone(), dict_assigner.clone()))
        })
        .subscribe("reader", Grouping::Shuffle)
        .subscribe("merger", Grouping::All)
        .done()
        .bolt("joiner", config.m, move |_| {
            Box::new(Joiner::new(joiner_cfg.clone(), joiner_spill.clone()))
        })
        .subscribe("assigner", Grouping::Direct)
        .done()
        .bolt("reporter", 1, reporter)
        .subscribe("joiner", Grouping::Global)
        .done()
        .build()
        .expect("Fig. 2 topology is valid")
}

/// Per-pane end-to-end latency distributions from a paced run
/// ([`run_topology_paced`]). Latency of a tuple is measured from its
/// *intended* (scheduled) arrival to the moment the reporter holds the
/// pane's last `JoinStats` — open-loop accounting, so queueing delay in an
/// overloaded topology is charged to the tuples that waited.
#[derive(Debug, Clone)]
pub struct LatencyReport {
    /// `(pane id, latency histogram)` in pane order.
    pub per_window: Vec<(u64, HistogramSnapshot)>,
}

impl LatencyReport {
    /// The given latency quantile (e.g. 0.99) pooled over all panes, in
    /// nanoseconds; 0 when no pane closed. Merges the per-pane bucket
    /// counts, so the result has the same bucket-bound granularity as the
    /// per-pane quantiles.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let mut merged = [0u64; ssj_runtime::metrics::HISTOGRAM_BUCKETS];
        let mut total = 0u64;
        for (_, h) in &self.per_window {
            for &(i, c) in &h.buckets {
                merged[i as usize] += c;
                total += c;
            }
        }
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in merged.iter().enumerate() {
            seen += c;
            if c > 0 && seen >= rank {
                return ssj_runtime::metrics::bucket_bound(i);
            }
        }
        0
    }
}

/// The reporter of a paced run: collects `JoinStats` like the plain
/// [`CollectorBolt`] reporter and, once the `m`-th joiner reported a pane,
/// records every tuple of that pane's end-to-end latency against the
/// arrival schedule.
struct LatencyReporter {
    inner: CollectorBolt<Msg>,
    m: usize,
    pane: usize,
    schedule: Arc<Vec<u64>>,
    anchor: Arc<OnceLock<Instant>>,
    seen: FxHashMap<u64, usize>,
    out: Arc<Mutex<Vec<(u64, HistogramSnapshot)>>>,
}

impl Bolt<Msg> for LatencyReporter {
    fn execute(&mut self, msg: Msg, out: &mut Outbox<Msg>) {
        if let Msg::JoinStats { window, .. } = &msg {
            let w = *window;
            let seen = self.seen.entry(w).or_insert(0);
            *seen += 1;
            if *seen == self.m {
                if let Some(anchor) = self.anchor.get() {
                    let now = anchor.elapsed().as_nanos() as u64;
                    let h = Histogram::new();
                    let lo = (w as usize) * self.pane;
                    let hi = (lo + self.pane).min(self.schedule.len());
                    for i in lo..hi {
                        h.record_ns(now.saturating_sub(self.schedule[i]));
                    }
                    self.out.lock().unwrap().push((w, h.snapshot()));
                }
            }
        }
        self.inner.execute(msg, out);
    }
}

/// [`run_topology_chaos`] with an open-loop paced reader: document `i`
/// enters the topology `schedule[i]` nanoseconds after the first emission
/// (see [`PacedSpout`]), and the reporter measures per-pane end-to-end
/// latency from the *intended* arrivals. Join results are folded exactly
/// as in [`run_topology`]; the latency report rides alongside.
pub fn run_topology_paced(
    config: StreamJoinConfig,
    dict: &Dictionary,
    docs: Vec<Document>,
    schedule: Vec<u64>,
    plan: FaultPlan,
) -> Result<(TopologyRunReport, LatencyReport), RunError> {
    config.validate().expect("invalid configuration");
    assert_eq!(docs.len(), schedule.len(), "one arrival time per document");
    let collector = CollectorBolt::new();
    let handle: CollectorHandle<Msg> = collector.handle();
    let pane = config.pane_docs();
    let m = config.m;
    let schedule = Arc::new(schedule);
    let anchor: Arc<OnceLock<Instant>> = Arc::new(OnceLock::new());
    let lat_out: Arc<Mutex<Vec<(u64, HistogramSnapshot)>>> = Arc::new(Mutex::new(Vec::new()));
    let msgs: Vec<Msg> = docs.into_iter().map(|d| Msg::Doc(Arc::new(d))).collect();
    let spout_schedule = Arc::clone(&schedule);
    let spout_anchor = Arc::clone(&anchor);
    let rep_out = Arc::clone(&lat_out);
    let rep_anchor = Arc::clone(&anchor);
    let topology = build_custom(
        config.clone(),
        dict,
        move |_| {
            Box::new(PacedSpout::new(
                msgs.clone(),
                spout_schedule.as_ref().clone(),
                pane,
                Arc::clone(&spout_anchor),
            ))
        },
        move |_| {
            Box::new(LatencyReporter {
                inner: collector.clone(),
                m,
                pane,
                schedule: Arc::clone(&schedule),
                anchor: Arc::clone(&rep_anchor),
                seen: FxHashMap::default(),
                out: Arc::clone(&rep_out),
            })
        },
        plan,
    );
    let runtime = run(topology)?;
    let report = fold_join_stats(&config, runtime, handle);
    let mut per_window = lat_out.lock().unwrap().clone();
    per_window.sort_by_key(|(w, _)| *w);
    Ok((report, LatencyReport { per_window }))
}

/// Run the full stream-join topology over `docs` and gather every window's
/// join result.
///
/// The reader punctuates every `config.pane_docs()` documents (one pane =
/// one window for tumbling specs); all topology
/// parallelism comes from `config` (`partition_creators`, `assigners`,
/// `m` joiners).
pub fn run_topology(
    config: StreamJoinConfig,
    dict: &Dictionary,
    docs: Vec<Document>,
) -> Result<TopologyRunReport, RunError> {
    run_topology_chaos(config, dict, docs, FaultPlan::new())
}

/// [`run_topology`] with deterministic fault injection: chaos tests crash
/// supervised tasks mid-run and assert the recovered output is
/// byte-identical to the fault-free run. Set `config.retries > 0` so the
/// supervisor arms window-boundary snapshots.
pub fn run_topology_chaos(
    config: StreamJoinConfig,
    dict: &Dictionary,
    docs: Vec<Document>,
    plan: FaultPlan,
) -> Result<TopologyRunReport, RunError> {
    config.validate().expect("invalid configuration");
    let reporter = CollectorBolt::new();
    let handle: CollectorHandle<Msg> = reporter.handle();
    let topology = build_faulted(config.clone(), dict, docs, reporter, plan);
    let runtime = run(topology)?;
    Ok(fold_join_stats(&config, runtime, handle))
}

/// Fold the reporter's JoinStats messages into per-window results.
fn fold_join_stats(
    config: &StreamJoinConfig,
    runtime: RunReport,
    handle: CollectorHandle<Msg>,
) -> TopologyRunReport {
    let mut by_window: FxHashMap<u64, FxHashSet<(u64, u64)>> = FxHashMap::default();
    let mut docs_by_window: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
    let mut pairs_by_window: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
    for msg in handle.take() {
        if let Msg::JoinStats {
            window,
            joiner,
            docs,
            pairs,
        } = msg
        {
            by_window.entry(window).or_default().extend(
                pairs
                    .iter()
                    .map(|(a, b): &(DocId, DocId)| (a.0.min(b.0), a.0.max(b.0))),
            );
            let slot = docs_by_window
                .entry(window)
                .or_insert_with(|| vec![0; config.m]);
            slot[joiner] = docs;
            let slot = pairs_by_window
                .entry(window)
                .or_insert_with(|| vec![0; config.m]);
            slot[joiner] = pairs.len();
        }
    }
    let mut windows: Vec<u64> = by_window.keys().copied().collect();
    windows.sort();
    let joins_per_window = windows
        .iter()
        .map(|w| by_window.remove(w).unwrap_or_default())
        .collect();
    let docs_per_joiner = windows
        .iter()
        .map(|w| docs_by_window.remove(w).unwrap_or_default())
        .collect();
    let pairs_per_joiner = windows
        .iter()
        .map(|w| pairs_by_window.remove(w).unwrap_or_default())
        .collect();
    TopologyRunReport {
        runtime,
        joins_per_window,
        docs_per_joiner,
        pairs_per_joiner,
    }
}

/// Deterministic task placement for an `N`-worker group (DESIGN.md §4f).
///
/// Singleton control/collection components (`reader`, `merger`, `reporter`)
/// live on worker 0 — the reader feeds the whole group, the merger's table
/// broadcast and the reporter's fold are already global sync points. Data
/// parallel components (`creator`, `assigner`, `joiner`) stripe round-robin
/// over the workers, so each worker carries an equal share of every stage.
///
/// Every group member computes this identically from the topology alone; it
/// is the deploy-time control plane, no coordination needed.
pub fn placement_for(component: &str, task: usize, workers: usize) -> usize {
    match component {
        "reader" | "merger" | "reporter" => 0,
        _ => task % workers,
    }
}

/// Identity of one worker process in a shared-nothing group.
#[derive(Debug, Clone)]
pub struct DistRuntime {
    /// Total processes in the group.
    pub workers: usize,
    /// This process's rank in `0..workers`.
    pub my_worker: usize,
    /// Directory holding the group's Unix sockets.
    pub socket_dir: PathBuf,
    /// Launch attempt (bumped by the leader when re-running after a worker
    /// death); namespaces the socket files so stale sockets of a previous
    /// attempt cannot cross-connect.
    pub attempt: u32,
}

/// Fingerprint of everything that shapes the topology graph and placement:
/// two processes with different values would wire incompatible meshes, so
/// the handshake rejects the pairing up front.
fn topo_fingerprint(config: &StreamJoinConfig) -> u64 {
    let fields: [u64; 7] = [
        config.m as u64,
        config.pane_docs() as u64,
        config.panes_per_window() as u64,
        config.partition_creators as u64,
        config.assigners as u64,
        config.batch_size as u64,
        config.workers as u64,
    ];
    let mut h = ssj_runtime::wire::fnv1a(b"ssj-topology", 0xcbf2_9ce4_8422_2325);
    for f in fields {
        h = ssj_runtime::wire::fnv1a(&f.to_le_bytes(), h);
    }
    h
}

/// Run this process's shard of the stream-join topology as one member of a
/// multi-process group.
///
/// Every worker must call this with the *same* `config`, `dict` content and
/// `docs` (the deploy-time contract — enforced by the handshake's topology
/// fingerprint and dictionary epoch). Tasks are placed by [`placement_for`];
/// edges crossing workers become Unix-socket links carrying the [`MsgCodec`]
/// wire format. The reporter lives on worker 0, so only worker 0's report
/// carries join results; other workers return empty windows.
pub fn run_topology_distributed(
    config: StreamJoinConfig,
    dict: &Dictionary,
    docs: Vec<Document>,
    dr: &DistRuntime,
) -> Result<TopologyRunReport, RunError> {
    config.validate().expect("invalid configuration");
    assert_eq!(config.workers, dr.workers, "config/group size mismatch");
    if dr.workers == 1 {
        return run_topology(config, dict, docs);
    }
    let reporter = CollectorBolt::new();
    let handle: CollectorHandle<Msg> = reporter.handle();
    let topology = build(config.clone(), dict, docs, reporter);
    let codec = MsgCodec::new(dict);
    let setup = GroupSetup {
        workers: dr.workers,
        my_worker: dr.my_worker,
        socket_dir: dr.socket_dir.clone(),
        attempt: dr.attempt,
        topo_fingerprint: topo_fingerprint(&config),
        dict_epoch: dict_epoch(dict),
    };
    let group = join_group(&setup)
        .map_err(|e| RunError::Transport(vec![format!("worker {}: {e}", dr.my_worker)]))?;
    // Chaos hook for the kill-and-recover differential test: abort this
    // process *after* the handshake, so peers observe a mid-run disconnect
    // rather than a failed join.
    if let Ok(kill) = std::env::var("SSJ_KILL_WORKER") {
        if kill == format!("{}:{}", dr.my_worker, dr.attempt) {
            std::process::abort();
        }
    }
    let workers = dr.workers;
    let runtime = run_distributed(topology, Arc::new(codec), group, &|component, task| {
        placement_for(component, task, workers)
    })?;
    Ok(fold_join_stats(&config, runtime, handle))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::ground_truth_pairs;

    fn stream(dict: &Dictionary, n: usize) -> Vec<Document> {
        (0..n as u64)
            .map(|i| {
                Document::from_json(
                    DocId(i),
                    &format!(
                        r#"{{"User":"u{}","Severity":"{}","MsgId":{}}}"#,
                        i % 6,
                        ["W", "E", "C"][(i % 3) as usize],
                        i % 5
                    ),
                    dict,
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn topology_produces_exact_join_results() {
        let dict = Dictionary::new();
        let docs = stream(&dict, 120);
        let cfg = StreamJoinConfig::default()
            .with_m(3)
            .with_window_spec(crate::WindowSpec::tumbling(40))
            .with_expansion(false)
            .with_partition_creators(2)
            .with_assigners(3)
            .build()
            .unwrap();
        let report = run_topology(cfg, &dict, docs.clone()).unwrap();
        assert_eq!(report.joins_per_window.len(), 3);
        for (w, found) in report.joins_per_window.iter().enumerate() {
            let truth = ground_truth_pairs(&docs[w * 40..(w + 1) * 40]);
            assert_eq!(
                found, &truth,
                "window {w}: distributed join differs from ground truth"
            );
        }
    }

    #[test]
    fn topology_with_expansion_stays_exact() {
        let dict = Dictionary::new();
        // Every doc has a Boolean attribute → expansion engages.
        let docs: Vec<Document> = (0..90u64)
            .map(|i| {
                Document::from_json(
                    DocId(i),
                    &format!(
                        r#"{{"ok":{},"grp":"g{}","val":{}}}"#,
                        i % 2 == 0,
                        i % 4,
                        i % 10
                    ),
                    &dict,
                )
                .unwrap()
            })
            .collect();
        let cfg = StreamJoinConfig::default()
            .with_m(4)
            .with_window_spec(crate::WindowSpec::tumbling(30))
            .with_partition_creators(2)
            .with_assigners(2)
            .build()
            .unwrap();
        let report = run_topology(cfg, &dict, docs.clone()).unwrap();
        for (w, found) in report.joins_per_window.iter().enumerate() {
            let truth = ground_truth_pairs(&docs[w * 30..(w + 1) * 30]);
            assert_eq!(found, &truth, "window {w}");
        }
    }

    #[test]
    fn runtime_metrics_reported() {
        let dict = Dictionary::new();
        let docs = stream(&dict, 60);
        let cfg = StreamJoinConfig::default()
            .with_m(2)
            .with_window_spec(crate::WindowSpec::tumbling(30))
            .with_expansion(false)
            .build()
            .unwrap();
        let report = run_topology(cfg, &dict, docs).unwrap();
        assert_eq!(report.runtime.received("creator"), 60);
        assert!(report.runtime.received("joiner") > 0);
        assert!(!report.docs_per_joiner.is_empty());
    }

    #[test]
    fn metrics_enabled_topology_conserves_counts() {
        let dict = Dictionary::new();
        let docs = stream(&dict, 120);
        let cfg = StreamJoinConfig::default()
            .with_m(3)
            .with_window_spec(crate::WindowSpec::tumbling(40))
            .with_expansion(false)
            .with_metrics(true)
            .build()
            .unwrap();
        let report = run_topology(cfg, &dict, docs.clone()).unwrap();
        let rt = &report.runtime;
        // Per-window snapshots and the lifecycle trace exist when metrics on.
        assert_eq!(rt.windows.len(), 3, "one snapshot per punctuated window");
        assert!(!rt.trace.is_empty(), "window-lifecycle trace retained");
        // Conservation through the document path: every doc the reader
        // emits reaches the creators (plus any feedback control messages),
        // and every doc window-counted by the joiners matches the join
        // results' basis.
        assert!(rt.received("creator") >= 120);
        let window_docs: u64 = rt
            .tasks
            .iter()
            .filter(|t| t.component == "joiner")
            .map(|t| t.counter("window_docs"))
            .sum();
        assert!(window_docs >= 120, "joiners saw every routed document");
        // Domain counters line up with the join report itself.
        let join_pairs: u64 = rt
            .tasks
            .iter()
            .filter(|t| t.component == "joiner")
            .map(|t| t.counter("join_pairs"))
            .sum();
        let reported: usize = report.joins_per_window.iter().map(|w| w.len()).sum();
        assert!(
            join_pairs as usize >= reported,
            "join_pairs counter {join_pairs} below reported pairs {reported}"
        );
        // Every joiner task's probe histogram accounts for its probes.
        for t in rt.tasks.iter().filter(|t| t.component == "joiner") {
            if let Some(h) = t.histogram("probe_ns") {
                assert!(h.count > 0);
                assert_eq!(h.buckets.iter().map(|&(_, c)| c).sum::<u64>(), h.count);
            }
        }
    }
}

#[cfg(test)]
mod materialize_tests {
    use super::*;

    #[test]
    fn materializes_known_pairs_and_skips_unknown() {
        let dict = Dictionary::new();
        let docs = vec![
            Document::from_json(DocId(1), r#"{"a":1,"b":2}"#, &dict).unwrap(),
            Document::from_json(DocId(2), r#"{"a":1,"c":3}"#, &dict).unwrap(),
        ];
        let mut pairs = FxHashSet::default();
        pairs.insert((1u64, 2u64));
        pairs.insert((1u64, 99u64)); // unknown side: skipped
        let merged = materialize_joins(&pairs, &docs, 1000);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].id(), DocId(1000));
        assert_eq!(merged[0].len(), 3); // a, b, c
        let v = merged[0].to_value(&dict);
        assert_eq!(v.get("c").and_then(ssj_json::Value::as_int), Some(3));
    }

    #[test]
    fn materialize_is_deterministic() {
        let dict = Dictionary::new();
        let docs: Vec<Document> = (0..6u64)
            .map(|i| {
                Document::from_json(DocId(i), &format!(r#"{{"k":{}}}"#, i % 2), &dict).unwrap()
            })
            .collect();
        let pairs = crate::pipeline::ground_truth_pairs(&docs);
        let a = materialize_joins(&pairs, &docs, 0);
        let b = materialize_joins(&pairs, &docs, 0);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.pairs(), y.pairs());
            assert_eq!(x.id(), y.id());
        }
    }
}
