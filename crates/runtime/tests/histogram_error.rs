//! Direct accuracy property for the 496-bucket log-linear [`Histogram`]:
//! every reported quantile is an upper bound on the exact order statistic
//! with at most `1/2^SUB_BITS = 12.5%` relative error — for any input
//! distribution, not just the happy-path durations the bolts record.
//!
//! The layout promises: values below 8 ns get exact unit buckets; above
//! that, each power-of-two octave splits into 8 linear sub-buckets, so a
//! value `v` lands in a bucket whose upper bound is in `[v, v·9/8)`.

use proptest::collection::vec;
use proptest::prelude::*;
use ssj_runtime::Histogram;

/// Exact order statistic matching the histogram's rank convention:
/// `rank = max(1, ceil(n·q))`, 1-based into the sorted sample.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((sorted.len() as f64 * q).ceil() as usize).max(1);
    sorted[rank - 1]
}

/// Mixed-magnitude sample: uniform octave choice first, then a uniform
/// value inside it — this hits every bucket family from the exact unit
/// range through the top octaves, unlike a plain uniform `u64` draw
/// (which almost never produces small values).
fn sample() -> impl Strategy<Value = Vec<u64>> {
    vec(
        (0u32..63, any::<u64>()).prop_map(|(octave, raw)| raw >> octave),
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn quantiles_within_one_eighth(values in sample(), qs_mil in vec(0u32..=1000, 1..8)) {
        let qs: Vec<f64> = qs_mil.into_iter().map(|q| q as f64 / 1000.0).collect();
        let h = Histogram::new();
        for &v in &values {
            h.record_ns(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);

        let mut sorted = values;
        sorted.sort_unstable();
        for q in qs {
            let exact = exact_quantile(&sorted, q);
            let got = snap.quantile_ns(q);
            // Never an underestimate...
            prop_assert!(
                got >= exact,
                "q={q}: histogram {got} < exact {exact}"
            );
            // ...and at most 12.5% over. Small values are exact.
            if exact < 8 {
                prop_assert_eq!(got, exact, "q={}: sub-8ns values are exact", q);
            } else {
                let bound = exact.saturating_add(exact / 8);
                prop_assert!(
                    got <= bound,
                    "q={q}: histogram {got} > {bound} (exact {exact} + 12.5%)"
                );
            }
        }
    }

    /// Extremes are pinned regardless of distribution: p0 maps to the
    /// smallest recorded bucket, p1 to the largest.
    #[test]
    fn extreme_quantiles_bracket_the_sample(values in sample()) {
        let h = Histogram::new();
        for &v in &values {
            h.record_ns(v);
        }
        let snap = h.snapshot();
        let mut sorted = values;
        sorted.sort_unstable();
        prop_assert!(snap.quantile_ns(0.0) >= sorted[0]);
        prop_assert!(snap.quantile_ns(1.0) >= sorted[sorted.len() - 1]);
    }
}
