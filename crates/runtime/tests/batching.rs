//! Conformance of the batched transport: window contents must be invariant
//! across batch sizes no matter how upstream task speeds are jittered, and
//! bounded channels must bound in-flight tuples without deadlocking.

use parking_lot::Mutex;
use proptest::prelude::*;
use ssj_runtime::{
    run, Bolt, Grouping, Outbox, Spout, SpoutEmit, TaskInfo, TopologyBuilder, VecSpout,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A middle-stage bolt that perturbs thread interleaving: each task spins
/// for a pseudo-random (seeded) number of iterations per message and
/// occasionally yields, so upstream tasks run at uneven, racy speeds.
struct Jitter {
    state: u64,
}

impl Bolt<i64> for Jitter {
    fn prepare(&mut self, info: &TaskInfo) {
        self.state ^= (info.task_index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn execute(&mut self, msg: i64, out: &mut Outbox<i64>) {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let spin = (self.state >> 59) as u32; // 0..32
        if spin >= 30 {
            std::thread::yield_now();
        }
        for i in 0..spin * 17 {
            std::hint::black_box(i);
        }
        out.emit(msg);
    }
}

/// Collects the (sorted) contents of every punctuated window.
struct WindowSink {
    cur: Vec<i64>,
    out: Arc<Mutex<Vec<Vec<i64>>>>,
}

impl Bolt<i64> for WindowSink {
    fn execute(&mut self, msg: i64, _out: &mut Outbox<i64>) {
        self.cur.push(msg);
    }

    fn on_punct(&mut self, _p: u64, _out: &mut Outbox<i64>) {
        let mut w = std::mem::take(&mut self.cur);
        w.sort_unstable();
        self.out.lock().push(w);
    }
}

/// spout → 3-way jittered stage → windowed sink; returns per-window sorted
/// contents.
fn windowed_run(n: i64, window: usize, batch: usize, seed: u64) -> Vec<Vec<i64>> {
    let windows = Arc::new(Mutex::new(Vec::new()));
    let w2 = Arc::clone(&windows);
    let t = TopologyBuilder::new()
        .batch_size(batch)
        .spout("src", 1, move |_| {
            Box::new(VecSpout::with_punctuation((0..n).collect(), window))
        })
        .bolt("mid", 3, move |task| {
            Box::new(Jitter {
                state: seed ^ (task as u64),
            })
        })
        .subscribe("src", Grouping::Shuffle)
        .done()
        .bolt("win", 1, move |_| {
            Box::new(WindowSink {
                cur: Vec::new(),
                out: Arc::clone(&w2),
            })
        })
        .subscribe("mid", Grouping::Global)
        .done()
        .build()
        .unwrap();
    run(t).unwrap();
    let got = windows.lock().clone();
    got
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The per-window multiset of delivered messages is identical for
    /// batch sizes 1, 7, and 64, regardless of upstream speed jitter.
    #[test]
    fn window_contents_invariant_across_batch_sizes(
        seed in 0u64..u64::MAX,
        window in 16usize..64,
        nwindows in 2usize..6,
    ) {
        let n = (window * nwindows) as i64;
        let baseline = windowed_run(n, window, 1, seed);
        // The unbatched run itself must be exact.
        prop_assert_eq!(baseline.len(), nwindows);
        for (w, contents) in baseline.iter().enumerate() {
            let expect: Vec<i64> =
                ((w * window) as i64..((w + 1) * window) as i64).collect();
            prop_assert_eq!(contents, &expect);
        }
        for bs in [7usize, 64] {
            let got = windowed_run(n, window, bs, seed.rotate_left(bs as u32));
            prop_assert_eq!(&baseline, &got);
        }
    }
}

/// A spout that floods as fast as the channel lets it, counting every
/// message the moment it is handed to the runtime.
struct Flood {
    i: u64,
    n: u64,
    sent: Arc<AtomicU64>,
}

impl Spout<u64> for Flood {
    fn next(&mut self) -> SpoutEmit<u64> {
        if self.i == self.n {
            return SpoutEmit::Done;
        }
        self.i += 1;
        self.sent.fetch_add(1, Ordering::SeqCst);
        SpoutEmit::Message(self.i)
    }
}

/// A deliberately slow consumer that samples the in-flight count
/// (`sent - received`) on every message and records the maximum.
struct Slow {
    received: u64,
    sent: Arc<AtomicU64>,
    max_inflight: Arc<AtomicU64>,
}

impl Bolt<u64> for Slow {
    fn execute(&mut self, _m: u64, _out: &mut Outbox<u64>) {
        self.received += 1;
        let inflight = self.sent.load(Ordering::SeqCst) - self.received;
        self.max_inflight.fetch_max(inflight, Ordering::SeqCst);
        if self.received.is_multiple_of(256) {
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }
}

#[test]
fn flooding_spout_against_slow_bolt_bounds_inflight() {
    const N: u64 = 20_000;
    const CAP: usize = 4;
    const BATCH: usize = 16;
    let sent = Arc::new(AtomicU64::new(0));
    let max_inflight = Arc::new(AtomicU64::new(0));
    let (s2, m2) = (Arc::clone(&sent), Arc::clone(&max_inflight));
    let t = TopologyBuilder::new()
        .channel_capacity(CAP)
        .batch_size(BATCH)
        .spout("flood", 1, move |_| {
            Box::new(Flood {
                i: 0,
                n: N,
                sent: Arc::clone(&s2),
            })
        })
        .bolt("slow", 1, move |_| {
            Box::new(Slow {
                received: 0,
                sent: Arc::clone(&sent),
                max_inflight: Arc::clone(&m2),
            })
        })
        .subscribe("flood", Grouping::Shuffle)
        .done()
        .build()
        .unwrap();
    let report = run(t).unwrap();
    assert_eq!(report.received("slow"), N, "no loss, no deadlock");
    // In-flight accounting: the bounded queue holds up to CAP envelopes of
    // BATCH tuples each; the producer's output buffer holds one more partial
    // batch; the consumer lags by up to BATCH-1 tuples inside the envelope
    // it is currently draining; and the spout counts one message before the
    // (possibly blocking) send. Total ≤ (CAP + 2) * BATCH.
    let bound = ((CAP + 2) * BATCH) as u64;
    let got = max_inflight.load(Ordering::SeqCst);
    assert!(
        got <= bound,
        "in-flight tuples {got} exceeded channel_capacity*batch bound {bound}"
    );
    // And batching must actually have been engaged, or the bound is vacuous.
    assert!(
        got > CAP as u64,
        "in-flight never exceeded the unbatched capacity; batching inactive?"
    );
}
