//! Stress and conformance tests for the Storm-like runtime: high message
//! volumes, wide fan-out, deep pipelines, window alignment under load, and
//! shutdown robustness.

use parking_lot::Mutex;
use ssj_runtime::{
    fn_bolt, run, Bolt, CollectorBolt, Grouping, Outbox, Spout, SpoutEmit, TaskInfo,
    TopologyBuilder, VecSpout,
};
use std::sync::Arc;

#[test]
fn hundred_thousand_messages_through_three_stages() {
    let n = 100_000i64;
    let sum = Arc::new(Mutex::new(0i64));
    let s2 = Arc::clone(&sum);
    let t = TopologyBuilder::new()
        .spout("src", 1, move |_| VecSpout::boxed((0..n).collect()))
        .bolt("a", 4, |_| fn_bolt(|x: i64, out| out.emit(x)))
        .subscribe("src", Grouping::Shuffle)
        .done()
        .bolt("b", 4, |_| fn_bolt(|x: i64, out| out.emit(x)))
        .subscribe("a", Grouping::Shuffle)
        .done()
        .bolt("acc", 1, move |_| {
            let s = Arc::clone(&s2);
            fn_bolt(move |x: i64, _out: &mut Outbox<i64>| {
                *s.lock() += x;
            })
        })
        .subscribe("b", Grouping::Global)
        .done()
        .build()
        .unwrap();
    let report = run(t).unwrap();
    assert_eq!(*sum.lock(), n * (n - 1) / 2);
    assert_eq!(report.received("acc"), n as u64);
}

#[test]
fn multiple_spout_tasks_deliver_everything() {
    // 4 spout tasks each emit 0..5000; total messages = 20_000.
    let t = TopologyBuilder::new()
        .spout("src", 4, |_| {
            VecSpout::boxed((0..5000).collect::<Vec<i32>>())
        })
        .bolt("sink", 3, |_| fn_bolt(|_: i32, _| {}))
        .subscribe("src", Grouping::Shuffle)
        .done()
        .build()
        .unwrap();
    let report = run(t).unwrap();
    assert_eq!(report.received("sink"), 20_000);
    // Round-robin from each producer keeps the skew tiny.
    let per_task = report.received_per_task("sink");
    let max = *per_task.iter().max().unwrap();
    let min = *per_task.iter().min().unwrap();
    assert!(max - min <= 8, "skew too high: {per_task:?}");
}

#[test]
fn windows_stay_exact_under_parallel_load() {
    // 40 windows of 250 messages through a 6-way parallel stage; a windowed
    // counter must see exactly 250 per window despite thread interleaving.
    struct Counter {
        seen: u64,
        windows: Arc<Mutex<Vec<u64>>>,
    }
    impl Bolt<i64> for Counter {
        fn execute(&mut self, _m: i64, _o: &mut Outbox<i64>) {
            self.seen += 1;
        }
        fn on_punct(&mut self, _p: u64, _o: &mut Outbox<i64>) {
            self.windows.lock().push(self.seen);
            self.seen = 0;
        }
    }
    let windows = Arc::new(Mutex::new(Vec::new()));
    let w2 = Arc::clone(&windows);
    let t = TopologyBuilder::new()
        .spout("src", 1, |_| {
            Box::new(VecSpout::with_punctuation((0..10_000i64).collect(), 250))
        })
        .bolt("stage", 6, |_| fn_bolt(|x: i64, out| out.emit(x)))
        .subscribe("src", Grouping::Shuffle)
        .done()
        .bolt("win", 1, move |_| {
            Box::new(Counter {
                seen: 0,
                windows: Arc::clone(&w2),
            })
        })
        .subscribe("stage", Grouping::Global)
        .done()
        .build()
        .unwrap();
    run(t).unwrap();
    let got = windows.lock().clone();
    assert_eq!(got.len(), 40);
    assert!(got.iter().all(|&c| c == 250), "window counts: {got:?}");
}

#[test]
fn two_level_windowed_aggregation() {
    // Parallel per-window partial counts, re-aggregated downstream: the
    // punctuation must be usable as a fan-in barrier at both levels.
    struct Partial {
        count: i64,
    }
    impl Bolt<i64> for Partial {
        fn execute(&mut self, _m: i64, _o: &mut Outbox<i64>) {
            self.count += 1;
        }
        fn on_punct(&mut self, _p: u64, out: &mut Outbox<i64>) {
            out.emit(self.count);
            self.count = 0;
        }
    }
    struct Total {
        sum: i64,
        totals: Arc<Mutex<Vec<i64>>>,
    }
    impl Bolt<i64> for Total {
        fn execute(&mut self, m: i64, _o: &mut Outbox<i64>) {
            self.sum += m;
        }
        fn on_punct(&mut self, _p: u64, _o: &mut Outbox<i64>) {
            self.totals.lock().push(self.sum);
            self.sum = 0;
        }
    }
    let totals = Arc::new(Mutex::new(Vec::new()));
    let t2 = Arc::clone(&totals);
    let t = TopologyBuilder::new()
        .spout("src", 1, |_| {
            Box::new(VecSpout::with_punctuation((0..3000i64).collect(), 500))
        })
        .bolt("partial", 5, |_| Box::new(Partial { count: 0 }))
        .subscribe("src", Grouping::Shuffle)
        .done()
        .bolt("total", 1, move |_| {
            Box::new(Total {
                sum: 0,
                totals: Arc::clone(&t2),
            })
        })
        .subscribe("partial", Grouping::Global)
        .done()
        .build()
        .unwrap();
    run(t).unwrap();
    // Partial counts emitted at punct p arrive before punct p completes at
    // `total` (each partial emits, then forwards its punct; FIFO per sender).
    let got = totals.lock().clone();
    assert_eq!(got, vec![500, 500, 500, 500, 500, 500]);
}

#[test]
fn custom_spout_trait_object() {
    // A spout implemented by hand (not VecSpout): Collatz until 1.
    struct Collatz {
        x: u64,
    }
    impl Spout<u64> for Collatz {
        fn next(&mut self) -> SpoutEmit<u64> {
            if self.x == 1 {
                return SpoutEmit::Done;
            }
            self.x = if self.x.is_multiple_of(2) {
                self.x / 2
            } else {
                3 * self.x + 1
            };
            SpoutEmit::Message(self.x)
        }
    }
    let sink = CollectorBolt::new();
    let handle = sink.handle();
    let t = TopologyBuilder::new()
        .spout("collatz", 1, |_| Box::new(Collatz { x: 27 }))
        .bolt("sink", 1, move |_| Box::new(sink.clone()))
        .subscribe("collatz", Grouping::Shuffle)
        .done()
        .build()
        .unwrap();
    run(t).unwrap();
    let seq = handle.take();
    assert_eq!(*seq.last().unwrap(), 1);
    assert_eq!(seq.len(), 111); // Collatz(27) takes 111 steps
}

#[test]
fn prepare_sees_correct_identity() {
    let ids = Arc::new(Mutex::new(Vec::new()));
    let ids2 = Arc::clone(&ids);
    struct IdBolt {
        ids: Arc<Mutex<Vec<(String, usize, usize)>>>,
    }
    impl Bolt<i32> for IdBolt {
        fn prepare(&mut self, info: &TaskInfo) {
            self.ids
                .lock()
                .push((info.component.clone(), info.task_index, info.parallelism));
        }
        fn execute(&mut self, _m: i32, _o: &mut Outbox<i32>) {}
    }
    let t = TopologyBuilder::new()
        .spout("src", 1, |_| VecSpout::boxed(vec![1]))
        .bolt("idb", 3, move |_| {
            Box::new(IdBolt {
                ids: Arc::clone(&ids2),
            })
        })
        .subscribe("src", Grouping::Shuffle)
        .done()
        .build()
        .unwrap();
    run(t).unwrap();
    let mut got = ids.lock().clone();
    got.sort();
    assert_eq!(
        got,
        vec![
            ("idb".to_string(), 0, 3),
            ("idb".to_string(), 1, 3),
            ("idb".to_string(), 2, 3)
        ]
    );
}

#[test]
fn emitted_counts_match_deliveries() {
    let t = TopologyBuilder::new()
        .spout("src", 1, |_| VecSpout::boxed((0..100i32).collect()))
        .bolt("fan", 1, |_| fn_bolt(|x: i32, out| out.emit(x)))
        .subscribe("src", Grouping::Shuffle)
        .done()
        .bolt("all3", 3, |_| fn_bolt(|_: i32, _| {}))
        .subscribe("fan", Grouping::All)
        .done()
        .build()
        .unwrap();
    let report = run(t).unwrap();
    // `fan` delivers each message to 3 tasks → 300 emissions.
    assert_eq!(report.emitted("fan"), 300);
    assert_eq!(report.received("all3"), 300);
}
