//! Chaos suite: deterministic fault injection and supervised recovery.
//!
//! The chaos topology is a miniature of the paper's Fig. 2 shape —
//! two-task spout → relay (shuffle) → keyed pair-join (fields) → sink
//! (global) — with every stage crash-recoverable: the joiner carries
//! cross-window state through `Bolt::snapshot`/`restore`, mid-window
//! duplicates are absorbed by id-dedup (joiner) and idempotent inserts
//! (sink), exactly like the real components. The core property: per-window
//! join output is **identical** with and without a recovered crash, across
//! seeds × crash positions × batch sizes.

use parking_lot::Mutex;
use proptest::prelude::*;
use ssj_bench::testutil::{assert_runs_equal, assert_windows_equal, RunWindows};
use ssj_runtime::{
    run, Bolt, BoltState, FaultPlan, Grouping, Outbox, RecoveryPolicy, RunError, RunReport,
    SchedulerMode, TaskInfo, TopologyBuilder, VecSpout,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Duration;

const KEYS: u64 = 7;

#[derive(Clone, Debug)]
enum Cm {
    Doc {
        id: u64,
        key: u64,
    },
    Stats {
        window: u64,
        joiner: usize,
        pairs: Vec<(u64, u64)>,
        cum_docs: u64,
    },
}

/// Identity relay — a cheap supervised stage to crash in front of the join.
struct Relay;

impl Bolt<Cm> for Relay {
    fn execute(&mut self, msg: Cm, out: &mut Outbox<Cm>) {
        out.emit(msg);
    }
}

/// Windowed pair-join by key with per-window dedup by id (the at-least-once
/// mid-window contract) and a cumulative doc count — cross-window state
/// that only survives crashes if `snapshot`/`restore` work.
struct PairJoiner {
    task: usize,
    window: BTreeMap<u64, BTreeSet<u64>>,
    cum_docs: u64,
}

impl PairJoiner {
    fn new() -> Self {
        PairJoiner {
            task: 0,
            window: BTreeMap::new(),
            cum_docs: 0,
        }
    }
}

impl Bolt<Cm> for PairJoiner {
    fn prepare(&mut self, info: &TaskInfo) {
        self.task = info.task_index;
    }

    fn execute(&mut self, msg: Cm, _out: &mut Outbox<Cm>) {
        if let Cm::Doc { id, key } = msg {
            self.window.entry(key).or_default().insert(id);
        }
    }

    fn on_punct(&mut self, p: u64, out: &mut Outbox<Cm>) {
        let mut pairs = Vec::new();
        let mut docs = 0u64;
        for ids in self.window.values() {
            docs += ids.len() as u64;
            let v: Vec<u64> = ids.iter().copied().collect();
            for i in 0..v.len() {
                for j in i + 1..v.len() {
                    pairs.push((v[i], v[j]));
                }
            }
        }
        self.cum_docs += docs;
        out.emit(Cm::Stats {
            window: p,
            joiner: self.task,
            pairs,
            cum_docs: self.cum_docs,
        });
        self.window.clear();
    }

    fn snapshot(&self) -> Option<BoltState> {
        Some(Box::new(self.cum_docs))
    }

    fn restore(&mut self, state: &BoltState) -> Result<(), String> {
        self.cum_docs = *state
            .downcast_ref::<u64>()
            .ok_or_else(|| "PairJoiner snapshot type mismatch".to_string())?;
        self.window.clear();
        Ok(())
    }
}

/// Final results keyed by `(window, joiner)` so replayed duplicates
/// overwrite identical entries (idempotent external effects).
type Shared = Arc<Mutex<BTreeMap<(u64, usize), (Vec<(u64, u64)>, u64)>>>;

struct Sink {
    out: Shared,
}

impl Bolt<Cm> for Sink {
    fn execute(&mut self, msg: Cm, _out: &mut Outbox<Cm>) {
        if let Cm::Stats {
            window,
            joiner,
            pairs,
            cum_docs,
        } = msg
        {
            self.out.lock().insert((window, joiner), (pairs, cum_docs));
        }
    }
}

/// Run the chaos topology: `n` docs (key = id mod 7), tumbling windows of
/// `window` docs, split evens/odds over two spout tasks. Returns the
/// canonical per-window join output, the per-window sum of the joiners'
/// cumulative doc counters, and the run report.
fn chaos_run(
    n: u64,
    window: usize,
    batch: usize,
    plan: FaultPlan,
    policy: RecoveryPolicy,
) -> Result<(RunWindows, Vec<u64>, RunReport), RunError> {
    chaos_run_on(n, window, batch, plan, policy, SchedulerMode::ThreadPerTask)
}

/// [`chaos_run`] under an explicit scheduler: the pooled variants assert
/// that cooperative scheduling leaves recovery semantics byte-identical.
fn chaos_run_on(
    n: u64,
    window: usize,
    batch: usize,
    plan: FaultPlan,
    policy: RecoveryPolicy,
    sched: SchedulerMode,
) -> Result<(RunWindows, Vec<u64>, RunReport), RunError> {
    assert!(window.is_multiple_of(2) && n.is_multiple_of(window as u64));
    let shared: Shared = Arc::new(Mutex::new(BTreeMap::new()));
    let s2 = Arc::clone(&shared);
    let doc = |id: u64| Cm::Doc { id, key: id % KEYS };
    let evens: Vec<Cm> = (0..n).step_by(2).map(doc).collect();
    let odds: Vec<Cm> = (1..n).step_by(2).map(doc).collect();
    let per_spout = window / 2;
    let t = TopologyBuilder::new()
        .batch_size(batch)
        .fault_plan(plan)
        .recovery(policy)
        .scheduler(sched)
        .spout("src", 2, move |task| {
            let items = if task == 0 {
                evens.clone()
            } else {
                odds.clone()
            };
            Box::new(VecSpout::with_punctuation(items, per_spout))
        })
        .bolt("relay", 2, |_| Box::new(Relay))
        .subscribe("src", Grouping::Shuffle)
        .done()
        .bolt("joiner", 3, |_| Box::new(PairJoiner::new()))
        .subscribe(
            "relay",
            Grouping::Fields(Arc::new(|m: &Cm| match m {
                Cm::Doc { key, .. } => *key,
                _ => 0,
            })),
        )
        .done()
        .bolt("sink", 1, move |_| {
            Box::new(Sink {
                out: Arc::clone(&s2),
            })
        })
        .subscribe("joiner", Grouping::Global)
        .done()
        .build()
        .unwrap();
    let report = run(t)?;
    let map = shared.lock();
    let nwin = map.keys().map(|(w, _)| w + 1).max().unwrap_or(0) as usize;
    let mut pairs: Vec<Vec<(u64, u64)>> = vec![Vec::new(); nwin];
    let mut cums = vec![0u64; nwin];
    for ((w, _joiner), (ps, cum)) in map.iter() {
        pairs[*w as usize].extend(ps.iter().copied());
        cums[*w as usize] += cum;
    }
    Ok((RunWindows::from_pairs(pairs), cums, report))
}

fn baseline(n: u64, window: usize, batch: usize) -> (RunWindows, Vec<u64>) {
    let (w, c, _) = chaos_run(
        n,
        window,
        batch,
        FaultPlan::new(),
        RecoveryPolicy::default(),
    )
    .expect("baseline run");
    (w, c)
}

fn quick_policy(retries: u32) -> RecoveryPolicy {
    RecoveryPolicy::default()
        .retries(retries)
        .backoff(Duration::from_millis(1))
}

const N: u64 = 192;
const WINDOW: usize = 48; // 4 windows

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// THE acceptance property: a single recovered crash — any supervised
    /// stage, any window/tuple coordinate, batch 1 or 64 — leaves every
    /// window's join output AND the joiners' cross-window counters exactly
    /// equal to the fault-free run.
    #[test]
    fn crash_once_recovers_exactly(
        seed in 0u64..1 << 40,
        comp_pick in 0usize..3,
        crash_window in 0u64..4,
        batch_big in any::<bool>(),
    ) {
        let batch = if batch_big { 64 } else { 1 };
        // Tuple coordinates bounded by each component's per-window share so
        // most cases actually fire (the sink sees 3 Stats per window).
        let (comp, par, max_tuple) =
            [("relay", 2, 20), ("joiner", 3, 6), ("sink", 1, 3)][comp_pick];
        let task = (seed % par as u64) as usize;
        let tuple = seed % max_tuple as u64;
        let plan = FaultPlan::new().crash(comp, task, crash_window, tuple);
        let (base, base_cum) = baseline(N, WINDOW, batch);
        let (got, cum, report) = chaos_run(N, WINDOW, batch, plan, quick_policy(3)).unwrap();
        assert_runs_equal(&base, &got);
        assert_windows_equal("cumulative docs", &base_cum, &cum);
        let crashes = report.counter_total("faults_crashes");
        if crashes > 0 {
            prop_assert!(
                report.counter_total("recoveries_succeeded") >= 1,
                "crashed {crashes}× but never recovered"
            );
        }
    }
}

#[test]
fn single_crash_is_recovered_and_counted() {
    let plan = FaultPlan::new().crash("joiner", 1, 1, 2);
    let (base, base_cum) = baseline(N, WINDOW, 64);
    let (got, cum, report) = chaos_run(N, WINDOW, 64, plan, quick_policy(2)).unwrap();
    assert_runs_equal(&base, &got);
    assert_windows_equal("cumulative docs", &base_cum, &cum);
    assert_eq!(report.counter_total("faults_crashes"), 1);
    assert_eq!(report.counter_total("recoveries_attempted"), 1);
    assert_eq!(report.counter_total("recoveries_succeeded"), 1);
    assert!(report.counter_total("recoveries_replayed") >= 1);
    assert_eq!(report.component_counter("joiner", "faults_crashes"), 1);
    // attempted + succeeded + replayed envelopes
    assert!(report.total_recoveries() >= 2);
}

#[test]
fn repeated_crash_exhausts_retries_and_degrades() {
    let plan = FaultPlan::new().crash_repeating("joiner", 1, 1, 2);
    let policy = quick_policy(2).degraded(true);
    let (base, _, _) =
        chaos_run(N, WINDOW, 64, FaultPlan::new(), RecoveryPolicy::default()).unwrap();
    let (got, _, report) = chaos_run(N, WINDOW, 64, plan, policy).unwrap();
    // Clean degraded termination: every window still closes…
    assert_eq!(got.windows.len(), base.windows.len());
    // …and the surviving joiners' output is a subset of the full result.
    for (w, (g, b)) in got.windows.iter().zip(&base.windows).enumerate() {
        let missing: Vec<_> = g.iter().filter(|p| !b.contains(p)).collect();
        assert!(
            missing.is_empty(),
            "window {w}: degraded run invented pairs {missing:?}"
        );
    }
    // Initial crash + one re-crash per replay attempt.
    assert_eq!(report.counter_total("faults_crashes"), 3);
    assert_eq!(report.counter_total("recoveries_attempted"), 2);
    assert_eq!(report.counter_total("recoveries_succeeded"), 0);
    assert_eq!(report.counter_total("faults_fenced"), 1);
    assert!(
        report.counter_total("faults_skipped") > 0,
        "discard bolt counts skips"
    );
    assert!(report.total_faults() >= 4);
}

#[test]
fn repeated_crash_without_degraded_fails_cleanly() {
    let plan = FaultPlan::new().crash_repeating("joiner", 1, 1, 2);
    let err = chaos_run(N, WINDOW, 64, plan, quick_policy(1)).unwrap_err();
    let RunError::TaskPanicked(tasks) = err else {
        panic!("expected TaskPanicked, got {err}");
    };
    assert!(
        tasks.iter().any(|t| t.contains("joiner")),
        "panic should name the joiner: {tasks:?}"
    );
}

#[test]
fn unsupervised_crash_still_propagates() {
    // No retries, no degraded mode: a targeted fault behaves like any
    // other panic — the pre-recovery contract is unchanged.
    let plan = FaultPlan::new().crash("relay", 0, 0, 0);
    let err = chaos_run(N, WINDOW, 64, plan, RecoveryPolicy::default()).unwrap_err();
    let RunError::TaskPanicked(tasks) = err else {
        panic!("expected TaskPanicked, got {err}");
    };
    assert!(tasks.iter().any(|t| t.contains("relay")), "{tasks:?}");
}

#[test]
fn drop_fault_loses_data_but_terminates() {
    let plan = FaultPlan::new().drop_envelope("relay", 0, 0, 3);
    let (base, _) = baseline(N, WINDOW, 1);
    let (got, _, report) = chaos_run(N, WINDOW, 1, plan, quick_policy(0)).unwrap();
    assert_eq!(report.counter_total("faults_dropped"), 1);
    assert_eq!(got.windows.len(), base.windows.len());
    for (w, (g, b)) in got.windows.iter().zip(&base.windows).enumerate() {
        assert!(
            g.iter().all(|p| b.contains(p)),
            "window {w}: dropped-input run invented pairs"
        );
    }
}

#[test]
fn delay_fault_reorders_within_the_window_only() {
    // Delayed envelopes are force-released ahead of the next control token,
    // so window contents — and thus join output — are preserved exactly.
    let plan = FaultPlan::new().delay("relay", 0, 1, 2, 5);
    let (base, base_cum) = baseline(N, WINDOW, 1);
    let (got, cum, report) = chaos_run(N, WINDOW, 1, plan, quick_policy(0)).unwrap();
    assert_eq!(report.counter_total("faults_delayed"), 1);
    assert_runs_equal(&base, &got);
    assert_windows_equal("cumulative docs", &base_cum, &cum);
}

#[test]
fn stall_fault_only_slows_the_task() {
    let plan = FaultPlan::new().stall("joiner", 0, 0, 1, 10_000);
    let (base, base_cum) = baseline(N, WINDOW, 64);
    let (got, cum, report) = chaos_run(N, WINDOW, 64, plan, quick_policy(0)).unwrap();
    assert_eq!(report.counter_total("faults_stalls"), 1);
    assert_runs_equal(&base, &got);
    assert_windows_equal("cumulative docs", &base_cum, &cum);
}

#[test]
fn timeout_policies_are_benign() {
    let policy = RecoveryPolicy::default()
        .recv_timeout(Duration::from_millis(1))
        .send_timeout(Duration::from_millis(5));
    let (base, base_cum) = baseline(N, WINDOW, 64);
    let (got, cum, _) = chaos_run(N, WINDOW, 64, FaultPlan::new(), policy).unwrap();
    assert_runs_equal(&base, &got);
    assert_windows_equal("cumulative docs", &base_cum, &cum);
}

#[test]
fn supervised_run_without_faults_matches_fast_path() {
    let (base, base_cum) = baseline(N, WINDOW, 64);
    let (got, cum, report) = chaos_run(N, WINDOW, 64, FaultPlan::new(), quick_policy(3)).unwrap();
    assert_runs_equal(&base, &got);
    assert_windows_equal("cumulative docs", &base_cum, &cum);
    assert_eq!(report.total_faults(), 0);
    assert_eq!(report.total_recoveries(), 0);
}

#[test]
fn crash_somewhere_is_deterministic_and_recovered() {
    let mk = || FaultPlan::new().crash_somewhere("joiner", 3, 4, 8, 0xDEAD_BEEF);
    assert_eq!(mk().specs(), mk().specs(), "same seed, same fault");
    let (base, base_cum) = baseline(N, WINDOW, 1);
    let (got, cum, _) = chaos_run(N, WINDOW, 1, mk(), quick_policy(3)).unwrap();
    assert_runs_equal(&base, &got);
    assert_windows_equal("cumulative docs", &base_cum, &cum);
}

/// Regression (Aligner EOS-before-punctuation): an upstream task that
/// reaches EOS while its peers keep punctuating must stop counting toward
/// the alignment quorum — previously windows after the EOS never closed
/// and their contents were silently lost.
#[test]
fn windows_keep_closing_after_an_upstream_eos() {
    struct WinSink {
        cur: Vec<u64>,
        out: Arc<Mutex<Vec<Vec<u64>>>>,
    }
    impl Bolt<u64> for WinSink {
        fn execute(&mut self, msg: u64, _out: &mut Outbox<u64>) {
            self.cur.push(msg);
        }
        fn on_punct(&mut self, _p: u64, _out: &mut Outbox<u64>) {
            let mut w = std::mem::take(&mut self.cur);
            w.sort_unstable();
            self.out.lock().push(w);
        }
    }
    for supervised in [false, true] {
        let windows = Arc::new(Mutex::new(Vec::new()));
        let w2 = Arc::clone(&windows);
        let policy = if supervised {
            quick_policy(1)
        } else {
            RecoveryPolicy::default()
        };
        let t = TopologyBuilder::new()
            .recovery(policy)
            .spout("src", 2, |task| {
                // Task 1 is empty: it delivers EOS before ever punctuating.
                let items: Vec<u64> = if task == 0 {
                    (0..300).collect()
                } else {
                    Vec::new()
                };
                Box::new(VecSpout::with_punctuation(items, 10))
            })
            .bolt("win", 1, move |_| {
                Box::new(WinSink {
                    cur: Vec::new(),
                    out: Arc::clone(&w2),
                })
            })
            .subscribe("src", Grouping::Global)
            .done()
            .build()
            .unwrap();
        run(t).unwrap();
        let got = windows.lock().clone();
        assert_eq!(
            got.len(),
            30,
            "supervised={supervised}: every window closes"
        );
        for (i, w) in got.iter().enumerate() {
            let expect: Vec<u64> = (i as u64 * 10..(i as u64 + 1) * 10).collect();
            assert_eq!(w, &expect, "supervised={supervised}: window {i}");
        }
    }
}

// ---------------------------------------------------------------------------
// Pooled-scheduler chaos: crash, recovery, fencing, and panic propagation
// must be byte-identical to the thread-per-task executor (DESIGN.md §4e).
// ---------------------------------------------------------------------------

fn pooled(workers: usize) -> SchedulerMode {
    SchedulerMode::Pooled {
        workers,
        pin_cores: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The pooled acceptance property: a recovered crash under the pool —
    /// any supervised stage, any coordinate, any worker count — matches both
    /// the fault-free run and the thread-per-task recovered run exactly.
    #[test]
    fn pooled_crash_once_recovers_exactly(
        seed in 0u64..1 << 40,
        comp_pick in 0usize..3,
        crash_window in 0u64..4,
        workers_pick in 0usize..3,
        batch_big in any::<bool>(),
    ) {
        let batch = if batch_big { 64 } else { 1 };
        let workers = [1usize, 2, 8][workers_pick];
        let (comp, par, max_tuple) =
            [("relay", 2, 20), ("joiner", 3, 6), ("sink", 1, 3)][comp_pick];
        let task = (seed % par as u64) as usize;
        let tuple = seed % max_tuple as u64;
        let mk_plan = || FaultPlan::new().crash(comp, task, crash_window, tuple);
        let (base, base_cum) = baseline(N, WINDOW, batch);
        let (legacy, legacy_cum, _) =
            chaos_run(N, WINDOW, batch, mk_plan(), quick_policy(3)).unwrap();
        let (got, cum, report) =
            chaos_run_on(N, WINDOW, batch, mk_plan(), quick_policy(3), pooled(workers)).unwrap();
        assert_runs_equal(&base, &got);
        assert_runs_equal(&legacy, &got);
        assert_windows_equal("cumulative docs", &base_cum, &cum);
        assert_windows_equal("cumulative docs vs legacy", &legacy_cum, &cum);
        let crashes = report.counter_total("faults_crashes");
        if crashes > 0 {
            prop_assert!(
                report.counter_total("recoveries_succeeded") >= 1,
                "crashed {crashes}× under the pool but never recovered"
            );
        }
    }
}

#[test]
fn pooled_fault_free_run_matches_legacy() {
    for workers in [1usize, 2, 8] {
        let (base, base_cum) = baseline(N, WINDOW, 64);
        let (got, cum, _) = chaos_run_on(
            N,
            WINDOW,
            64,
            FaultPlan::new(),
            RecoveryPolicy::default(),
            pooled(workers),
        )
        .unwrap();
        assert_runs_equal(&base, &got);
        assert_windows_equal("cumulative docs", &base_cum, &cum);
    }
}

#[test]
fn pooled_crash_is_recovered_and_counted() {
    let plan = FaultPlan::new().crash("joiner", 1, 1, 2);
    let (base, base_cum) = baseline(N, WINDOW, 64);
    let (got, cum, report) = chaos_run_on(N, WINDOW, 64, plan, quick_policy(2), pooled(2)).unwrap();
    assert_runs_equal(&base, &got);
    assert_windows_equal("cumulative docs", &base_cum, &cum);
    assert_eq!(report.counter_total("faults_crashes"), 1);
    assert_eq!(report.counter_total("recoveries_attempted"), 1);
    assert_eq!(report.counter_total("recoveries_succeeded"), 1);
    assert!(report.counter_total("recoveries_replayed") >= 1);
}

#[test]
fn pooled_repeated_crash_degrades_cleanly() {
    // Degraded-mode fencing under the pool: the fenced joiner's share is
    // sacrificed, every window still closes, no invented pairs.
    let plan = FaultPlan::new().crash_repeating("joiner", 1, 1, 2);
    let policy = quick_policy(2).degraded(true);
    let (base, _) = baseline(N, WINDOW, 64);
    let (got, _, report) = chaos_run_on(N, WINDOW, 64, plan, policy, pooled(2)).unwrap();
    assert_eq!(got.windows.len(), base.windows.len());
    for (w, (g, b)) in got.windows.iter().zip(&base.windows).enumerate() {
        let missing: Vec<_> = g.iter().filter(|p| !b.contains(p)).collect();
        assert!(
            missing.is_empty(),
            "window {w}: degraded pooled run invented pairs {missing:?}"
        );
    }
    assert_eq!(report.counter_total("faults_crashes"), 3);
    assert_eq!(report.counter_total("faults_fenced"), 1);
    assert!(report.counter_total("faults_skipped") > 0);
}

#[test]
fn pooled_unsupervised_crash_still_propagates() {
    // A terminal panic in a cooperative task must surface through
    // `RunError::TaskPanicked` with the same label a dying thread produced.
    let plan = FaultPlan::new().crash("relay", 0, 0, 0);
    let err = chaos_run_on(N, WINDOW, 64, plan, RecoveryPolicy::default(), pooled(2)).unwrap_err();
    let RunError::TaskPanicked(tasks) = err else {
        panic!("expected TaskPanicked, got {err}");
    };
    assert!(tasks.iter().any(|t| t.contains("relay")), "{tasks:?}");
}

#[test]
fn pooled_retry_exhaustion_fails_cleanly() {
    let plan = FaultPlan::new().crash_repeating("joiner", 1, 1, 2);
    let err = chaos_run_on(N, WINDOW, 64, plan, quick_policy(1), pooled(1)).unwrap_err();
    let RunError::TaskPanicked(tasks) = err else {
        panic!("expected TaskPanicked, got {err}");
    };
    assert!(
        tasks.iter().any(|t| t.contains("joiner")),
        "panic should name the joiner: {tasks:?}"
    );
}
