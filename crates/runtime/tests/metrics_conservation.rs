//! Conservation invariants of the metrics registry: nothing the collector
//! reports may invent or lose tuples. Sums of per-task counters must equal
//! what the spout emitted, the hot-path `handle_ns` histogram must account
//! for every received tuple, and the per-window snapshot series (cumulative
//! counters) must be monotone — no matter how upstream task speeds are
//! jittered.

use parking_lot::Mutex;
use proptest::prelude::*;
use ssj_runtime::{
    run, Bolt, Grouping, Outbox, RunReport, SchedulerMode, TaskInfo, TopologyBuilder, TraceKind,
    VecSpout,
};
use std::sync::Arc;

/// A middle-stage bolt that perturbs thread interleaving (same scheme as
/// `tests/batching.rs`): each task spins for a pseudo-random, seeded number
/// of iterations per message and occasionally yields, so upstream tasks run
/// at uneven, racy speeds.
struct Jitter {
    state: u64,
}

impl Bolt<i64> for Jitter {
    fn prepare(&mut self, info: &TaskInfo) {
        self.state ^= (info.task_index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn execute(&mut self, msg: i64, out: &mut Outbox<i64>) {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let spin = (self.state >> 59) as u32; // 0..32
        if spin >= 30 {
            std::thread::yield_now();
        }
        for i in 0..spin * 17 {
            std::hint::black_box(i);
        }
        out.emit(msg);
    }
}

/// Terminal stage: counts per window, emits nothing.
struct CountSink {
    cur: u64,
    out: Arc<Mutex<Vec<u64>>>,
}

impl Bolt<i64> for CountSink {
    fn execute(&mut self, _msg: i64, _out: &mut Outbox<i64>) {
        self.cur += 1;
    }

    fn on_punct(&mut self, _p: u64, _out: &mut Outbox<i64>) {
        self.out.lock().push(std::mem::take(&mut self.cur));
    }
}

/// spout → 3-way jittered stage → counting sink, metrics collection ON.
fn metered_run(n: i64, window: usize, batch: usize, seed: u64) -> (RunReport, Vec<u64>) {
    metered_run_on(n, window, batch, seed, SchedulerMode::ThreadPerTask)
}

fn metered_run_on(
    n: i64,
    window: usize,
    batch: usize,
    seed: u64,
    sched: SchedulerMode,
) -> (RunReport, Vec<u64>) {
    let per_window = Arc::new(Mutex::new(Vec::new()));
    let p2 = Arc::clone(&per_window);
    let t = TopologyBuilder::new()
        .batch_size(batch)
        .metrics(true)
        .scheduler(sched)
        .spout("src", 1, move |_| {
            Box::new(VecSpout::with_punctuation((0..n).collect(), window))
        })
        .bolt("mid", 3, move |task| {
            Box::new(Jitter {
                state: seed ^ (task as u64),
            })
        })
        .subscribe("src", Grouping::Shuffle)
        .done()
        .bolt("sink", 1, move |_| {
            Box::new(CountSink {
                cur: 0,
                out: Arc::clone(&p2),
            })
        })
        .subscribe("mid", Grouping::Global)
        .done()
        .build()
        .unwrap();
    let report = run(t).unwrap();
    let got = per_window.lock().clone();
    (report, got)
}

/// Every tuple the spout emitted is accounted for at every stage, and the
/// hot-path `handle_ns` histogram has recorded exactly the tuples each bolt
/// task received.
fn assert_conserved(report: &RunReport, n: u64) {
    assert_eq!(report.emitted("src"), n, "spout emits");
    assert_eq!(report.received("mid"), n, "mid receives all spout emits");
    assert_eq!(report.emitted("mid"), n, "mid forwards 1:1");
    assert_eq!(report.received("sink"), n, "sink receives all mid emits");
    for t in report.tasks.iter().filter(|t| t.component != "src") {
        let hist = t
            .histogram("handle_ns")
            .unwrap_or_else(|| panic!("{}[{}] has no handle_ns histogram", t.component, t.task));
        assert_eq!(
            hist.count,
            t.counter("received"),
            "{}[{}]: histogram count != received",
            t.component,
            t.task
        );
        assert!(hist.buckets.iter().map(|&(_, c)| c).sum::<u64>() == hist.count);
    }
}

/// Cumulative counters never decrease across the per-window snapshot
/// series, and the final snapshot dominates the last window snapshot.
fn assert_monotone(report: &RunReport) {
    let windows = &report.windows;
    assert!(
        !windows.is_empty(),
        "metrics on must yield window snapshots"
    );
    for pair in windows.windows(2) {
        assert!(pair[0].window < pair[1].window, "window ids ascend");
    }
    // Compare counter-by-counter between consecutive snapshots of the same
    // task; the final report.tasks snapshot is the supremum of the series.
    let dominates = |earlier: &[ssj_runtime::TaskSnapshot], later: &[ssj_runtime::TaskSnapshot]| {
        for (a, b) in earlier.iter().zip(later.iter()) {
            assert_eq!((&a.component, a.task), (&b.component, b.task));
            for (name, v) in &a.counters {
                assert!(
                    b.counter(name) >= *v,
                    "{}[{}] counter {name} decreased across snapshots: {} < {v}",
                    a.component,
                    a.task,
                    b.counter(name)
                );
            }
        }
    };
    for pair in windows.windows(2) {
        dominates(&pair[0].tasks, &pair[1].tasks);
    }
    dominates(&windows.last().unwrap().tasks, &report.tasks);
}

#[test]
fn counters_conserve_tuples_end_to_end() {
    let n = 3 * 120;
    let (report, per_window) = metered_run(n as i64, 120, 16, 0xDEAD_BEEF);
    assert_conserved(&report, n as u64);
    assert_eq!(per_window.iter().sum::<u64>(), n as u64);
    // One aligned snapshot per punctuated window.
    assert_eq!(report.windows.len(), 3);
}

/// Under the pooled scheduler, conservation holds unchanged AND the run
/// report carries the per-worker `scheduler_*` counter family (steals,
/// parks, wakeups) under the `scheduler` component — the observability
/// surface `ssj run --metrics-out` serializes.
#[test]
fn pooled_run_conserves_and_exposes_scheduler_counters() {
    let n = 3 * 120;
    let workers = 2;
    let (report, per_window) = metered_run_on(
        n as i64,
        120,
        16,
        0xBEEF_CAFE,
        SchedulerMode::Pooled {
            workers,
            pin_cores: false,
        },
    );
    assert_conserved(&report, n as u64);
    assert_eq!(per_window.iter().sum::<u64>(), n as u64);
    assert_eq!(report.windows.len(), 3);

    let sched_rows: Vec<_> = report
        .tasks
        .iter()
        .filter(|t| t.component == "scheduler")
        .collect();
    assert_eq!(
        sched_rows.len(),
        workers,
        "one scheduler instrument row per pool worker"
    );
    for row in &sched_rows {
        for family in ["scheduler_steals", "scheduler_parks", "scheduler_wakeups"] {
            assert!(
                row.counters.iter().any(|(name, _)| name == family),
                "scheduler[{}] misses counter {family}: {:?}",
                row.task,
                row.counters
            );
        }
    }
    // The pool actually moved work: across all workers at least one task
    // was claimed from the injector (seeding alone queues 4 bolt tasks).
    let steals: u64 = sched_rows
        .iter()
        .map(|r| r.counter("scheduler_steals"))
        .sum();
    assert!(steals > 0, "no injector/sibling steals recorded");
}

#[test]
fn window_snapshots_are_monotone() {
    let (report, _) = metered_run(4 * 100, 100, 8, 42);
    assert_monotone(&report);
    // The last window snapshot covers everything: by then the whole stream
    // was punctuated, so the sink's cumulative received equals the total.
    let last = report.windows.last().unwrap();
    let sink_received: u64 = last
        .tasks
        .iter()
        .filter(|t| t.component == "sink")
        .map(|t| t.counter("received"))
        .sum();
    assert_eq!(sink_received, 400);
}

#[test]
fn trace_records_window_lifecycle() {
    let (report, _) = metered_run(2 * 150, 150, 32, 7);
    let closes: Vec<_> = report
        .trace
        .iter()
        .filter(|e| e.kind == TraceKind::WindowClose)
        .collect();
    // Every task observes every punctuation: 5 tasks x 2 windows.
    assert_eq!(closes.len(), 10, "one WindowClose per task per window");
    for w in [0u64, 1] {
        assert_eq!(
            closes.iter().filter(|e| e.window == w).count(),
            5,
            "window {w} closes"
        );
    }
    assert!(
        report.trace.iter().any(|e| e.kind == TraceKind::Eos),
        "EOS events retained"
    );
}

#[test]
fn metrics_off_keeps_counters_but_no_windows() {
    let t = TopologyBuilder::new()
        .batch_size(16)
        .metrics(false)
        .spout("src", 1, |_| {
            Box::new(VecSpout::with_punctuation((0..200i64).collect(), 100))
        })
        .bolt("sink", 1, |_| {
            Box::new(CountSink {
                cur: 0,
                out: Arc::new(Mutex::new(Vec::new())),
            })
        })
        .subscribe("src", Grouping::Shuffle)
        .done()
        .build()
        .unwrap();
    let report = run(t).unwrap();
    assert_eq!(report.received("sink"), 200, "core counters always on");
    assert!(report.windows.is_empty(), "no snapshots when disabled");
    assert!(report.trace.is_empty(), "no trace when disabled");
    for t in &report.tasks {
        assert!(t.histograms.is_empty(), "no histograms when disabled");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Conservation and monotonicity hold for every batch size, window
    /// size, and upstream speed interleaving.
    #[test]
    fn conservation_invariant_under_jitter(
        seed in 0u64..u64::MAX,
        window in 16usize..64,
        nwindows in 2usize..5,
        batch_idx in 0usize..3,
    ) {
        let batch = [1usize, 7, 64][batch_idx];
        let n = (window * nwindows) as u64;
        let (report, per_window) = metered_run(n as i64, window, batch, seed);
        assert_conserved(&report, n);
        assert_monotone(&report);
        prop_assert_eq!(per_window.iter().sum::<u64>(), n);
        prop_assert_eq!(report.windows.len(), nwindows);
    }
}
